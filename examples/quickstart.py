#!/usr/bin/env python3
"""Quickstart: install a route, break the network, watch ZENITH heal it.

Runs a four-switch line topology under ZENITH-core, installs a
destination-first (hitless) path DAG, then injects the hardest failure
in the paper's taxonomy — a complete transient switch failure that
wipes the TCAM — and shows the verified recovery procedure restore both
the dataplane and the controller's view of it.

    python examples/quickstart.py
"""

from repro import ControllerConfig, Environment, FailureMode, Network, linear
from repro.core import ZenithController
from repro.metrics import check_dag_order
from repro.workloads.dags import IdAllocator, path_dag


def main() -> None:
    env = Environment()
    network = Network(env, linear(4))
    controller = ZenithController(env, network,
                                  config=ControllerConfig()).start()

    # A DAG that routes s0 → s3, installing entries destination-first so
    # no packet is ever forwarded toward a hop that cannot continue it.
    alloc = IdAllocator()
    dag = path_dag(alloc, ["s0", "s1", "s2", "s3"])
    print(f"submitting DAG {dag.dag_id}: {len(dag)} OPs, "
          f"{len(dag.edges)} ordering edges")
    controller.submit_dag(dag)
    certified_at = env.run(until=controller.wait_for_dag(dag.dag_id))
    print(f"[t={certified_at:6.3f}s] NIB certified the DAG")
    print(f"  dataplane trace: {' -> '.join(network.trace('s0', 's3').hops)}")
    violations = check_dag_order(network, dag)
    print(f"  CorrectDAGOrder violations: {violations or 'none'}")

    # The §3.5 'Complete Transient' failure: switch loses all state.
    print(f"[t={env.now:6.3f}s] injecting complete failure of s1 "
          f"(TCAM wiped)")
    network.fail_switch("s1", FailureMode.COMPLETE)
    env.run(until=env.now + 2)
    print(f"[t={env.now:6.3f}s] trace now: "
          f"{network.trace('s0', 's3').status.value}")

    print(f"[t={env.now:6.3f}s] recovering s1")
    network.recover_switch("s1")
    env.run(until=env.now + 10)

    # ZENITH's verified recovery: detect, wipe through the pipeline,
    # reset the OPs, re-mark UP, reinstall the standing intent.
    result = network.trace("s0", "s3")
    print(f"[t={env.now:6.3f}s] trace: {' -> '.join(result.hops)}")
    assert result.ok, "traffic should flow again"
    assert controller.view_matches_dataplane(), \
        "controller view must equal the dataplane"
    assert controller.hidden_entries() == [], "no hidden entries"
    print("eventual consistency restored: view == dataplane, "
          "no hidden entries")


if __name__ == "__main__":
    main()
