#!/usr/bin/env python3
"""Specify, verify and compile an SDN application — the NADIR pipeline.

Walks the full §4/§5 workflow on the drain application:

1. model-check the buggy *initial* worker-pool specification and show
   the counterexample the checker produces;
2. verify the drain application against AbstractCore, and show why
   decoupling from the full core matters (the §6.3 speedup);
3. type-annotate the drain app (NADIR), generate Python from it, and
   run the generated component in the simulator.

    python examples/verify_app.py
"""

from repro.nadir import compile_program, drain_app_program, program_to_spec
from repro.nib import Nib
from repro.sim import ComponentHost, Environment
from repro.spec import check
from repro.spec.specs import drain_app_spec, worker_pool_spec


def step1_find_the_listing1_bug() -> None:
    print("== 1. model-checking the initial (Listing 1) worker pool ==")
    buggy = worker_pool_spec(num_ops=1, crashes=1, fixed=False)
    result = check(buggy)
    assert not result.ok
    print(result.summary())
    print(result.violations[0].describe())

    fixed = worker_pool_spec(num_ops=2, crashes=2, fixed=True)
    result = check(fixed)
    assert result.ok
    print(f"final (Listing 3) specification verifies: {result.summary()}")


def step2_verify_the_drain_app() -> None:
    print()
    print("== 2. verifying the drain app (decoupled vs composed) ==")
    abstract = check(drain_app_spec("abstract"))
    assert abstract.ok
    print(f"against AbstractCore: {abstract.summary()}")
    composed = check(drain_app_spec("full"))
    assert composed.ok
    print(f"composed with full core: {composed.summary()}")
    speedup = composed.elapsed / max(abstract.elapsed, 1e-9)
    print(f"decoupling speedup: {speedup:,.0f}x "
          f"({composed.distinct_states / abstract.distinct_states:,.0f}x "
          f"fewer states)")


def step3_generate_and_run() -> None:
    print()
    print("== 3. NADIR: verify the annotated program, generate, run ==")
    program = drain_app_program()
    # TypeOK + model-check the same artifact we will compile.
    program.globals_["DrainRequestQueue"] = (1, 2)
    spec = program_to_spec(
        program,
        invariants={"DrainBudget": lambda v: len(v["drained"]) <= 1})
    result = check(spec)
    assert result.ok
    print(f"annotated spec verifies: {result.summary()}")

    program = drain_app_program()
    source, module = compile_program(program)
    print(f"generated {len(source.splitlines())} lines of Python")

    env = Environment()
    nib = Nib(env)
    runtime, components = module["build"](env, nib)
    ComponentHost(env, components["drainer"]).start()
    runtime.fifo_put("DrainRequestQueue", 1)    # drain switch 1
    runtime.fifo_put("DrainRequestQueue", 2)    # refused: budget is 25%
    env.run(until=2)
    submitted = nib.fifo("nadir.nadir-drain-app.DAGEventQueue").items
    print(f"generated drainer submitted DAGs: "
          f"{[(d['id'], d['path']) for d in submitted]}")
    print(f"drained set: {sorted(runtime.get('drained'))} "
          f"(second request refused by the verified budget invariant)")


def main() -> None:
    step1_find_the_listing1_bug()
    step2_verify_the_drain_app()
    step3_generate_and_run()


if __name__ == "__main__":
    main()
