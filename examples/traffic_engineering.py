#!/usr/bin/env python3
"""Traffic engineering on the B4 WAN surviving a switch failure.

Places two large flows with the capacity-aware TE application, fails a
switch on their paths (with IPFRR-style local repair onto congested
backups), and shows the TE app + ZENITH-core restore full throughput —
the Fig. 14 scenario as a runnable example.

    python examples/traffic_engineering.py
"""

from repro import Environment, Network, b4
from repro.apps import TeApp
from repro.core import ZenithController
from repro.net import Flow, FlowEntry, TrafficMonitor
from repro.sim import ComponentHost


def main() -> None:
    topo = b4()
    env = Environment()
    network = Network(env, topo, local_repair=True)
    controller = ZenithController(env, network).start()

    flows = [
        Flow("f1", "b4-1", "b4-12", 8.0),
        Flow("f2", "b4-3", "b4-9", 8.0),
    ]
    app = TeApp(env, controller, flows, sticky_primaries=True,
                computation_delay=1.0)
    ComponentHost(env, app, auto_restart=False).start()
    env.run(until=5)
    for flow in flows:
        path = " -> ".join(app.current_paths[flow.name])
        print(f"  {flow.name}: {flow.demand:.0f} Gb/s on {path}")

    # Static local-protection backups at low priority.
    victim = app.current_paths["f1"][1]
    for flow in flows:
        backups = topo.k_shortest_paths(flow.src, flow.dst, 3,
                                        excluded={victim})
        if backups:
            path = backups[0]
            for hop, nxt in zip(path, path[1:]):
                entry = FlowEntry(app.alloc.entry_id(), path[-1], nxt, -1)
                network[hop].flow_table[entry.entry_id] = entry
                controller.state.routing_view.put((hop, entry.entry_id), -1)
                controller.state.protected_entries.add((hop, entry.entry_id))

    monitor = TrafficMonitor(env, network, flows, period=0.5)

    print(f"[t={env.now:5.1f}s] failing {victim} (on f1's primary)")
    network.fail_switch(victim)
    env.run(until=env.now + 1)
    print(f"[t={env.now:5.1f}s] local repair active; throughput "
          f"{sum(v for v in monitor.samples[-1].per_flow.values()):.1f} Gb/s")

    env.run(until=env.now + 10)
    print(f"[t={env.now:5.1f}s] TE rerouted "
          f"({len(app.reroutes)} reroute decisions so far)")

    network.recover_switch(victim)
    env.run(until=env.now + 15)
    final = monitor.samples[-1]
    print(f"[t={env.now:5.1f}s] {victim} recovered; per-flow throughput: "
          + ", ".join(f"{k}={v:.1f}" for k, v in final.per_flow.items()))
    assert final.total >= 15.9, "full throughput should be restored"
    assert controller.view_matches_dataplane()
    print("throughput restored and controller view consistent")


if __name__ == "__main__":
    main()
