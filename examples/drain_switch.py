#!/usr/bin/env python3
"""Hitless switch drain (the paper's §E application) on a fat-tree.

Runs the drain application over a k=4 fat-tree carrying three inter-pod
flows, drains a loaded aggregation switch, verifies no packet was ever
blackholed during the transition (Listing 6's install-new-before-
delete-old construction), and undrains it again.

    python examples/drain_switch.py
"""

from repro import Environment, Network, fat_tree
from repro.apps import DrainApp, DrainRejected
from repro.core import ZenithController
from repro.net import Flow, TrafficMonitor
from repro.sim import ComponentHost


def main() -> None:
    env = Environment()
    network = Network(env, fat_tree(4))
    controller = ZenithController(env, network).start()

    flows = [
        Flow("f1", "edge-0-0", "edge-2-0", 8.0),
        Flow("f2", "edge-1-0", "edge-3-0", 8.0),
        Flow("f3", "edge-0-0", "edge-3-1", 8.0),
    ]
    app = DrainApp(env, controller, [(f.src, f.dst) for f in flows])
    ComponentHost(env, app, auto_restart=False).start()
    env.run(until=5)

    monitor = TrafficMonitor(env, network, flows, period=0.25)

    # Continuously verify hitlessness: no flow may ever blackhole.
    drops = []

    def drop_checker():
        while True:
            for flow in flows:
                if not network.trace(flow.src, flow.dst).ok:
                    drops.append((env.now, flow.name))
            yield env.timeout(0.01)

    env.process(drop_checker())

    victim = next(hop for hop in network.trace("f1" and "edge-0-0",
                                               "edge-2-0").hops
                  if hop.startswith("agg"))
    print(f"[t={env.now:5.1f}s] draining {victim}")
    app.request_drain(victim)
    env.run(until=env.now + 15)
    assert not drops, f"traffic dropped during drain: {drops[:3]}"
    assert all(victim not in network.trace(f.src, f.dst).hops
               for f in flows), "drained switch still carries traffic"
    print(f"[t={env.now:5.1f}s] drained; no traffic crosses {victim}; "
          f"zero drops")

    # The §4 app-specific invariant: refusing unsafe drains.
    try:
        app._check_invariants("edge-0-0")
    except DrainRejected as rejection:
        print(f"  (safety check works: {rejection})")

    print(f"[t={env.now:5.1f}s] undraining {victim}")
    app.request_undrain(victim)
    env.run(until=env.now + 15)
    assert not drops, f"traffic dropped during undrain: {drops[:3]}"
    print(f"[t={env.now:5.1f}s] undrained; zero drops throughout")

    aggregate = monitor.average_total()
    print(f"average aggregate throughput: {aggregate:.1f} Gb/s "
          f"of {sum(f.demand for f in flows):.0f} demanded")


if __name__ == "__main__":
    main()
