#!/usr/bin/env python3
"""Planned failover plus random chaos: ZENITH under sustained abuse.

Runs a 30-switch KDL subgraph with a routing app, performs a planned
OFC failover mid-flight, then unleashes random switch and component
failures for a minute of simulated time — and verifies the controller
ends fully consistent, with every DAG-ordering constraint respected.

    python examples/failover_and_chaos.py
"""

from repro import Environment, Network, kdl
from repro.apps import FailoverApp, RoutingApp
from repro.core import ZenithController
from repro.metrics import check_dag_order
from repro.net.topology import subgraph
from repro.orchestrator import (
    ComponentFailureInjector,
    SwitchFailureInjector,
    random_component_failures,
    random_switch_failures,
)
from repro.sim import ComponentHost, RandomStreams


def main() -> None:
    topo = subgraph(kdl(200, seed=7), 30, seed=7)
    env = Environment()
    streams = RandomStreams(7)
    network = Network(env, topo, streams=streams)
    controller = ZenithController(env, network).start()

    switches = topo.switches
    demands = [(switches[0], switches[-1]), (switches[3], switches[-3])]
    demands = [(s, d) for s, d in demands if topo.shortest_path(s, d)]
    app = RoutingApp(env, controller, demands)
    ComponentHost(env, app, auto_restart=False).start()
    failover = FailoverApp(env, controller)
    ComponentHost(env, failover, auto_restart=False).start()
    env.run(until=10)
    print(f"[t={env.now:5.1f}s] {len(demands)} demands routed")

    instance = failover.request_failover()
    env.run(until=env.now + 5)
    print(f"[t={env.now:5.1f}s] planned failover to {instance} done "
          f"(master of {switches[0]}: {network[switches[0]].master})")

    endpoints = {e for pair in demands for e in pair}
    switch_chaos = random_switch_failures(
        topo.switches, streams, (env.now, env.now + 60), count=8,
        mean_downtime=3.0, protected=endpoints)
    component_chaos = random_component_failures(
        controller.de_component_names() + controller.ofc_component_names(),
        streams, (env.now, env.now + 60), count=8)
    SwitchFailureInjector(env, network, switch_chaos)
    ComponentFailureInjector(env, controller, component_chaos)
    print(f"[t={env.now:5.1f}s] chaos: {len(switch_chaos)} switch failures, "
          f"{len(component_chaos)} component crashes over 60s")
    env.run(until=env.now + 90)

    for src, dst in demands:
        result = network.trace(src, dst)
        print(f"  {src} -> {dst}: {result.status.value} "
              f"({len(result.hops)} hops)")
        assert result.ok
    assert controller.view_matches_dataplane()
    assert app.current_dag is not None
    assert check_dag_order(network, app.current_dag) == []
    print(f"[t={env.now:5.1f}s] all demands routed, view consistent, "
          f"DAG order respected — after failover + chaos")


if __name__ == "__main__":
    main()
