"""ZENITH: a formally verified, highly available SDN control plane.

A full reproduction of "ZENITH: Towards A Formally Verified
Highly-Available Control Plane" (SIGCOMM 2025) as a Python library:

* :mod:`repro.core` — ZENITH-core, the microservice-based controller;
* :mod:`repro.spec` — the specification language and model checker;
* :mod:`repro.nadir` — NADIR, the spec-to-Python code generator;
* :mod:`repro.apps` — ZENITH-apps (drain, TE, planned failover);
* :mod:`repro.baselines` — PR/PRUp/NoRec and an ODL-like comparator;
* :mod:`repro.net`, :mod:`repro.nib`, :mod:`repro.sim` — the simulated
  substrate (switches, topologies, traffic; the NIB; the event kernel);
* :mod:`repro.obs` — sim-time tracing (Perfetto-loadable OP lifecycle
  spans) and the metrics registry, zero-overhead when disabled;
* :mod:`repro.experiments` — harnesses regenerating every evaluation
  figure and table.

Quickstart::

    from repro import quickstart
    quickstart()            # install a DAG, fail a switch, watch it heal
"""

__version__ = "1.0.0"

from .core import (
    ControllerConfig,
    Dag,
    Op,
    OpType,
    ZenithController,
)
from .net import FailureMode, Network, b4, fat_tree, kdl, linear, ring
from .sim import Environment

__all__ = [
    "ControllerConfig",
    "Dag",
    "Environment",
    "FailureMode",
    "Network",
    "Op",
    "OpType",
    "ZenithController",
    "b4",
    "fat_tree",
    "kdl",
    "linear",
    "quickstart",
    "ring",
    "__version__",
]


def quickstart() -> None:
    """Sixty-second demo: install a route, break it, watch ZENITH heal it."""
    from .workloads.dags import IdAllocator, path_dag

    env = Environment()
    network = Network(env, linear(4))
    controller = ZenithController(env, network).start()
    dag = path_dag(IdAllocator(), ["s0", "s1", "s2", "s3"])
    controller.submit_dag(dag)
    env.run(until=controller.wait_for_dag(dag.dag_id))
    print(f"[t={env.now:6.3f}s] DAG certified; "
          f"trace s0→s3: {network.trace('s0', 's3').hops}")
    network.fail_switch("s1", FailureMode.COMPLETE)
    env.run(until=env.now + 2)
    print(f"[t={env.now:6.3f}s] s1 failed completely (TCAM wiped); "
          f"trace: {network.trace('s0', 's3').status.value}")
    network.recover_switch("s1")
    env.run(until=env.now + 10)
    print(f"[t={env.now:6.3f}s] s1 recovered; ZENITH wiped, reset and "
          f"reinstalled: trace {network.trace('s0', 's3').hops}")
    assert controller.view_matches_dataplane()
    print("controller view == dataplane  (eventual consistency restored)")
