"""Sim-time tracing: kernel hooks, OP lifecycle spans, trace export.

The simulation kernel (:class:`repro.sim.Environment`) carries a
:class:`Tracer`.  By default it is the shared :data:`NULL_TRACER`, whose
``enabled`` flag is False: hot loops pay a single attribute check and
never call into the tracer.  Installing a :class:`RecordingTracer`
(directly or via :func:`repro.obs.observe`) turns on:

* **kernel events** — event scheduled/fired, clock advance, process
  started/finished/crashed (opt-in via ``kernel_events=True``; these are
  voluminous and mostly useful to debug the kernel itself);
* **OP lifecycle spans** — components mark the stages an OP passes
  through (``scheduler → sequenced → worker → to-switch → sent →
  installed → acked → done``); the exporter assembles the marks into one
  async span per OP, so Perfetto shows a single bar from scheduling to
  NIB certification with an instant per stage;
* **component slices and counters** — explicit begin/end or complete
  slices (worker translate time, switch processing, reconciliation
  cycles) and counter series (per-queue depth).

Everything is recorded with *simulated* timestamps, so traces are
deterministic: two runs with the same seed produce byte-identical
traces, and tracing never perturbs the schedule (no events are created,
no randomness consumed).

Export targets:

* **Chrome trace-event format** (``{"traceEvents": [...]}``) — loads in
  Perfetto / ``chrome://tracing``; one track (thread) per component or
  switch, one process per :class:`~repro.sim.Environment`;
* **JSONL** — the same events, one JSON object per line, for ad-hoc
  ``jq``-style analysis.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

__all__ = [
    "OP_STAGES",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
]

#: Canonical OP lifecycle stages, in pipeline order (paper Fig. 6):
#: DAG Scheduler registration → Sequencer dispatch → Worker Pool read →
#: ``ToSW`` enqueue → Monitoring Server send → switch install → ack
#: classification → NIB ``OpDone`` applied.
OP_STAGES = (
    "scheduler",
    "sequenced",
    "worker",
    "to-switch",
    "sent",
    "installed",
    "acked",
    "done",
)

#: Sim seconds → Chrome trace microseconds.
_US = 1e6


class Tracer:
    """Hook protocol the kernel and components call into.

    Subclasses override whichever hooks they care about; the base class
    is entirely no-op, so a tracer only pays for what it records.  The
    ``enabled`` flag is what hot loops check (``env._tracing`` caches
    it), so a disabled tracer costs one attribute read per hook site.
    """

    #: Hot-path gate: when False the kernel never calls the hooks.
    enabled = True

    # -- kernel hooks ------------------------------------------------------
    def event_scheduled(self, env, event, when: float, priority: int) -> None:
        """An event was pushed onto the heap to fire at ``when``."""

    def event_fired(self, env, event) -> None:
        """An event was popped and its callbacks are about to run."""

    def clock_advanced(self, env, old: float, new: float) -> None:
        """The virtual clock moved forward."""

    def process_started(self, env, process) -> None:
        """A process generator was registered with the kernel."""

    def process_finished(self, env, process) -> None:
        """A process generator ran to completion."""

    def process_crashed(self, env, process, exc: BaseException) -> None:
        """A process generator raised an uncaught exception."""

    # -- structured telemetry ----------------------------------------------
    def instant(self, env, name: str, track: str = "sim",
                ts: Optional[float] = None, **args: Any) -> None:
        """A point-in-time annotation on ``track``."""

    def complete(self, env, name: str, track: str, start: float,
                 duration: float, **args: Any) -> None:
        """A closed slice on ``track`` (e.g. one unit of component work)."""

    def counter(self, env, name: str, values: dict,
                ts: Optional[float] = None) -> None:
        """A sample of one or more counter series (e.g. queue depth)."""

    def op_mark(self, env, op_id: int, stage: str, track: str,
                ts: Optional[float] = None, **args: Any) -> None:
        """OP ``op_id`` reached lifecycle ``stage`` on ``track``."""


class NullTracer(Tracer):
    """The default no-op tracer; ``enabled`` is False so hooks are skipped."""

    enabled = False


#: Shared default instance; ``Environment`` uses it when no tracer is given.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Records telemetry into memory for Chrome-trace / JSONL export.

    ``stream_path`` switches on the bounded-memory mode for hours-long
    soak runs: every event is flushed to the JSONL file as it is
    recorded instead of being held in RAM (only the per-OP stage marks
    stay resident, which is what lets :meth:`close` synthesize the OP
    lifecycle spans at the end).  Call :meth:`close` — or use the
    tracer as a context manager — to append the synthesized spans and
    track metadata and close the file; the result validates with
    ``python -m repro.obs.validate out.jsonl`` exactly like an
    in-memory trace written by :meth:`write`.  In-memory mode (the
    default) is unchanged.
    """

    enabled = True

    def __init__(self, kernel_events: bool = False,
                 stream_path: Optional[str] = None):
        #: When True, kernel-level hooks are logged to :attr:`kernel_log`.
        self.kernel_events = kernel_events
        #: Raw kernel hook log: (kind, pid, payload...) tuples.
        self.kernel_log: list[tuple] = []
        self._events: list[dict] = []
        # (pid, op_id) → [(ts_us, stage, track, args), ...]
        self._op_marks: dict[tuple[int, int], list[tuple]] = {}
        # Environments and tracks get small deterministic integer ids in
        # first-seen order (never raw id()s, which would break run-to-run
        # trace equality).
        self._envs: dict[int, int] = {}
        self._tracks: dict[tuple[int, str], int] = {}
        #: Streaming JSONL sink (None = in-memory mode).
        self.stream_path = stream_path
        self._stream = (open(stream_path, "w", encoding="utf-8")
                        if stream_path else None)
        #: Events flushed to the stream so far (for progress/tests).
        self.streamed_events = 0

    def __enter__(self) -> "RecordingTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _emit(self, event: dict) -> None:
        if self._stream is None:
            self._events.append(event)
        else:
            self._stream.write(json.dumps(event, sort_keys=True) + "\n")
            self.streamed_events += 1

    def close(self) -> None:
        """Finish a streaming trace: append OP spans + metadata, close.

        No-op in in-memory mode, and idempotent.
        """
        if self._stream is None:
            return
        for event in self._synthesized_events():
            self._stream.write(json.dumps(event, sort_keys=True) + "\n")
            self.streamed_events += 1
        self._stream.close()
        self._stream = None

    # -- id assignment ------------------------------------------------------
    def _pid(self, env) -> int:
        key = id(env)
        if key not in self._envs:
            self._envs[key] = len(self._envs)
        return self._envs[key]

    def _tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        if key not in self._tracks:
            self._tracks[key] = len(self._tracks) + 1
        return self._tracks[key]

    # -- kernel hooks -------------------------------------------------------
    def event_scheduled(self, env, event, when, priority):
        if self.kernel_events:
            self.kernel_log.append(
                ("scheduled", self._pid(env), type(event).__name__,
                 when, priority))

    def event_fired(self, env, event):
        if self.kernel_events:
            self.kernel_log.append(
                ("fired", self._pid(env), type(event).__name__, env.now))

    def clock_advanced(self, env, old, new):
        if self.kernel_events:
            self.kernel_log.append(("clock", self._pid(env), old, new))

    def process_started(self, env, process):
        if self.kernel_events:
            self.kernel_log.append(("start", self._pid(env), process.name))

    def process_finished(self, env, process):
        if self.kernel_events:
            self.kernel_log.append(("finish", self._pid(env), process.name))

    def process_crashed(self, env, process, exc):
        # Crashes are always recorded (they are rare and load-bearing).
        pid = self._pid(env)
        self.kernel_log.append(
            ("crash", pid, process.name, type(exc).__name__))
        self._append("i", f"crash {process.name}", "crashes", pid,
                     env.now * _US,
                     args={"process": process.name,
                           "exception": type(exc).__name__})

    # -- structured telemetry -----------------------------------------------
    def _append(self, ph: str, name: str, track: str, pid: int,
                ts_us: float, args: Optional[dict] = None,
                **extra: Any) -> None:
        event = {
            "name": name,
            "cat": "sim",
            "ph": ph,
            "ts": round(ts_us, 3),
            "pid": pid,
            "tid": self._tid(pid, track),
        }
        if args:
            event["args"] = args
        event.update(extra)
        self._emit(event)

    def instant(self, env, name, track="sim", ts=None, **args):
        when = env.now if ts is None else ts
        self._append("i", name, track, self._pid(env), when * _US,
                     args=args or None, s="t")

    def complete(self, env, name, track, start, duration, **args):
        self._append("X", name, track, self._pid(env), start * _US,
                     args=args or None, dur=round(duration * _US, 3))

    def counter(self, env, name, values, ts=None):
        when = env.now if ts is None else ts
        pid = self._pid(env)
        self._emit({
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": round(when * _US, 3),
            "pid": pid,
            "tid": 0,
            "args": dict(values),
        })

    def op_mark(self, env, op_id, stage, track, ts=None, **args):
        when = env.now if ts is None else ts
        pid = self._pid(env)
        self._op_marks.setdefault((pid, op_id), []).append(
            (round(when * _US, 3), stage, track, dict(args)))

    # -- analysis accessors ---------------------------------------------------
    def op_stages(self) -> dict[tuple[int, int], list[tuple[str, float, str]]]:
        """(pid, op_id) → [(stage, sim_time_s, track), ...] in time order."""
        result = {}
        for key, marks in self._op_marks.items():
            result[key] = [(stage, ts_us / _US, track)
                           for ts_us, stage, track, _args in marks]
        return result

    def complete_op_ids(self, first: str = "scheduler",
                        last: str = "acked") -> list[tuple[int, int]]:
        """(pid, op_id) pairs whose span covers ``first`` → ``last``."""
        complete = []
        for key, marks in self._op_marks.items():
            stages = {stage for _ts, stage, _track, _args in marks}
            if first in stages and last in stages:
                complete.append(key)
        return sorted(complete)

    # -- export ----------------------------------------------------------------
    def chrome_events(self) -> list[dict]:
        """All trace events, including synthesized OP spans and metadata."""
        if self.stream_path is not None:
            raise RuntimeError(
                "streaming tracer does not keep events in memory; call "
                f"close() and read the JSONL file ({self.stream_path})")
        return list(self._events) + self._synthesized_events()

    def _synthesized_events(self) -> list[dict]:
        """OP lifecycle spans + track metadata (appended at export)."""
        events: list[dict] = []
        for (pid, op_id), marks in sorted(self._op_marks.items()):
            first_ts = marks[0][0]
            last_ts = marks[-1][0]
            tid = self._tid(pid, marks[0][2])
            common = {"cat": "op", "id": str(op_id), "pid": pid, "tid": tid}
            events.append({"name": "op", "ph": "b", "ts": first_ts,
                           "args": {"op_id": op_id}, **common})
            for ts_us, stage, track, args in marks:
                events.append({"name": stage, "ph": "n", "ts": ts_us,
                               "args": {"track": track, **args}, **common})
            events.append({"name": "op", "ph": "e", "ts": last_ts, **common})
        for key, pid in sorted(self._envs.items(), key=lambda kv: kv[1]):
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": 0, "cat": "__metadata",
                           "args": {"name": f"sim-{pid}"}})
        for (pid, track), tid in sorted(self._tracks.items(),
                                        key=lambda kv: kv[1]):
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": tid, "cat": "__metadata",
                           "args": {"name": track}})
        return events

    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event document (loads in Perfetto)."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs", "clock": "sim-time"},
        }

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """Serialized Chrome trace (deterministic key order)."""
        return json.dumps(self.to_chrome_trace(), indent=indent,
                          sort_keys=True)

    def jsonl_lines(self) -> Iterable[str]:
        """The same events as newline-delimited JSON."""
        for event in self.chrome_events():
            yield json.dumps(event, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the trace; ``.jsonl`` suffix selects JSONL, else Chrome."""
        if self.stream_path is not None:
            raise RuntimeError(
                "streaming tracer already writes to its stream_path; call "
                "close() instead of write()")
        with open(path, "w", encoding="utf-8") as handle:
            if str(path).endswith(".jsonl"):
                for line in self.jsonl_lines():
                    handle.write(line + "\n")
            else:
                handle.write(self.to_chrome_json())
                handle.write("\n")
