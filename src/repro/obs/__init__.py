"""repro.obs — sim-time tracing, OP lifecycle spans, metrics registry.

A zero-overhead-when-disabled telemetry subsystem threaded through the
simulation kernel and the controller:

* :class:`Tracer` / :class:`NullTracer` / :class:`RecordingTracer` —
  the kernel hook protocol and its recording implementation
  (:mod:`repro.obs.tracer`); traces export as Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``) or JSONL;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (:mod:`repro.obs.metrics`);
* :func:`observe` / :func:`install` — process-wide telemetry defaults
  picked up by every new :class:`~repro.sim.Environment`
  (:mod:`repro.obs.context`);
* :mod:`repro.obs.prof` — verification observability: checker
  phase/label profiling (``repro.prof/v1`` artifacts), stderr progress
  heartbeats and per-worker utilization traces
  (:class:`CheckProfiler` / :class:`Progress` /
  :class:`CheckerTraceBuilder`);
* :mod:`repro.obs.validate` — Chrome-trace and profile-artifact schema
  validation (CI gates).

Typical use::

    from repro import obs

    tracer = obs.RecordingTracer()
    registry = obs.MetricsRegistry()
    with obs.observe(tracer=tracer, metrics=registry):
        result = run_experiment()
    tracer.write("trace.json")          # open in https://ui.perfetto.dev
    print(registry.render())
"""

from .context import default_metrics, default_tracer, install, observe, uninstall
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prof import (
    PHASES,
    PROF_SCHEMA,
    CheckerTraceBuilder,
    CheckProfiler,
    Progress,
    dump_prof,
    eta_from_samples,
    render_report,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    OP_STAGES,
    RecordingTracer,
    Tracer,
)
from .validate import validate_chrome_trace, validate_prof_artifact

__all__ = [
    "CheckProfiler",
    "CheckerTraceBuilder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OP_STAGES",
    "PHASES",
    "PROF_SCHEMA",
    "Progress",
    "RecordingTracer",
    "Tracer",
    "default_metrics",
    "default_tracer",
    "dump_prof",
    "eta_from_samples",
    "install",
    "observe",
    "render_report",
    "uninstall",
    "validate_chrome_trace",
    "validate_prof_artifact",
]
