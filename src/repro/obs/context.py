"""Process-wide telemetry defaults.

Experiments construct their :class:`~repro.sim.Environment` instances
internally, so the CLI (and tests) cannot pass a tracer or metrics
registry down every call chain.  Instead, :func:`install` (or the
:func:`observe` context manager) sets process-wide defaults that
``Environment.__init__`` picks up for every environment created while
they are active.  Explicit ``Environment(tracer=..., metrics=...)``
arguments always win over the installed defaults.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

__all__ = ["install", "uninstall", "observe",
           "default_tracer", "default_metrics"]

_TRACER = None
_METRICS = None


def install(tracer=None, metrics=None) -> None:
    """Set the default tracer and/or metrics registry for new environments."""
    global _TRACER, _METRICS
    if tracer is not None:
        _TRACER = tracer
    if metrics is not None:
        _METRICS = metrics


def uninstall() -> None:
    """Clear both defaults."""
    global _TRACER, _METRICS
    _TRACER = None
    _METRICS = None


def default_tracer():
    """The installed default tracer (None when not observing)."""
    return _TRACER


def default_metrics():
    """The installed default metrics registry (None when not observing)."""
    return _METRICS


@contextmanager
def observe(tracer=None, metrics=None):
    """Install telemetry defaults for the duration of a ``with`` block."""
    global _TRACER, _METRICS
    saved = (_TRACER, _METRICS)
    if tracer is not None:
        _TRACER = tracer
    if metrics is not None:
        _METRICS = metrics
    try:
        yield
    finally:
        _TRACER, _METRICS = saved
