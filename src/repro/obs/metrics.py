"""The metrics registry: counters, gauges, histograms.

The registry is pull-heavy by design, which is how the "zero overhead
when disabled" promise is kept:

* queues, component hosts and switches always maintain *cheap* plain-int
  counters (``put_count``, ``depth_hwm``, ``crash_count``, ...) — a few
  integer bumps per operation, paid unconditionally;
* the registry turns those into gauges only at :meth:`snapshot` time, by
  walking the objects that registered themselves on creation;
* the only push-style instrumentation — per-item queue *wait-time*
  histograms — is installed by :meth:`register_queue` and guarded in the
  queue hot path by a single ``is None`` check.

Objects self-register when their :class:`~repro.sim.Environment` carries
a registry (``env.metrics``), so ZENITH and every baseline controller
report the exact same gauge names and the experiments can compare them
directly.  Percentiles come from :mod:`repro.metrics.percentiles`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A point-in-time value, set directly or pulled via a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None):
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        """Set the gauge to ``value``."""
        self._value = value

    @property
    def value(self) -> Any:
        """The current value (calls the pull callback if one is set)."""
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """A sample distribution summarized as p50/p95/p99."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(value)

    def summary(self) -> dict:
        """count/mean/p50/p95/p99/max of the recorded samples."""
        from ..metrics.percentiles import percentile

        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "mean": sum(self.values) / len(self.values),
            "p50": percentile(self.values, 50),
            "p95": percentile(self.values, 95),
            "p99": percentile(self.values, 99),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Names and collects every metric of a run (all systems, all envs).

    Multiple environments (e.g. the ZENITH / PR / PRUp systems of one
    comparison experiment) share one registry; their metrics are
    namespaced ``env<N>.`` in first-created order, which is
    deterministic under a fixed seed.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._envs: dict[int, int] = {}
        self._checkers: dict[int, int] = {}
        self._queues: list[tuple[str, Any]] = []
        self._hosts: list[tuple[str, Any]] = []
        self._switches: list[tuple[str, Any]] = []

    # -- metric factories ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str,
              fn: Optional[Callable[[], Any]] = None) -> Gauge:
        """Get or create the named gauge (optionally pull-based)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, fn)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # -- object registration -------------------------------------------------
    def _env_prefix(self, env) -> str:
        key = id(env)
        if key not in self._envs:
            self._envs[key] = len(self._envs)
        return f"env{self._envs[key]}"

    def checker_prefix(self, checker) -> str:
        """``checker<N>`` namespace for a model-checker run.

        The env-style first-seen numbering, but over checker instances:
        two checker runs against one registry (a sweep, a differential
        test) get distinct ``checker0.*`` / ``checker1.*`` metric
        families instead of silently overwriting each other.
        """
        key = id(checker)
        if key not in self._checkers:
            self._checkers[key] = len(self._checkers)
        return f"checker{self._checkers[key]}"

    def register_queue(self, queue) -> None:
        """Track a queue: depth/counter gauges + a wait-time histogram.

        Installs the push-style wait-time observer on the queue (the
        ``_obs``/``_wait_ts`` pair its hot path checks with one ``is
        None`` test).
        """
        prefix = f"{self._env_prefix(queue.env)}.queue.{queue.name}"
        queue._obs = self.histogram(f"{prefix}.wait_s")
        self._queues.append((prefix, queue))

    def register_host(self, host) -> None:
        """Track a component host's crash/restart counters."""
        prefix = (f"{self._env_prefix(host.env)}"
                  f".component.{host.component.name}")
        self._hosts.append((prefix, host))

    def register_switch(self, switch) -> None:
        """Track a switch's install/delete/read/failure counters."""
        prefix = f"{self._env_prefix(switch.env)}.switch.{switch.switch_id}"
        self._switches.append((prefix, switch))

    # -- collection -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """One flat name → value mapping over everything registered.

        Histograms contribute their summary fields as dotted sub-keys
        (``<name>.p99`` etc.); registered objects contribute pull gauges.
        """
        out: dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for prefix, queue in self._queues:
            out[f"{prefix}.depth"] = len(queue)
            out[f"{prefix}.depth_hwm"] = queue.depth_hwm
            out[f"{prefix}.put_count"] = queue.put_count
            out[f"{prefix}.get_count"] = queue.get_count
        for prefix, host in self._hosts:
            out[f"{prefix}.crashes"] = host.crash_count
            out[f"{prefix}.restarts"] = host.restart_count
            out[f"{prefix}.crash_noops"] = host.crash_noop_count
        for prefix, switch in self._switches:
            out[f"{prefix}.installs"] = switch.install_count
            out[f"{prefix}.deletes"] = switch.delete_count
            out[f"{prefix}.table_reads"] = switch.table_read_count
            out[f"{prefix}.reconciliation_entries"] = \
                switch.reconciliation_entries
            out[f"{prefix}.failures"] = switch.failure_count
            out[f"{prefix}.duplicate_installs"] = switch.duplicate_installs
        for name, histogram in self._histograms.items():
            for field, value in histogram.summary().items():
                out[f"{name}.{field}"] = value
        return dict(sorted(out.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as JSON."""
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self, limit: Optional[int] = None,
               nonzero_only: bool = True) -> str:
        """A readable report, largest values first within each family."""
        snap = self.snapshot()
        if nonzero_only:
            snap = {k: v for k, v in snap.items() if v not in (0, 0.0)}
        lines = ["== metrics =="]
        shown = 0
        for name, value in snap.items():
            if limit is not None and shown >= limit:
                lines.append(f"... ({len(snap) - shown} more)")
                break
            if isinstance(value, float):
                lines.append(f"{name:<60s} {value:.6g}")
            else:
                lines.append(f"{name:<60s} {value}")
            shown += 1
        return "\n".join(lines)
