"""Chrome trace-event schema validation (CI smoke gate).

``python -m repro.obs.validate trace.json --require-op-span`` checks
that a trace written by :class:`repro.obs.RecordingTracer` is
well-formed Chrome trace-event JSON (the subset Perfetto and
``chrome://tracing`` consume) and, optionally, that it contains at least
one *complete* OP lifecycle span and per-queue depth counters — the
acceptance gates of the observability subsystem.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["validate_chrome_trace", "main"]

_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "n", "e", "M", "s",
                 "t", "f"}
_ASYNC_PHASES = {"b", "n", "e"}


def validate_chrome_trace(doc: Any,
                          require_op_span: bool = False,
                          require_counters: bool = False) -> list[str]:
    """Return a list of schema problems (empty when the trace is valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing/invalid 'traceEvents' array"]
    if not events:
        problems.append("'traceEvents' is empty")

    async_groups: dict[tuple, list] = {}
    counter_names: set[str] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing/non-string 'name'")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing/non-numeric 'ts'")
        elif event["ts"] < 0:
            problems.append(f"{where}: negative ts {event['ts']}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing/non-int 'pid'")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing/non-int 'tid'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event without numeric 'dur'")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: 'C' event without args series")
            else:
                counter_names.add(event.get("name", ""))
        if phase in _ASYNC_PHASES:
            if "id" not in event:
                problems.append(f"{where}: async event without 'id'")
            else:
                key = (event.get("cat"), event.get("pid"), str(event["id"]))
                async_groups.setdefault(key, []).append(event)

    # Async groups must open with 'b' and close with 'e'.
    for key, group in async_groups.items():
        phases = [e["ph"] for e in group]
        if phases.count("b") != 1 or phases.count("e") != 1:
            problems.append(
                f"async group {key}: expected exactly one 'b' and one 'e', "
                f"got {phases}")
            continue
        begin = next(e for e in group if e["ph"] == "b")
        end = next(e for e in group if e["ph"] == "e")
        if end["ts"] < begin["ts"]:
            problems.append(f"async group {key}: 'e' before 'b'")

    if require_op_span:
        complete = _complete_op_spans(async_groups)
        if not complete:
            problems.append(
                "no complete OP span (async 'op' group whose stage marks "
                "include 'scheduler' and 'acked')")
    if require_counters:
        if not any(name.startswith("queue ") for name in counter_names):
            problems.append("no per-queue depth counter events found")
    return problems


def _complete_op_spans(async_groups: dict) -> list[tuple]:
    complete = []
    for key, group in async_groups.items():
        cat = key[0]
        if cat != "op":
            continue
        stages = {e["name"] for e in group if e["ph"] == "n"}
        if "scheduler" in stages and "acked" in stages:
            complete.append(key)
    return complete


def main(argv=None) -> int:
    """Validate a trace file; exit 0 when clean, 1 otherwise."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a Chrome trace-event JSON file")
    parser.add_argument("trace", help="trace file (.json or .jsonl)")
    parser.add_argument("--require-op-span", action="store_true",
                        help="require one complete scheduler→acked OP span")
    parser.add_argument("--require-counters", action="store_true",
                        help="require per-queue depth counter events")
    args = parser.parse_args(argv)

    with open(args.trace, encoding="utf-8") as handle:
        if args.trace.endswith(".jsonl"):
            doc = {"traceEvents": [json.loads(line) for line in handle
                                   if line.strip()]}
        else:
            doc = json.load(handle)
    problems = validate_chrome_trace(
        doc, require_op_span=args.require_op_span,
        require_counters=args.require_counters)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    print(f"OK: {args.trace} ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
