"""Observability artifact validation (CI smoke gates).

``python -m repro.obs.validate trace.json --require-op-span`` checks
that a trace written by :class:`repro.obs.RecordingTracer` is
well-formed Chrome trace-event JSON (the subset Perfetto and
``chrome://tracing`` consume) and, optionally, that it contains at least
one *complete* OP lifecycle span and per-queue depth counters — the
acceptance gates of the observability subsystem.

``repro.prof/v1`` profile artifacts (``check --profile``) are
auto-detected by their ``schema`` field and validated with
:func:`validate_prof_artifact` instead; ``--min-coverage 0.9`` enforces
the phase-breakdown-explains-exploration acceptance gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .prof import PHASES, PROF_SCHEMA

__all__ = ["validate_chrome_trace", "validate_prof_artifact", "main"]

_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "n", "e", "M", "s",
                 "t", "f"}
_ASYNC_PHASES = {"b", "n", "e"}


def validate_chrome_trace(doc: Any,
                          require_op_span: bool = False,
                          require_counters: bool = False) -> list[str]:
    """Return a list of schema problems (empty when the trace is valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing/invalid 'traceEvents' array"]
    if not events:
        problems.append("'traceEvents' is empty")

    async_groups: dict[tuple, list] = {}
    counter_names: set[str] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing/non-string 'name'")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing/non-numeric 'ts'")
        elif event["ts"] < 0:
            problems.append(f"{where}: negative ts {event['ts']}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing/non-int 'pid'")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing/non-int 'tid'")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: 'X' event without numeric 'dur'")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: 'C' event without args series")
            else:
                counter_names.add(event.get("name", ""))
        if phase in _ASYNC_PHASES:
            if "id" not in event:
                problems.append(f"{where}: async event without 'id'")
            else:
                key = (event.get("cat"), event.get("pid"), str(event["id"]))
                async_groups.setdefault(key, []).append(event)

    # Async groups must open with 'b' and close with 'e'.
    for key, group in async_groups.items():
        phases = [e["ph"] for e in group]
        if phases.count("b") != 1 or phases.count("e") != 1:
            problems.append(
                f"async group {key}: expected exactly one 'b' and one 'e', "
                f"got {phases}")
            continue
        begin = next(e for e in group if e["ph"] == "b")
        end = next(e for e in group if e["ph"] == "e")
        if end["ts"] < begin["ts"]:
            problems.append(f"async group {key}: 'e' before 'b'")

    if require_op_span:
        complete = _complete_op_spans(async_groups)
        if not complete:
            problems.append(
                "no complete OP span (async 'op' group whose stage marks "
                "include 'scheduler' and 'acked')")
    if require_counters:
        if not any(name.startswith("queue ") for name in counter_names):
            problems.append("no per-queue depth counter events found")
    return problems


def _complete_op_spans(async_groups: dict) -> list[tuple]:
    complete = []
    for key, group in async_groups.items():
        cat = key[0]
        if cat != "op":
            continue
        stages = {e["name"] for e in group if e["ph"] == "n"}
        if "scheduler" in stages and "acked" in stages:
            complete.append(key)
    return complete


_PROF_WALL_KEYS = ("total", "exploration", "busy")
_PROF_ENGINES = {"serial", "serial-fp", "parallel"}


def validate_prof_artifact(doc: Any,
                           min_coverage: float = 0.0) -> list[str]:
    """Return schema problems for a ``repro.prof/v1`` document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != PROF_SCHEMA:
        problems.append(f"schema must be {PROF_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("spec"), str) or not doc.get("spec"):
        problems.append("missing/non-string 'spec'")
    engine = doc.get("engine")
    if engine not in _PROF_ENGINES:
        problems.append(f"engine must be one of {sorted(_PROF_ENGINES)}, "
                        f"got {engine!r}")
    workers = doc.get("workers")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        problems.append(f"workers must be null or a positive int, "
                        f"got {workers!r}")
    if engine == "parallel" and workers is None:
        problems.append("parallel engine requires a 'workers' count")
    if not isinstance(doc.get("options"), dict):
        problems.append("missing/non-object 'options'")

    wall = doc.get("wall_s")
    if not isinstance(wall, dict):
        problems.append("missing/non-object 'wall_s'")
        wall = {}
    for key in _PROF_WALL_KEYS:
        value = wall.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"wall_s.{key} must be a non-negative number, "
                            f"got {value!r}")
    coverage = doc.get("coverage")
    if not isinstance(coverage, (int, float)) or coverage < 0:
        problems.append(f"coverage must be a non-negative number, "
                        f"got {coverage!r}")
    elif coverage < min_coverage:
        problems.append(f"coverage {coverage} below required minimum "
                        f"{min_coverage}")

    phases = doc.get("phases")
    if not isinstance(phases, dict):
        problems.append("missing/non-object 'phases'")
    else:
        for name in PHASES:
            entry = phases.get(name)
            if not isinstance(entry, dict):
                problems.append(f"phases.{name}: missing/non-object entry")
                continue
            calls = entry.get("calls")
            if not isinstance(calls, int) or calls < 0:
                problems.append(f"phases.{name}.calls must be a "
                                f"non-negative int, got {calls!r}")
            wall_s = entry.get("wall_s")
            if not isinstance(wall_s, (int, float)) or wall_s < 0:
                problems.append(f"phases.{name}.wall_s must be a "
                                f"non-negative number, got {wall_s!r}")
        for name in phases:
            if name not in PHASES:
                problems.append(f"phases.{name}: unknown phase")

    labels = doc.get("labels")
    if not isinstance(labels, dict):
        problems.append("missing/non-object 'labels'")
    else:
        for name, entry in labels.items():
            if not isinstance(entry, dict):
                problems.append(f"labels[{name!r}]: not an object")
                continue
            for field, kind in (("expansions", int), ("successors", int),
                                ("wall_s", (int, float))):
                value = entry.get(field)
                if not isinstance(value, kind) or isinstance(value, bool) \
                        or value < 0:
                    problems.append(
                        f"labels[{name!r}].{field} must be a non-negative "
                        f"{'int' if kind is int else 'number'}, "
                        f"got {value!r}")

    counts = doc.get("counts")
    if not isinstance(counts, dict):
        problems.append("missing/non-object 'counts'")
    else:
        for field in ("states", "transitions"):
            value = counts.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(f"counts.{field} must be a non-negative "
                                f"int, got {value!r}")
    return problems


def main(argv=None) -> int:
    """Validate a trace or profile file; exit 0 when clean, 1 otherwise."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a Chrome trace-event JSON file or a "
                    "repro.prof/v1 profile artifact (auto-detected)")
    parser.add_argument("trace", help="trace/profile file (.json or .jsonl)")
    parser.add_argument("--require-op-span", action="store_true",
                        help="require one complete scheduler→acked OP span")
    parser.add_argument("--require-counters", action="store_true",
                        help="require per-queue depth counter events")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="minimum phase coverage for a repro.prof/v1 "
                             "artifact (e.g. 0.9)")
    args = parser.parse_args(argv)

    with open(args.trace, encoding="utf-8") as handle:
        if args.trace.endswith(".jsonl"):
            doc = {"traceEvents": [json.loads(line) for line in handle
                                   if line.strip()]}
        else:
            doc = json.load(handle)
    if isinstance(doc, dict) and doc.get("schema") == PROF_SCHEMA:
        problems = validate_prof_artifact(doc, min_coverage=args.min_coverage)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"OK: {args.trace} ({PROF_SCHEMA}, "
              f"coverage {doc['coverage']:.2f})")
        return 0
    problems = validate_chrome_trace(
        doc, require_op_span=args.require_op_span,
        require_counters=args.require_counters)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    print(f"OK: {args.trace} ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
