"""Verification profiling: checker phase/label timing, progress, traces.

PR 2's :mod:`repro.obs` instrumented the *simulator*; this module does
the same for the *verification stack* — the explicit-state model
checker whose per-state Python cost dominates every scaling experiment
(ROADMAP open item 2).  Three pieces:

* :class:`CheckProfiler` — accumulates per-**phase** wall time
  (successor generation, POR ample computation, symmetry
  canonicalization, fingerprinting, dedup, property evaluation,
  liveness) and per-``(process, label)`` expansion counters/time while
  the checker runs.  ``ModelChecker(profile=True)`` attaches one and
  folds it into a ``repro.prof/v1`` JSON artifact
  (:func:`CheckProfiler.artifact`, validated by
  :func:`repro.obs.validate.validate_prof_artifact`).  All timing lives
  in ``CheckResult.stats`` — never in ``CheckResult.to_json`` — so a
  profiled run is byte-identical to an unprofiled one.
* :class:`Progress` — an opt-in stderr heartbeat (states/s, frontier
  depth, dedup hit-rate, ETA) shared by ``check --progress``, the
  campaign runner and the chaos driver.  It writes to stderr only and
  never touches canonical output or consumes randomness.
* :class:`CheckerTraceBuilder` — Chrome trace-event export of checker
  *wall-clock* activity (the PR-2 trace format, but real time instead
  of sim time): one track per parallel worker with explore / serialize
  / relay / idle spans per BFS round plus frontier-depth and dedup-rate
  counters, which is how the serial-beats-parallel pathology becomes
  visible in Perfetto (``check --trace-out PATH``).

Determinism contract
--------------------

The profiler only *observes* wall time; it never changes what the
checker explores.  The non-timing artifact fields (phase call counts,
per-label expansion/successor counts, state/transition counts) are pure
functions of (spec, checker options) and are identical across runs and
engines; only the ``*_s`` / ``coverage`` fields vary run to run.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Optional, TextIO

__all__ = [
    "PHASES",
    "PROF_SCHEMA",
    "CheckProfiler",
    "CheckerTraceBuilder",
    "Progress",
    "dump_prof",
    "eta_from_samples",
    "render_report",
]

#: Version tag written into (and required from) every profile artifact.
PROF_SCHEMA = "repro.prof/v1"

#: The checker phase taxonomy, in pipeline order.  ``liveness`` runs
#: after exploration finishes and is therefore excluded from the
#: exploration-coverage figure (it has its own wall-time entry).
PHASES = (
    "por_ample",       # ample-set eligibility scan (POR)
    "successor_gen",   # Step.run over all oracle branches
    "compile",         # compiled engine: closure builds + table fills
    "canonicalize",    # symmetry canonicalization of successors
    "fingerprint",     # canonical encode + BLAKE2b fold (fp engines)
    "dedup",           # seen-set / raw-memo / fingerprint-store lookups
    "spill",           # mmap spill-tier probes/inserts (disk store)
    "property_eval",   # invariant predicates on newly accepted states
    "liveness",        # terminal-SCC ◇□ pass (post-exploration)
)

#: Phases whose sum is compared against the exploration (busy) window.
_EXPLORE_PHASES = tuple(p for p in PHASES if p != "liveness")

#: Seconds → Chrome trace microseconds.
_US = 1e6


class CheckProfiler:
    """Accumulates phase wall time and per-(process, label) counters.

    One instance per checker run (workers build their own and ship
    :meth:`snapshot` dicts back for :meth:`merge`).  The accounting is
    flat — phases never nest — so the phase sum is directly comparable
    to the exploration wall time it is embedded in.
    """

    __slots__ = ("phase_s", "phase_calls", "labels", "busy_s")

    def __init__(self):
        self.phase_s: dict[str, float] = {p: 0.0 for p in PHASES}
        self.phase_calls: dict[str, int] = {p: 0 for p in PHASES}
        #: (process, label) → [expansions, successors, wall_s]
        self.labels: dict[tuple[str, str], list] = {}
        #: Total time spent inside exploration work (== the exploration
        #: window for serial engines; the sum of per-round worker busy
        #: time for the parallel engine, where the coordinator-side
        #: window also contains relay and idle time).
        self.busy_s = 0.0

    # -- recording ----------------------------------------------------------
    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``phase``."""
        self.phase_s[phase] += seconds
        self.phase_calls[phase] += 1

    def add_label(self, process: str, label: str, seconds: float,
                  successors: int) -> None:
        """One ``_expand_step`` call: label-attributed successor gen."""
        entry = self.labels.get((process, label))
        if entry is None:
            entry = self.labels[(process, label)] = [0, 0, 0.0]
        entry[0] += 1
        entry[1] += successors
        entry[2] += seconds
        self.phase_s["successor_gen"] += seconds
        self.phase_calls["successor_gen"] += 1

    # -- cross-process aggregation ------------------------------------------
    def snapshot(self) -> dict:
        """A picklable dump for :meth:`merge` (parallel workers)."""
        return {
            "phase_s": dict(self.phase_s),
            "phase_calls": dict(self.phase_calls),
            "labels": [[proc, label, e, s, w]
                       for (proc, label), (e, s, w) in self.labels.items()],
            "busy_s": self.busy_s,
        }

    def merge(self, snap: dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this one."""
        for phase, seconds in snap["phase_s"].items():
            self.phase_s[phase] += seconds
        for phase, calls in snap["phase_calls"].items():
            self.phase_calls[phase] += calls
        for proc, label, e, s, w in snap["labels"]:
            entry = self.labels.get((proc, label))
            if entry is None:
                entry = self.labels[(proc, label)] = [0, 0, 0.0]
            entry[0] += e
            entry[1] += s
            entry[2] += w
        self.busy_s += snap["busy_s"]

    # -- artifact ------------------------------------------------------------
    def artifact(self, *, spec: str, engine: str,
                 workers: Optional[int] = None,
                 options: Optional[dict] = None,
                 total_s: float = 0.0,
                 exploration_s: float = 0.0,
                 busy_s: Optional[float] = None,
                 counts: Optional[dict] = None) -> dict:
        """The ``repro.prof/v1`` JSON document for this run.

        ``busy_s`` defaults to ``exploration_s`` (serial engines, where
        the exploration window *is* busy time); the parallel engine
        passes the summed per-worker busy time so ``coverage`` measures
        how much of the actual compute the phases explain, not how much
        of the coordinator's barrier-and-relay window.
        """
        busy = exploration_s if busy_s is None else busy_s
        phase_total = sum(self.phase_s[p] for p in _EXPLORE_PHASES)
        return {
            "schema": PROF_SCHEMA,
            "spec": spec,
            "engine": engine,
            "workers": workers,
            "options": dict(options or {}),
            "wall_s": {
                "total": round(total_s, 6),
                "exploration": round(exploration_s, 6),
                "busy": round(busy, 6),
            },
            "coverage": round(phase_total / busy, 4) if busy > 0 else 0.0,
            "phases": {p: {"calls": self.phase_calls[p],
                           "wall_s": round(self.phase_s[p], 6)}
                       for p in PHASES},
            "labels": {f"{proc}.{label}": {"expansions": e,
                                           "successors": s,
                                           "wall_s": round(w, 6)}
                       for (proc, label), (e, s, w)
                       in sorted(self.labels.items())},
            "counts": dict(counts or {}),
        }


def dump_prof(doc: dict, path: str) -> None:
    """Write a profile artifact as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(doc: dict, top: int = 10) -> str:
    """Human-readable profile: phases hottest-first + top-N hot labels."""
    wall = doc.get("wall_s", {})
    lines = [
        f"== {doc.get('schema')}: {doc.get('spec')} "
        f"({doc.get('engine')}"
        + (f", {doc['workers']} workers" if doc.get("workers") else "")
        + ") ==",
        f"total {wall.get('total', 0.0):.3f}s; "
        f"exploration {wall.get('exploration', 0.0):.3f}s; "
        f"phase coverage {doc.get('coverage', 0.0) * 100:.1f}% "
        f"of {wall.get('busy', 0.0):.3f}s busy",
    ]
    busy = wall.get("busy", 0.0) or 1.0
    phases = sorted(doc.get("phases", {}).items(),
                    key=lambda kv: -kv[1]["wall_s"])
    lines.append("phases (hottest first):")
    for name, entry in phases:
        if entry["calls"] == 0 and entry["wall_s"] == 0.0:
            continue
        lines.append(f"  {name:<14} {entry['wall_s']:9.3f}s "
                     f"{entry['wall_s'] / busy * 100:5.1f}%  "
                     f"({entry['calls']} calls)")
    labels = sorted(doc.get("labels", {}).items(),
                    key=lambda kv: (-kv[1]["wall_s"], kv[0]))
    if labels:
        lines.append(f"top {min(top, len(labels))} labels by wall time:")
        for name, entry in labels[:top]:
            lines.append(
                f"  {name:<40} {entry['wall_s']:9.3f}s  "
                f"{entry['expansions']} expansions -> "
                f"{entry['successors']} successors")
        if len(labels) > top:
            lines.append(f"  ... ({len(labels) - top} more labels)")
    return "\n".join(lines)


class Progress:
    """A throttled stderr heartbeat (never touches canonical output).

    ``update`` formats its keyword fields into one line and emits it at
    most every ``min_interval_s`` seconds (``force=True`` bypasses the
    throttle; :meth:`done` always emits).  Integers are
    thousands-separated, floats get one decimal, and ``eta_s`` renders
    as ``eta ~Ns`` when an estimate exists.  Consumers: ``check
    --progress`` (states/s, frontier depth, dedup hit-rate), ``sweep``
    (task completion + histogram-derived ETA), ``chaos --progress``
    (trial completion + ETA).
    """

    def __init__(self, label: str = "", stream: Optional[TextIO] = None,
                 min_interval_s: float = 1.0):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.lines_emitted = 0
        self._last = float("-inf")

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, int):
            return f"{value:,}"
        if isinstance(value, float):
            return f"{value:,.1f}"
        return str(value)

    def update(self, force: bool = False, eta_s: Optional[float] = None,
               **fields: Any) -> bool:
        """Emit one heartbeat line; returns True when a line was written."""
        now = time.monotonic()
        if not force and now - self._last < self.min_interval_s:
            return False
        self._last = now
        parts = [f"{key}={self._fmt(value)}" for key, value in fields.items()]
        if eta_s is not None:
            parts.append(f"eta ~{max(0.0, eta_s):.0f}s")
        prefix = f"[{self.label}] " if self.label else ""
        print(prefix + "  ".join(parts), file=self.stream, flush=True)
        self.lines_emitted += 1
        return True

    def done(self, **fields: Any) -> None:
        """The final line (bypasses the throttle)."""
        self.update(force=True, **fields)


class CheckerTraceBuilder:
    """Chrome trace events for checker wall-clock activity.

    The PR-2 export format (loads in Perfetto / ``chrome://tracing``)
    over *real* time: pid 0 is the checker run, tid 0 carries counter
    series, and each named track (``coordinator``, ``worker0`` ...)
    gets its own tid in first-seen order.  Timestamps are seconds since
    exploration start, scaled to Chrome microseconds.
    """

    def __init__(self, label: str = "checker"):
        self.label = label
        self._events: list[dict] = []
        self._tracks: dict[str, int] = {}

    def _tid(self, track: str) -> int:
        if track not in self._tracks:
            self._tracks[track] = len(self._tracks) + 1
        return self._tracks[track]

    def span(self, track: str, name: str, start_s: float, dur_s: float,
             **args: Any) -> None:
        """A closed slice on ``track`` (clamped to non-negative)."""
        self._events.append({
            "name": name,
            "cat": "checker",
            "ph": "X",
            "ts": round(max(0.0, start_s) * _US, 3),
            "dur": round(max(0.0, dur_s) * _US, 3),
            "pid": 0,
            "tid": self._tid(track),
            "args": dict(args),
        })

    def counter(self, name: str, ts_s: float, values: dict) -> None:
        """A counter sample (frontier depth, dedup hit-rate, ...)."""
        self._events.append({
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": round(max(0.0, ts_s) * _US, 3),
            "pid": 0,
            "tid": 0,
            "args": dict(values),
        })

    def round_spans(self, track: str, round_index: int, t0: float,
                    reply_at: float, barrier_at: float, explore_s: float,
                    serialize_s: float, **args: Any) -> None:
        """One worker's BFS round: round ⊃ relay, explore, serialize, idle.

        ``t0`` is the coordinator-side round dispatch, ``reply_at`` when
        the worker's reply was read, ``barrier_at`` when the last worker
        replied (the round barrier).  The worker reports its own
        ``explore_s``/``serialize_s`` durations; the remainder before
        them is inbound relay (pipe transfer + candidate unpickling),
        the remainder after the reply is idle (waiting on stragglers).
        """
        busy = explore_s + serialize_s
        relay_s = max(0.0, (reply_at - t0) - busy)
        common = {"round": round_index, **args}
        self.round_span(track, round_index, t0, barrier_at, **args)
        self.span(track, "relay", t0, relay_s, **common)
        self.span(track, "explore", t0 + relay_s, explore_s, **common)
        self.span(track, "serialize", t0 + relay_s + explore_s, serialize_s,
                  **common)
        self.span(track, "idle", reply_at, max(0.0, barrier_at - reply_at),
                  **common)

    def round_span(self, track: str, round_index: int, t0: float,
                   t_end: float, **args: Any) -> None:
        """The enclosing per-round span on ``track``."""
        self.span(track, f"round {round_index}", t0, max(0.0, t_end - t0),
                  round=round_index, **args)

    def to_doc(self) -> dict:
        """The Chrome trace-event document (with track metadata)."""
        events = list(self._events)
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": 0, "tid": 0, "cat": "__metadata",
                       "args": {"name": self.label}})
        for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1]):
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": 0, "tid": tid, "cat": "__metadata",
                           "args": {"name": track}})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs.prof",
                          "clock": "wall-time"},
        }

    def write(self, path: str) -> None:
        """Write the trace (Chrome JSON; ``.jsonl`` suffix for JSONL)."""
        doc = self.to_doc()
        with open(path, "w", encoding="utf-8") as handle:
            if str(path).endswith(".jsonl"):
                for event in doc["traceEvents"]:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
            else:
                json.dump(doc, handle, sort_keys=True)
                handle.write("\n")


def eta_from_samples(samples, remaining: int,
                     parallelism: int = 1) -> Optional[float]:
    """Naive ETA: mean completed wall time × remaining / parallelism.

    Returns None when there are no samples or nothing remains — the
    campaign runner and chaos driver both derive their heartbeat ETA
    from exactly this estimator over their wall-time histograms.
    """
    samples = list(samples)
    if not samples or remaining <= 0:
        return None
    return (sum(samples) / len(samples)) * remaining / max(1, parallelism)
