"""The ablation registry: toggleable components and their workloads.

The paper's Table 4 reads optimization stacks off a hand-maintained
list; this registry is the declarative replacement.  Every entry names
one *component* of the verification pipeline — a §3.7 checker
optimization, a §3.4 spec-level guard, a speclint detector, a chaos
nemesis — together with

* how to switch it **on** (its contribution to the baseline) and
  **off** (its one-off ablation run), as kwarg overrides scoped to the
  surface that consumes them (``"spec"`` → spec factory kwargs,
  ``"checker"`` → :class:`~repro.spec.checker.ModelChecker` kwargs,
  ``"lint"`` → :func:`~repro.analysis.analyze_spec` kwargs,
  ``"chaos"`` → :func:`~repro.chaos.driver.search` kwargs);
* which **workload** exercises it; and
* which **metrics** its removal is declared to move, and in which
  direction (``"up"``/``"down"``/``"flat"`` when the component is
  off).  The ablation driver scores importance and flags *harmful*
  components against these declarations: a toggle that improves a
  metric it was supposed to pay for is a contract violation, not a
  win.

A *workload* is a fixed verification task (model-check this spec, lint
that spec, fuzz this target) whose baseline runs with every
participating component's ``on`` override applied; each one-off run
re-applies exactly one component's ``off`` override on top.  The
registry is ordinary code, so it is covered by the campaign cache's
source digest — editing a declaration invalidates every cached run.

Components with measurable state-space effects deliberately live on
different workloads: POR only bites on specs with local-hinted steps
(the core+app composition, §3.6 — the bundled controller specs have
none), while symmetry/abstraction/fingerprinting are measured on the
Table-4 controller workload they were built for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "Component",
    "Metric",
    "Workload",
    "COMPONENTS",
    "WORKLOADS",
    "component",
    "components_for",
    "merge_scopes",
    "resolve_config",
    "workload",
]

#: Override scopes a component may target.
SCOPES = ("spec", "checker", "lint", "chaos")


@dataclass(frozen=True)
class Metric:
    """One declared expectation: what a metric does when the component
    is switched off."""

    name: str
    when_off: str           #: "up" | "down" | "flat"
    note: str = ""

    def __post_init__(self):
        if self.when_off not in ("up", "down", "flat"):
            raise ValueError(f"bad direction {self.when_off!r}")


@dataclass(frozen=True)
class Component:
    """One toggleable component of the verification pipeline."""

    id: str
    layer: str              #: "checker" | "spec" | "lint" | "chaos"
    workload: str           #: id of the workload that measures it
    description: str
    off: Mapping[str, Mapping[str, Any]]   #: scope → kwarg overrides
    on: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    metrics: tuple[Metric, ...] = ()
    quick: bool = True      #: participates in quick-mode plans

    def __post_init__(self):
        for overrides in (self.on, self.off):
            for scope in overrides:
                if scope not in SCOPES:
                    raise ValueError(
                        f"{self.id}: unknown override scope {scope!r}")


@dataclass(frozen=True)
class Workload:
    """A fixed verification task the ablation runs against."""

    id: str
    kind: str               #: "check" | "lint" | "chaos"
    description: str
    #: Bundled spec name (``repro.spec.specs.SPEC_SOURCES``) for check
    #: workloads built from the registry; None for factory-built ones.
    spec: str | None = None
    #: Spec factory (module:function) + base kwargs, for check/lint
    #: workloads whose spec is parameterized by component overrides.
    factory: str | None = None
    base: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ("check", "lint", "chaos"):
            raise ValueError(f"bad workload kind {self.kind!r}")
        for scope in self.base:
            if scope not in SCOPES:
                raise ValueError(
                    f"{self.id}: unknown base scope {scope!r}")


# -- workloads ----------------------------------------------------------------
WORKLOADS: tuple[Workload, ...] = (
    Workload(
        id="table4",
        kind="check",
        description=("Table-4 controller workload: two independent OPs, "
                     "two switches, one failure — the spec the §3.7 "
                     "optimization stack was measured on"),
        factory="repro.spec.specs.controller:controller_spec",
        base={"spec": {"num_ops": 2, "edges": (), "num_switches": 2,
                       "failures": 1}},
    ),
    Workload(
        id="table4-deep",
        kind="check",
        description=("Table-4 controller at failures=3 (op dependency "
                     "chain): ~1.4M states, 17× the controller-large "
                     "row and far past every prior sweep — minutes of "
                     "interpreted time per run, seconds compiled.  "
                     "Full plans only (campaigns/ablation-deep.toml); "
                     "the quick CI sweep never pays for it"),
        factory="repro.spec.specs.controller:controller_spec",
        base={"spec": {"num_ops": 2, "num_switches": 2, "failures": 3},
              "checker": {"max_states": 2_500_000}},
    ),
    Workload(
        id="compose",
        kind="check",
        description=("§3.6 composition workload: full core driving the "
                     "AbstractApp — the only bundled state space with "
                     "local-hinted steps, where POR measurably prunes"),
        spec="core-with-app",
    ),
    Workload(
        id="guards",
        kind="check",
        description=("§3.4 guard workload: single-switch controller with "
                     "a one-shot sequencer, where each correctness guard "
                     "alone stands between the spec and a violation"),
        factory="repro.spec.specs.controller:controller_spec",
        base={"spec": {"num_ops": 2, "failures": 1, "num_switches": 1,
                       "oneshot_sequencer": True}},
    ),
    Workload(
        id="lint",
        kind="lint",
        description=("speclint workload: a seeded-defect spec "
                     "(repro.ablation.lintable) with one planted "
                     "violation per detector under ablation"),
        factory="repro.ablation.lintable:lint_workload_spec",
        base={"lint": {"max_states": 4000}},
    ),
    Workload(
        id="chaos",
        kind="chaos",
        description=("chaos workload: schedule search against the PR "
                     "controller with the ZENITH reference, full "
                     "nemesis mix"),
        base={"chaos": {"target": "pr", "reference": "zenith",
                        "shrink": False}},
    ),
    Workload(
        id="update",
        kind="chaos",
        description=("update-window chaos workload: the naive update "
                     "scheduler against the consistent reference on the "
                     "update gadget, full update-nemesis mix (partition "
                     "mid-round, scheduler crash between rounds, "
                     "verification-ack delays)"),
        base={"chaos": {"scenario": "update", "target": "naive",
                        "reference": "consistent", "shrink": False,
                        "active": 8.0, "cooldown": 10.0}},
    ),
)


# -- components ---------------------------------------------------------------
COMPONENTS: tuple[Component, ...] = (
    # §3.7 checker optimizations, measured on the Table-4 workload.
    Component(
        id="symmetry",
        layer="checker",
        workload="table4",
        description="switch-identity symmetry reduction (§3.7)",
        on={"checker": {"symmetry": True}},
        off={"checker": {"symmetry": False}},
        metrics=(Metric("states", "up", "orbit representatives collapse "
                        "permuted switch states"),
                 Metric("transitions", "up")),
    ),
    Component(
        id="abstraction",
        layer="spec",
        workload="table4",
        description="abstract switch model (§3.7 state abstraction)",
        on={"spec": {"abstract_switch": True}},
        off={"spec": {"abstract_switch": False}},
        metrics=(Metric("states", "up"),
                 Metric("diameter", "up", "concrete switches add "
                        "message-shuffling depth")),
    ),
    Component(
        id="coarse-atomicity",
        layer="spec",
        workload="table4",
        description="coarsened atomic blocks (§3.7 partial-order "
                    "commutativity argument applied at the spec level)",
        on={"spec": {"coarse_atomicity": True}},
        off={"spec": {"coarse_atomicity": False}},
        metrics=(Metric("states", "up"),
                 Metric("diameter", "up")),
    ),
    Component(
        id="incremental-fp",
        layer="checker",
        workload="table4",
        description="incremental fingerprint maintenance (dirty-slot "
                    "re-digest instead of full-vector rehash)",
        on={"checker": {"fingerprint_mode": "incremental"}},
        off={"checker": {"fingerprint_mode": "full"}},
        metrics=(Metric("fp_slots", "up", "full mode re-digests every "
                        "slot of every state"),
                 Metric("states", "flat", "a fingerprint engine must "
                        "never change the verdict or the state count")),
    ),
    Component(
        id="fingerprint-dedup",
        layer="checker",
        workload="table4",
        description="fingerprint-based state store (64-bit digests "
                    "instead of full canonical states)",
        on={},   # the engine is selected by incremental-fp's override
        off={"checker": {"fingerprint_mode": None}},
        metrics=(Metric("store_bytes", "up", "the seen-set stores whole "
                        "canonical encodings instead of 8-byte digests"),
                 Metric("states", "flat")),
    ),
    Component(
        id="tracing",
        layer="checker",
        workload="table4",
        description="exploration tracing (PR 7 observability); must be "
                    "a pure observer of the search",
        on={"checker": {"trace": True}},
        off={"checker": {"trace": False}},
        metrics=(Metric("states", "flat", "tracing must not perturb "
                        "exploration"),
                 Metric("transitions", "flat")),
    ),
    # The compiled-step engine, measured on the deep Table-4 row it
    # makes affordable.  It cannot share the "table4" workload: the
    # baseline there merges incremental-fp's fingerprint_mode
    # override, and compiled + fingerprint_mode are alternative
    # serial engines the checker refuses to combine.
    Component(
        id="compiled-steps",
        layer="checker",
        workload="table4-deep",
        description="per-label compiled step closures replacing "
                    "interpreted EffectCtx dispatch on the hot path "
                    "(check --compiled)",
        on={"checker": {"compiled": True}},
        off={"checker": {"compiled": False}},
        metrics=(Metric("states", "flat", "an engine swap must never "
                        "move the canonical outcome"),
                 Metric("transitions", "flat"),
                 Metric("diameter", "flat"),
                 Metric("compiled_labels", "down", "the interpreted "
                        "engine compiles nothing — the counter drops "
                        "to zero")),
        quick=False,
    ),
    # POR, measured where it has teeth (local-hinted steps, §3.6).
    Component(
        id="por",
        layer="checker",
        workload="compose",
        description="partial-order reduction via local-step ample sets "
                    "(§3.7)",
        on={"checker": {"por": True}},
        off={"checker": {"por": False}},
        metrics=(Metric("transitions", "up", "every interleaving of the "
                        "sequencer's local steps is explored"),
                 Metric("states", "up")),
    ),
    Component(
        id="por-deps",
        layer="checker",
        workload="compose",
        description="footprint-derived ample sets on top of the hints "
                    "(PR 6 static dependence analysis)",
        on={"checker": {"por_deps": True}},
        off={"checker": {"por_deps": False}},
        metrics=(Metric("states", "flat", "deps-derived ample sets are "
                        "byte-identical to hint-POR on every bundled "
                        "spec — the analysis buys soundness checking, "
                        "not extra pruning"),
                 Metric("transitions", "flat")),
    ),
    # §3.4 correctness guards, measured on the guards workload.
    Component(
        id="stale-protection",
        layer="spec",
        workload="guards",
        description="stale-event protection in the event handler (§3.4)",
        on={"spec": {"stale_protection": True}},
        off={"spec": {"stale_protection": False}},
        metrics=(Metric("violations", "up", "stale switch reports "
                        "overwrite fresher state"),),
    ),
    Component(
        id="atomic-recovery",
        layer="spec",
        workload="guards",
        description="atomic recovery ordering in the failover path "
                    "(§3.4)",
        on={"spec": {"recovery_order": "atomic"}},
        off={"spec": {"recovery_order": "buggy"}},
        metrics=(Metric("violations", "up"),),
    ),
    # speclint detectors, measured against seeded defects.
    Component(
        id="queue-discipline-lint",
        layer="lint",
        workload="lint",
        description="ack-queue discipline pass (§3.9 peek-then-pop)",
        on={},
        off={"lint": {"skip": ("check_queue_discipline",)}},
        metrics=(Metric("findings", "down", "the planted "
                        "ack-read-without-pop defect goes unreported"),),
    ),
    Component(
        id="race-detector",
        layer="lint",
        workload="lint",
        description="footprint-based cross-process race detector "
                    "(lint --deps, PR 6)",
        on={"lint": {"deps": True}},
        off={"lint": {"deps": False}},
        metrics=(Metric("findings", "down", "the planted blind "
                        "write/read race goes unreported"),),
    ),
    # chaos nemeses (full plans only: seed-sensitive, slower).
    Component(
        id="nemesis-duplicate",
        layer="chaos",
        workload="chaos",
        description="duplicate-delivery nemesis in the schedule sampler",
        on={"chaos": {"channel_kinds": ("drop", "duplicate", "delay")}},
        off={"chaos": {"channel_kinds": ("drop", "delay")}},
        metrics=(Metric("interesting", "down", "a weaker fault model "
                        "should find at most as many target-only "
                        "violations"),),
        quick=False,
    ),
    Component(
        id="nemesis-delay",
        layer="chaos",
        workload="chaos",
        description="delay nemesis in the schedule sampler",
        on={"chaos": {"channel_kinds": ("drop", "duplicate", "delay")}},
        off={"chaos": {"channel_kinds": ("drop", "duplicate")}},
        metrics=(Metric("interesting", "down"),),
        quick=False,
    ),
    # update-window nemeses (full plans only, like the other chaos mixes).
    Component(
        id="nemesis-partition-mid-round",
        layer="chaos",
        workload="update",
        description="partition-mid-round nemesis: a control-link "
                    "partition armed on the app's update-round-start "
                    "instant, eating the round's installs and acks",
        on={"chaos": {"n_partitions": 1}},
        off={"chaos": {"n_partitions": 0}},
        metrics=(Metric("interesting", "down", "the mid-round partition "
                        "is the primary driver of naive-only update "
                        "violations — without it fewer trials separate "
                        "the schedulers"),),
        quick=False,
    ),
    Component(
        id="nemesis-crash-between-rounds",
        layer="chaos",
        workload="update",
        description="crash-scheduler-between-rounds nemesis: the update "
                    "app crashes on its update-round-done instant and "
                    "must resume from the NIB",
        on={"chaos": {"n_crashes": 1}},
        off={"chaos": {"n_crashes": 0}},
        metrics=(Metric("interesting", "down", "a weaker fault model "
                        "finds at most as many naive-only violations"),),
        quick=False,
    ),
    Component(
        id="nemesis-ack-delay",
        layer="chaos",
        workload="update",
        description="delay-verification-acks nemesis: a one-shot s2c "
                    "delay armed on the victim switch's next sent OP, "
                    "stalling the round's verification",
        on={"chaos": {"n_ack_delays": 1}},
        off={"chaos": {"n_ack_delays": 0}},
        metrics=(Metric("interesting", "down"),),
        quick=False,
    ),
)

_BY_ID = {c.id: c for c in COMPONENTS}
_WL_BY_ID = {w.id: w for w in WORKLOADS}
if len(_BY_ID) != len(COMPONENTS):
    raise RuntimeError("duplicate component ids in registry")
if len(_WL_BY_ID) != len(WORKLOADS):
    raise RuntimeError("duplicate workload ids in registry")
for _c in COMPONENTS:
    if _c.workload not in _WL_BY_ID:
        raise RuntimeError(f"{_c.id}: unknown workload {_c.workload!r}")


def component(comp_id: str) -> Component:
    """Look up a component by id."""
    try:
        return _BY_ID[comp_id]
    except KeyError:
        raise KeyError(
            f"unknown component {comp_id!r}; known: "
            f"{', '.join(sorted(_BY_ID))}") from None


def workload(workload_id: str) -> Workload:
    """Look up a workload by id."""
    try:
        return _WL_BY_ID[workload_id]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload_id!r}; known: "
            f"{', '.join(sorted(_WL_BY_ID))}") from None


def components_for(workload_id: str, quick: bool = True,
                   subset: tuple[str, ...] | None = None
                   ) -> tuple[Component, ...]:
    """Participating components of a workload, in registry order.

    ``quick=True`` drops components declared ``quick=False``;
    ``subset`` (component ids) restricts further, preserving registry
    order.  The participating set defines the *baseline*: every
    member's ``on`` override is applied to it.
    """
    comps = tuple(
        c for c in COMPONENTS
        if c.workload == workload_id
        and (c.quick or not quick)
        and (subset is None or c.id in subset))
    return comps


def merge_scopes(*override_maps: Mapping[str, Mapping[str, Any]]
                 ) -> dict[str, dict[str, Any]]:
    """Left-to-right shallow merge of scope → kwargs override maps."""
    merged: dict[str, dict[str, Any]] = {}
    for overrides in override_maps:
        for scope, kwargs in overrides.items():
            merged.setdefault(scope, {}).update(kwargs)
    return merged


def resolve_config(workload_id: str, off: tuple[str, ...],
                   quick: bool = True,
                   subset: tuple[str, ...] | None = None) -> dict:
    """The fully resolved, content-bearing configuration of one run.

    Baseline semantics: the workload's base kwargs, then every
    participating component's ``on`` override (registry order), then
    the ``off`` override of each ablated component — last writer wins,
    so a one-off run differs from the baseline in exactly that
    component's contribution.

    The returned dict is canonical-JSON-serializable and is what the
    driver hashes into the stable run id, so any registry edit that
    changes a run's effective kwargs changes its identity.
    """
    wl = workload(workload_id)
    comps = components_for(workload_id, quick=quick, subset=subset)
    known = {c.id for c in comps}
    for comp_id in off:
        if comp_id not in known:
            raise KeyError(
                f"component {comp_id!r} does not participate in "
                f"workload {workload_id!r}")
    scopes = merge_scopes(
        wl.base,
        *(c.on for c in comps),
        *(component(comp_id).off for comp_id in off))
    return {
        "workload": wl.id,
        "kind": wl.kind,
        "spec": wl.spec,
        "factory": wl.factory,
        "off": sorted(off),
        "scopes": {scope: dict(sorted(kwargs.items()))
                   for scope, kwargs in sorted(scopes.items())},
    }
