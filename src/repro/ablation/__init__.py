"""repro.ablation — the automated ablation registry and driver.

The paper argues for its verification pipeline by showing what each
piece buys (Table 4's optimization stacks, §3.4's guard bugs, §3.9's
lint classes).  This package turns that argument into a build product:

* :mod:`repro.ablation.registry` — the declarative registry: every
  toggleable component of the pipeline with its on/off kwarg
  overrides, its measuring workload and its declared metric
  expectations;
* :mod:`repro.ablation.lintable` — the seeded-defect spec the lint
  workload analyzes (bundled specs are lint-clean by design);
* :mod:`repro.ablation.driver` — plan parsing, baseline-plus-one-off
  expansion with stable content-derived run ids, execution through
  :func:`repro.campaign.run_tasks` (cache, derived seeds,
  serial/parallel byte-identity), and importance scoring into the
  ``repro.ablation/v1`` artifact;
* :mod:`repro.ablation.validate` — artifact schema validation (also a
  ``python -m repro.ablation.validate`` entry point).

``zenith-repro ablate campaigns/ablation.toml`` runs the quick plan;
``render-docs`` turns the artifact into the component-importance table
in EXPERIMENTS.md.
"""

from .driver import (
    ABLATION_SCHEMA,
    AblationPlan,
    RunSpec,
    expand_runs,
    load_plan,
    parse_plan,
    run_ablation,
)
from .registry import (
    COMPONENTS,
    WORKLOADS,
    Component,
    Metric,
    Workload,
    component,
    components_for,
    merge_scopes,
    resolve_config,
    workload,
)
from .validate import validate_artifact

__all__ = [
    "ABLATION_SCHEMA",
    "AblationPlan",
    "COMPONENTS",
    "Component",
    "Metric",
    "RunSpec",
    "WORKLOADS",
    "Workload",
    "component",
    "components_for",
    "expand_runs",
    "load_plan",
    "merge_scopes",
    "parse_plan",
    "resolve_config",
    "run_ablation",
    "validate_artifact",
    "workload",
]
