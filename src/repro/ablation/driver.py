"""Ablation driver: expand the registry into runs, score importance.

The pipeline::

    plan ──expand_runs──▶ [RunSpec] ──campaign.run_tasks──▶ metrics
         ──score──▶ BENCH_ablation.json (repro.ablation/v1)

Execution rides the campaign runner's :func:`~repro.campaign.run_tasks`
core, so content-keyed caching, derived per-task seeds and
serial/parallel byte-identity are inherited rather than reimplemented:
every run becomes a ``componentAblation`` task whose params are just
``{workload, off}`` — the registry (covered by the cache's source
digest) resolves the rest.

**Run identity.**  Each run's ``run_id`` is the first 12 hex digits of
the SHA-256 of its *resolved* configuration (workload, effective
scoped kwargs, seed, quick) — stable across machines and task order,
and automatically refreshed when a registry edit changes a run's
effective kwargs.

**Scoring.**  For every component the driver compares its one-off run
against the workload baseline on the component's *declared* metrics:

* ``delta_rel`` — ``(off − base) / max(|base|, 1)`` (counts, so the
  guard against a zero baseline keeps violations-from-zero finite);
* ``importance`` — the largest ``|delta_rel|`` across declared
  metrics, averaged over seeds;
* ``met`` — whether the metric moved in the declared direction;
* ``harmful`` — some declared metric moved *against* its declaration:
  an "up" metric that improved when the component was removed (the
  component hurts the thing it was supposed to buy), or a "flat"
  metric that moved at all (a pure observer perturbed the search).

The artifact's deterministic sections contain no wall-clock values;
per-run timings and cache hits are returned separately for display, so
``BENCH_ablation.json`` is byte-identical across repeated, serial and
parallel sweeps of the same source tree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..campaign.runner import Task, derive_seed, run_tasks, source_digest
from ..campaign.spec import _parse_toml
from .registry import (
    Component,
    components_for,
    resolve_config,
    workload as get_workload,
)

__all__ = [
    "ABLATION_SCHEMA",
    "AblationPlan",
    "RunSpec",
    "expand_runs",
    "load_plan",
    "parse_plan",
    "run_ablation",
]

#: Version tag of the ablation artifact.
ABLATION_SCHEMA = "repro.ablation/v1"

#: Experiment id every ablation run executes under.
EXP_ID = "componentAblation"

#: Default workload sweep of a plan that names none.
DEFAULT_WORKLOADS = ("table4", "compose", "guards", "lint")


@dataclass(frozen=True)
class AblationPlan:
    """A parsed ablation plan (the ``[ablation]`` table of a TOML file)."""

    name: str
    quick: bool = True
    seeds: tuple[int, ...] = (0,)
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS
    #: Restrict to these component ids (empty = all participating).
    components: tuple[str, ...] = ()
    #: Also run leave-one-in sets (all participants off but one).
    leave_one_in: bool = False


@dataclass(frozen=True)
class RunSpec:
    """One resolved ablation run."""

    run_id: str
    workload: str
    off: tuple[str, ...]
    seed: int
    quick: bool
    config: dict = field(compare=False)


def load_plan(path: str | Path) -> AblationPlan:
    """Parse the ablation plan file at ``path``."""
    path = Path(path)
    return parse_plan(path.read_text(), default_name=path.stem)


def parse_plan(text: str, default_name: str = "ablation") -> AblationPlan:
    """Parse ablation TOML text into an :class:`AblationPlan`."""
    data = _parse_toml(text)
    table = data.get("ablation", {})
    if not isinstance(table, dict):
        raise ValueError("[ablation] must be a table")
    unknown = set(table) - {"name", "quick", "seeds", "workloads",
                            "components", "leave_one_in"}
    if unknown:
        raise ValueError(f"[ablation]: unknown keys {sorted(unknown)}")
    seeds = table.get("seeds", [0])
    if (not isinstance(seeds, list) or not seeds or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in seeds)):
        raise ValueError(
            f"ablation.seeds must be a non-empty list of ints, got {seeds!r}")
    workloads = table.get("workloads", list(DEFAULT_WORKLOADS))
    if not isinstance(workloads, list) or not all(
            isinstance(w, str) for w in workloads):
        raise ValueError("ablation.workloads must be a list of ids")
    components = table.get("components", [])
    if not isinstance(components, list) or not all(
            isinstance(c, str) for c in components):
        raise ValueError("ablation.components must be a list of ids")
    for wl_id in workloads:
        get_workload(wl_id)   # raises on unknown ids
    return AblationPlan(
        name=str(table.get("name", default_name)),
        quick=bool(table.get("quick", True)),
        seeds=tuple(int(s) for s in seeds),
        workloads=tuple(workloads),
        components=tuple(components),
        leave_one_in=bool(table.get("leave_one_in", False)),
    )


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _run_id(config: dict, seed: int, quick: bool) -> str:
    payload = _canonical({"config": config, "seed": seed, "quick": quick})
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _participants(plan: AblationPlan, wl_id: str) -> tuple[Component, ...]:
    subset = plan.components or None
    return components_for(wl_id, quick=plan.quick, subset=subset)


def expand_runs(plan: AblationPlan) -> list[RunSpec]:
    """Expand a plan into its deterministic run list.

    Per workload: the baseline (all participants on), one one-off per
    participating component, and — with ``leave_one_in`` — one run per
    component with every *other* participant off.  Workloads whose
    kind is deterministic in the seed (check, lint) collapse the seed
    list to its first entry; chaos workloads sweep every seed.
    """
    runs: list[RunSpec] = []
    seen: set[tuple] = set()
    for wl_id in plan.workloads:
        wl = get_workload(wl_id)
        comps = _participants(plan, wl_id)
        if not comps:
            continue
        ids = tuple(c.id for c in comps)
        off_sets: list[tuple[str, ...]] = [()]
        off_sets += [(cid,) for cid in ids]
        if plan.leave_one_in and len(ids) > 1:
            off_sets += [tuple(i for i in ids if i != keep)
                         for keep in ids]
        seeds = plan.seeds if wl.kind == "chaos" else plan.seeds[:1]
        for off in off_sets:
            for seed in seeds:
                key = (wl_id, off, seed)
                if key in seen:
                    continue
                seen.add(key)
                config = resolve_config(
                    wl_id, off, quick=plan.quick,
                    subset=plan.components or None)
                runs.append(RunSpec(
                    run_id=_run_id(config, seed, plan.quick),
                    workload=wl_id,
                    off=off,
                    seed=seed,
                    quick=plan.quick,
                    config=config,
                ))
    return runs


def _to_task(run: RunSpec, index: int) -> Task:
    params = {"workload": run.workload, "off": list(run.off)}
    return Task(
        index=index,
        exp_id=EXP_ID,
        base_seed=run.seed,
        seed=derive_seed(run.seed, EXP_ID, params),
        quick=run.quick,
        params=tuple(sorted(params.items())),
    )


# -- scoring ------------------------------------------------------------------
def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _metric_values(outcomes: list[dict], name: str) -> Optional[float]:
    """Seed-mean of one metric across a run group (None if absent)."""
    values = []
    for metrics in outcomes:
        value = metrics.get(name)
        if value is None:
            return None
        values.append(float(value))
    return _mean(values) if values else None


def _score_component(comp: Component, base: list[dict],
                     off: list[dict]) -> dict:
    deltas: dict[str, dict] = {}
    importance = 0.0
    harmful = False
    for metric in comp.metrics:
        base_v = _metric_values(base, metric.name)
        off_v = _metric_values(off, metric.name)
        if base_v is None or off_v is None:
            deltas[metric.name] = {"expected": metric.when_off,
                                   "missing": True}
            continue
        delta_abs = off_v - base_v
        delta_rel = delta_abs / max(abs(base_v), 1.0)
        met = {"up": delta_rel > 0,
               "down": delta_rel < 0,
               "flat": delta_rel == 0}[metric.when_off]
        against = {"up": delta_rel < 0,
                   "down": delta_rel > 0,
                   "flat": delta_rel != 0}[metric.when_off]
        deltas[metric.name] = {
            "base": base_v,
            "off": off_v,
            "delta_abs": delta_abs,
            "delta_rel": round(delta_rel, 6),
            "expected": metric.when_off,
            "met": met,
        }
        importance = max(importance, abs(delta_rel))
        harmful = harmful or against
    return {"deltas": deltas, "importance": round(importance, 6),
            "harmful": harmful}


def run_ablation(plan: AblationPlan,
                 jobs: int = 1,
                 cache_dir: Optional[str | Path] = ".campaign-cache",
                 registry=None,
                 mp_context: str = "spawn",
                 progress: Optional[Callable[[str], None]] = None
                 ) -> tuple[dict, list[dict]]:
    """Execute a plan; return ``(artifact, run_meta)``.

    ``artifact`` is the deterministic ``repro.ablation/v1`` dict (no
    wall-clock content); ``run_meta`` carries per-run ``elapsed_s`` and
    ``cached`` for display.  Execution semantics (jobs, cache,
    registry, mp_context, progress) are those of
    :func:`repro.campaign.run_tasks`.
    """
    runs = expand_runs(plan)
    tasks = [_to_task(run, i) for i, run in enumerate(runs)]
    digest = source_digest()
    outcomes = run_tasks(tasks, jobs=jobs, cache_dir=cache_dir,
                         registry=registry, mp_context=mp_context,
                         progress=progress, digest=digest)

    run_rows: list[dict] = []
    metrics_by_run: dict[str, dict] = {}
    run_meta: list[dict] = []
    for run, task in zip(runs, tasks):
        outcome = outcomes[task.index]
        row = dict(outcome["rows"][0])
        metrics = {k: v for k, v in row.items()
                   if k not in ("workload", "off")}
        metrics_by_run[run.run_id] = metrics
        run_rows.append({
            "run_id": run.run_id,
            "workload": run.workload,
            "kind": run.config["kind"],
            "off": list(run.off),
            "seed": run.seed,
            "scopes": run.config["scopes"],
            "metrics": metrics,
        })
        run_meta.append({
            "run_id": run.run_id,
            "label": task.label(),
            "cached": outcome.get("cached", False),
            "elapsed_s": round(outcome.get("elapsed_s", 0.0), 3),
        })

    def group(wl_id: str, off: tuple[str, ...]) -> list[dict]:
        return [metrics_by_run[r.run_id] for r in runs
                if r.workload == wl_id and r.off == off]

    workload_entries: dict[str, dict] = {}
    component_entries: dict[str, dict] = {}
    for wl_id in plan.workloads:
        comps = _participants(plan, wl_id)
        if not comps:
            continue
        wl = get_workload(wl_id)
        baseline = group(wl_id, ())
        baseline_ok = _metric_values(baseline, "ok")
        workload_entries[wl_id] = {
            "kind": wl.kind,
            "description": wl.description,
            "components": [c.id for c in comps],
            "baseline_runs": [r.run_id for r in runs
                              if r.workload == wl_id and r.off == ()],
            "baseline_metrics": {
                name: _metric_values(baseline, name)
                for name in sorted(baseline[0])
                if _metric_values(baseline, name) is not None},
        }
        for comp in comps:
            one_off = group(wl_id, (comp.id,))
            if not one_off:
                continue
            entry = _score_component(comp, baseline, one_off)
            off_ok = _metric_values(one_off, "ok")
            entry.update({
                "layer": comp.layer,
                "workload": wl_id,
                "description": comp.description,
                "runs": [r.run_id for r in runs
                         if r.workload == wl_id and r.off == (comp.id,)],
                "verdict_changed": (baseline_ok is not None
                                    and off_ok is not None
                                    and baseline_ok != off_ok),
            })
            component_entries[comp.id] = entry

    ranking = sorted(component_entries,
                     key=lambda cid: (-component_entries[cid]["importance"],
                                      cid))
    for rank, cid in enumerate(ranking, start=1):
        component_entries[cid]["rank"] = rank

    artifact = {
        "schema": ABLATION_SCHEMA,
        "plan": {
            "name": plan.name,
            "quick": plan.quick,
            "seeds": list(plan.seeds),
            "workloads": list(plan.workloads),
            "components": list(plan.components),
            "leave_one_in": plan.leave_one_in,
            "source_digest": digest,
        },
        "workloads": workload_entries,
        "runs": run_rows,
        "components": component_entries,
        "ranking": ranking,
    }
    return artifact, run_meta
