"""Schema validation for ``repro.ablation/v1`` artifacts.

Mirrors :mod:`repro.campaign.validate`: a dependency-free structural
validator that CI runs right after a sweep (and that the e2e tests run
on freshly generated artifacts), plus a ``python -m
repro.ablation.validate BENCH_ablation.json`` entry point.

Beyond structure, the validator enforces the artifact's determinism
contract (no wall-clock keys anywhere) and its internal cross
references: every run a component or workload points at exists, every
ranked component exists, ranks are a 1..N permutation ordered by
importance.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from .driver import ABLATION_SCHEMA

__all__ = ["validate_artifact", "main"]

#: Keys that must never appear in the deterministic artifact.
_FORBIDDEN_KEYS = ("elapsed", "elapsed_s", "wall", "wall_s", "pid",
                   "cached")

_DIRECTIONS = ("up", "down", "flat")


def _check_plan(plan: Any, problems: list[str]) -> None:
    if not isinstance(plan, dict):
        problems.append("plan: must be a table")
        return
    for key, types in (("name", str), ("quick", bool),
                       ("leave_one_in", bool), ("source_digest", str)):
        if not isinstance(plan.get(key), types):
            problems.append(f"plan.{key}: missing or wrong type")
    for key in ("seeds", "workloads", "components"):
        if not isinstance(plan.get(key), list):
            problems.append(f"plan.{key}: must be a list")
    seeds = plan.get("seeds")
    if isinstance(seeds, list) and (not seeds or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in seeds)):
        problems.append("plan.seeds: must be a non-empty list of ints")


def _check_runs(runs: Any, problems: list[str]) -> set[str]:
    run_ids: set[str] = set()
    if not isinstance(runs, list) or not runs:
        problems.append("runs: must be a non-empty list")
        return run_ids
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: must be a table")
            continue
        run_id = run.get("run_id")
        if not (isinstance(run_id, str) and len(run_id) == 12):
            problems.append(f"{where}.run_id: must be a 12-hex-char id")
        elif run_id in run_ids:
            problems.append(f"{where}.run_id: duplicate {run_id!r}")
        else:
            run_ids.add(run_id)
        if run.get("kind") not in ("check", "lint", "chaos"):
            problems.append(f"{where}.kind: bad kind {run.get('kind')!r}")
        if not isinstance(run.get("workload"), str):
            problems.append(f"{where}.workload: missing")
        if not isinstance(run.get("off"), list):
            problems.append(f"{where}.off: must be a list")
        if not isinstance(run.get("seed"), int):
            problems.append(f"{where}.seed: must be an int")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append(f"{where}.metrics: must be a non-empty table")
            continue
        for name, value in metrics.items():
            if not isinstance(value,
                              (int, float, bool, type(None))):
                problems.append(
                    f"{where}.metrics.{name}: non-scalar value")
    return run_ids


def _check_components(components: Any, run_ids: set[str],
                      problems: list[str]) -> None:
    if not isinstance(components, dict) or not components:
        problems.append("components: must be a non-empty table")
        return
    for cid, entry in components.items():
        where = f"components.{cid}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be a table")
            continue
        for key, types in (("layer", str), ("workload", str),
                           ("description", str),
                           ("importance", (int, float)),
                           ("rank", int), ("harmful", bool),
                           ("verdict_changed", bool)):
            if not isinstance(entry.get(key), types) or isinstance(
                    entry.get(key), bool) and key in ("importance", "rank"):
                problems.append(f"{where}.{key}: missing or wrong type")
        if isinstance(entry.get("importance"), (int, float)) and not (
                isinstance(entry["importance"], bool)) and (
                entry["importance"] < 0):
            problems.append(f"{where}.importance: must be >= 0")
        for run_id in entry.get("runs", []):
            if run_id not in run_ids:
                problems.append(f"{where}: unknown run {run_id!r}")
        deltas = entry.get("deltas")
        if not isinstance(deltas, dict) or not deltas:
            problems.append(f"{where}.deltas: must be a non-empty table")
            continue
        for metric, delta in deltas.items():
            dw = f"{where}.deltas.{metric}"
            if not isinstance(delta, dict):
                problems.append(f"{dw}: must be a table")
                continue
            if delta.get("expected") not in _DIRECTIONS:
                problems.append(f"{dw}.expected: bad direction")
            if delta.get("missing"):
                continue
            for key in ("base", "off", "delta_abs", "delta_rel"):
                value = delta.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool):
                    problems.append(f"{dw}.{key}: must be a number")
            if not isinstance(delta.get("met"), bool):
                problems.append(f"{dw}.met: must be a bool")


def _check_ranking(artifact: dict, problems: list[str]) -> None:
    ranking = artifact.get("ranking")
    components = artifact.get("components")
    if not isinstance(ranking, list) or not isinstance(components, dict):
        problems.append("ranking: must be a list")
        return
    if sorted(ranking) != sorted(components):
        problems.append("ranking: must be a permutation of components")
        return
    last = None
    for rank, cid in enumerate(ranking, start=1):
        entry = components[cid]
        if entry.get("rank") != rank:
            problems.append(
                f"ranking: {cid} listed at {rank} but rank="
                f"{entry.get('rank')}")
        importance = entry.get("importance", 0)
        if last is not None and importance > last + 1e-12:
            problems.append(
                f"ranking: importance not non-increasing at {cid}")
        last = importance


def _check_deterministic(obj: Any, path: str, problems: list[str]) -> None:
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key in _FORBIDDEN_KEYS:
                problems.append(
                    f"{path}.{key}: wall-clock/machine key in the "
                    f"deterministic artifact")
            _check_deterministic(value, f"{path}.{key}", problems)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            _check_deterministic(value, f"{path}[{i}]", problems)


def validate_artifact(artifact: Any) -> list[str]:
    """Validate an ablation artifact; returns problems ([] = valid)."""
    problems: list[str] = []
    if not isinstance(artifact, dict):
        return ["artifact: must be a JSON object"]
    if artifact.get("schema") != ABLATION_SCHEMA:
        problems.append(
            f"schema: expected {ABLATION_SCHEMA!r}, "
            f"got {artifact.get('schema')!r}")
    _check_plan(artifact.get("plan"), problems)
    run_ids = _check_runs(artifact.get("runs"), problems)
    _check_components(artifact.get("components"), run_ids, problems)
    _check_ranking(artifact, problems)
    workloads = artifact.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        problems.append("workloads: must be a non-empty table")
    else:
        for wl_id, entry in workloads.items():
            for run_id in entry.get("baseline_runs", []):
                if run_id not in run_ids:
                    problems.append(
                        f"workloads.{wl_id}: unknown baseline run "
                        f"{run_id!r}")
    _check_deterministic(artifact, "artifact", problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.ablation.validate "
              "BENCH_ablation.json", file=sys.stderr)
        return 2
    try:
        artifact = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as exc:
        print(f"cannot read {argv[0]}: {exc}", file=sys.stderr)
        return 2
    problems = validate_artifact(artifact)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid {ABLATION_SCHEMA}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
