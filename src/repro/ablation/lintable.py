"""The lint ablation workload: a spec with *seeded* hygiene defects.

Every bundled spec is speclint-clean (that is the point of the §3.9
hardening), so ablating a lint pass against them would measure nothing
— each toggle would be "flat" and the detector components could never
rank.  Instead the lint workload analyzes this deliberately unhygienic
mini-spec, which plants one defect per detector under ablation:

* ``worker`` peeks the ``jobs`` ack queue and loops back without ever
  popping — the queue-discipline pass must report
  ``ACK_READ_WITHOUT_POP`` (§3.9: the head never leaves, so a crash
  retries work that was already externalized).
* ``writer``/``reader`` touch the ``slot`` global with no blocking
  hand-off — the footprint-based race detector (``lint --deps``)
  must report cross-process races on ``slot``.

Disabling a detector therefore *reduces* the finding count by a known
amount; a detector whose one-off run does not move the count is either
broken or redundant, which is exactly what the importance ranking in
``BENCH_ablation.json`` is meant to surface.

The spec is fully explorable (a few hundred states) and deterministic,
so the lint metrics are a pure function of the toggle set.
"""

from __future__ import annotations

from ..spec import NULL, Spec, SpecProcess, Step
from ..spec.lang import ack_read

__all__ = ["lint_workload_spec"]


def lint_workload_spec() -> Spec:
    """Build the seeded-defect spec the lint ablation workload analyzes."""

    # Defect 1: ack-discipline violation — peek with no balancing pop.
    def read(ctx):
        ctx.lset("cur", ack_read(ctx, "jobs"))

    def forward(ctx):
        ctx.set("out", ctx.lget("cur"))
        ctx.goto("read")  # loops back without ever popping the head

    worker = SpecProcess("worker", [
        Step("read", read),
        Step("forward", forward),
    ], locals_={"cur": NULL}, daemon=True)

    # Defect 2: blind cross-process write/read on a shared global.
    def publish(ctx):
        ctx.set("slot", ctx.get("slot") + 1)
        ctx.done()

    def consume(ctx):
        ctx.lset("got", ctx.get("slot"))
        ctx.done()

    writer = SpecProcess("writer", [Step("publish", publish)],
                         daemon=True)
    reader = SpecProcess("reader", [Step("consume", consume)],
                         locals_={"got": NULL}, daemon=True)

    def observe(ctx):
        ctx.block_unless(ctx.get("out") is not None)
        ctx.done()

    observer = SpecProcess("observer", [Step("observe", observe)],
                           daemon=True)

    return Spec("lint-ablation-fixture",
                {"jobs": (1,), "out": NULL, "slot": 0},
                [worker, writer, reader, observer],
                ack_queues=frozenset({"jobs"}))
