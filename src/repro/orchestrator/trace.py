"""Trace Orchestrator: replay adversarial schedules against a controller.

The paper's Trace Orchestrator (§6) "enforces the execution of a trace
by blocking modules from proceeding until the trace demands it",
replaying TLA+ counterexample schedules against the implementation.
Our orchestrator drives the same class of schedules at the level the
simulation exposes: steps gate on observed NIB state (e.g. "wait until
OP k is in flight") and then inject the failure the trace demands at
exactly that point — reproducing the races (like §G's
failure-mid-install) that separate ZENITH from PR.

A trace is a list of :class:`TraceStep`s.  References to switches, OPs
and components may be literals or callables evaluated against a
:class:`TraceContext` at execution time, so one trace template replays
against any controller/topology pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from ..core.controller import ZenithController
from ..core.types import OpStatus
from ..net.dataplane import Network
from ..net.switch import FailureMode
from ..sim import Environment

__all__ = [
    "TraceContext",
    "TraceStep",
    "Delay",
    "AwaitOpStatus",
    "AwaitPredicate",
    "FailSwitch",
    "RecoverSwitch",
    "CrashComponent",
    "Call",
    "Trace",
    "TraceOrchestrator",
]

Ref = Union[str, int, Callable[["TraceContext"], Any]]


@dataclass
class TraceContext:
    """Everything a trace step may need to resolve references."""

    env: Environment
    controller: ZenithController
    network: Network
    #: Free-form bindings the harness provides (e.g. the app, the DAG).
    bindings: dict[str, Any] = field(default_factory=dict)

    def resolve(self, ref: Ref) -> Any:
        """Evaluate a reference: callables get the context."""
        if callable(ref):
            return ref(self)
        return ref


class TraceStep:
    """Base class: one step of a trace schedule."""

    def run(self, ctx: TraceContext):
        """Generator executing the step."""
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass
class Delay(TraceStep):
    """Advance simulated time."""

    seconds: float

    def run(self, ctx: TraceContext):
        yield ctx.env.timeout(self.seconds)


@dataclass
class AwaitOpStatus(TraceStep):
    """Block until an OP reaches one of the given statuses."""

    op_ref: Ref
    statuses: tuple[OpStatus, ...]
    timeout: float = 30.0
    poll: float = 0.002

    def run(self, ctx: TraceContext):
        op_id = ctx.resolve(self.op_ref)
        deadline = ctx.env.now + self.timeout
        while ctx.controller.state.status_of(op_id) not in self.statuses:
            if ctx.env.now >= deadline:
                return
            yield ctx.env.timeout(self.poll)


@dataclass
class AwaitPredicate(TraceStep):
    """Block until a predicate over the context holds."""

    predicate: Callable[[TraceContext], bool]
    timeout: float = 30.0
    poll: float = 0.01

    def run(self, ctx: TraceContext):
        deadline = ctx.env.now + self.timeout
        while not self.predicate(ctx):
            if ctx.env.now >= deadline:
                return
            yield ctx.env.timeout(self.poll)


@dataclass
class FailSwitch(TraceStep):
    """Inject a switch failure."""

    switch_ref: Ref
    mode: FailureMode = FailureMode.COMPLETE

    def run(self, ctx: TraceContext):
        ctx.network.fail_switch(ctx.resolve(self.switch_ref), self.mode)
        yield ctx.env.timeout(0)


@dataclass
class RecoverSwitch(TraceStep):
    """Recover a failed switch."""

    switch_ref: Ref

    def run(self, ctx: TraceContext):
        ctx.network.recover_switch(ctx.resolve(self.switch_ref))
        yield ctx.env.timeout(0)


@dataclass
class CrashComponent(TraceStep):
    """Crash a controller component by (resolved) name."""

    component_ref: Ref

    def run(self, ctx: TraceContext):
        ctx.controller.crash_component(ctx.resolve(self.component_ref))
        yield ctx.env.timeout(0)


@dataclass
class Call(TraceStep):
    """Invoke an arbitrary hook (e.g. submit a DAG, drain a switch)."""

    hook: Callable[[TraceContext], Any]

    def run(self, ctx: TraceContext):
        self.hook(ctx)
        yield ctx.env.timeout(0)


@dataclass
class Trace:
    """A named adversarial schedule."""

    name: str
    steps: list[TraceStep]
    #: Which taxonomy bucket (§C) the trace exercises.
    category: str = ""

    def __len__(self) -> int:
        return len(self.steps)


class TraceOrchestrator:
    """Executes a trace against a live controller."""

    def __init__(self, ctx: TraceContext, trace: Trace):
        self.ctx = ctx
        self.trace = trace
        self.steps_executed = 0
        self.finished = False

    def start(self):
        """Launch the orchestration process; returns the sim process."""
        return self.ctx.env.process(self._run(), name=f"to-{self.trace.name}")

    def _run(self):
        for step in self.trace.steps:
            yield from step.run(self.ctx)
            self.steps_executed += 1
        self.finished = True
