"""Trace library: the adversarial schedules used in the evaluation.

Seventeen traces (Fig. 10) drawn from the specification-error taxonomy
of §C — data-plane transient failures, control-plane component crashes
and concurrent/management-operation races — plus five planned-failover
traces (Fig. 15).  Each trace assumes the harness provides bindings:

* ``app``   — a :class:`~repro.apps.base.RoutingApp` with a standing DAG;
* ``submit``— hook that triggers the *measured* DAG (an app reroute) and
  stores it under ``dag``.

OP references resolve against the measured DAG in topological order, so
the same trace adapts to whatever DAG the app computes.
"""

from __future__ import annotations

from typing import Callable

from ..core.types import OpStatus, OpType
from ..net.switch import FailureMode
from .trace import (
    AwaitOpStatus,
    AwaitPredicate,
    Call,
    CrashComponent,
    Delay,
    FailSwitch,
    RecoverSwitch,
    Trace,
    TraceContext,
)

__all__ = ["standard_traces", "failover_traces", "dag_op", "op_switch",
           "worker_of_op", "submit_measured_dag"]


def submit_measured_dag(ctx: TraceContext) -> None:
    """Trigger the app's reroute; the new DAG becomes the measured one."""
    app = ctx.bindings["app"]
    dag = app.reroute()
    ctx.bindings["dag"] = dag
    ctx.bindings.setdefault("measure_from", ctx.env.now)


def _install_ops(dag) -> list[int]:
    return [op_id for op_id in dag.topological_order()
            if dag.ops[op_id].op_type is OpType.INSTALL]


def dag_op(index: int) -> Callable[[TraceContext], int]:
    """Reference: the index-th INSTALL OP of the measured DAG."""

    def resolve(ctx: TraceContext) -> int:
        ops = _install_ops(ctx.bindings["dag"])
        return ops[index % len(ops)]

    return resolve


def op_switch(index: int) -> Callable[[TraceContext], str]:
    """Reference: the switch of the index-th INSTALL OP."""

    def resolve(ctx: TraceContext) -> str:
        dag = ctx.bindings["dag"]
        ops = _install_ops(dag)
        return dag.ops[ops[index % len(ops)]].switch

    return resolve


def worker_of_op(index: int) -> Callable[[TraceContext], str]:
    """Reference: the worker component owning the OP's switch shard."""

    def resolve(ctx: TraceContext) -> str:
        dag = ctx.bindings["dag"]
        ops = _install_ops(dag)
        switch = dag.ops[ops[index % len(ops)]].switch
        return f"worker-{ctx.controller.config.worker_for_switch(switch)}"

    return resolve


def _submit() -> Call:
    return Call(submit_measured_dag)


def standard_traces() -> list[Trace]:
    """The 17 traces replayed in the Fig. 10 experiment."""
    traces = [
        # ---- data plane: transient failures (§C "DP") -------------------
        Trace("dp-complete-mid-install", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
        ], category="dp-complete-transient"),
        Trace("dp-complete-blip", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(0.05),  # shorter than failure detection
            RecoverSwitch(op_switch(0)),
        ], category="dp-complete-transient"),
        Trace("dp-partial-mid-install", [
            _submit(),
            AwaitOpStatus(dag_op(1), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(1), FailureMode.PARTIAL),
            Delay(0.8),
            RecoverSwitch(op_switch(1)),
        ], category="dp-partial-transient"),
        Trace("dp-complete-post-install", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.DONE,)),
            AwaitOpStatus(dag_op(1), (OpStatus.DONE,)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(1.2),
            RecoverSwitch(op_switch(0)),
        ], category="dp-complete-transient"),
        Trace("dp-partial-ack-race", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT,)),
            Delay(0.002),  # ack likely in flight back to the controller
            FailSwitch(op_switch(0), FailureMode.PARTIAL),
            Delay(0.3),
            RecoverSwitch(op_switch(0)),
        ], category="dp-partial-transient"),
        Trace("dp-two-switches-back-to-back", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(0.2),
            FailSwitch(op_switch(1), FailureMode.COMPLETE),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
            Delay(0.2),
            RecoverSwitch(op_switch(1)),
        ], category="dp-concurrent"),
        # ---- control plane: partial (component) failures (§C "CP") ------
        Trace("cp-worker-crash-scheduled", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT)),
            CrashComponent(worker_of_op(0)),
        ], category="cp-partial"),
        Trace("cp-worker-crash-twice", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT)),
            CrashComponent(worker_of_op(0)),
            Delay(0.6),
            CrashComponent(worker_of_op(1)),
        ], category="cp-partial"),
        Trace("cp-sequencer-crash-mid-dag", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            Call(lambda ctx: ctx.controller.crash_component(
                f"sequencer-{ctx.controller.state.dag_owner.get(ctx.bindings['dag'].dag_id, 0)}")),
        ], category="cp-partial"),
        Trace("cp-scheduler-crash-at-submit", [
            Call(lambda ctx: ctx.controller.crash_component("dag-scheduler")),
            _submit(),
        ], category="cp-partial"),
        Trace("cp-nib-handler-crash-acks-pending", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT,)),
            CrashComponent("nib-event-handler"),
        ], category="cp-partial"),
        Trace("cp-monitoring-crash-in-flight", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT,)),
            CrashComponent("monitoring-server"),
        ], category="cp-partial"),
        Trace("cp-topo-crash-during-recovery", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(0.8),
            RecoverSwitch(op_switch(0)),
            Delay(0.6),  # recovery (detection + cleanup) under way
            CrashComponent("topo-event-handler"),
        ], category="cp-partial"),
        # ---- concurrent / management-operation races (§C "MO") ----------
        Trace("mo-switch-plus-worker", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            CrashComponent(worker_of_op(0)),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
        ], category="concurrent"),
        Trace("mo-failure-during-transition", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            # A *second* reroute races the first transition.
            Call(submit_measured_dag),
            AwaitOpStatus(dag_op(0), (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT,
                                      OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
        ], category="management"),
        Trace("mo-partial-plus-nib-crash", [
            _submit(),
            AwaitOpStatus(dag_op(1), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(1), FailureMode.PARTIAL),
            CrashComponent("nib-event-handler"),
            Delay(0.7),
            RecoverSwitch(op_switch(1)),
        ], category="concurrent"),
        Trace("mo-reroute-then-old-path-dies", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.DONE,)),
            Call(submit_measured_dag),   # management reroute
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
        ], category="management"),
    ]
    assert len(traces) == 17
    return traces


def failover_traces() -> list[Trace]:
    """Five planned-failover schedules (Fig. 15).

    Bindings additionally require ``failover``: a hook performing the
    planned OFC failover (the harness wires a FailoverApp).
    """

    def do_failover(ctx: TraceContext) -> None:
        ctx.bindings["failover"](ctx)

    return [
        Trace("fo-idle", [
            _submit(),
            AwaitPredicate(lambda ctx: getattr(
                ctx.controller.state.dag_status_of(
                    ctx.bindings["dag"].dag_id), "name", "") == "DONE"),
            Call(do_failover),
        ], category="failover"),
        Trace("fo-ops-in-flight", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT,)),
            Call(do_failover),
        ], category="failover"),
        Trace("fo-during-switch-recovery", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(0.8),
            RecoverSwitch(op_switch(0)),
            Delay(0.55),
            Call(do_failover),
        ], category="failover"),
        Trace("fo-concurrent-switch-failure", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.IN_FLIGHT, OpStatus.DONE)),
            Call(do_failover),
            FailSwitch(op_switch(0), FailureMode.COMPLETE),
            Delay(1.0),
            RecoverSwitch(op_switch(0)),
        ], category="failover"),
        Trace("fo-double-failover", [
            _submit(),
            AwaitOpStatus(dag_op(0), (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT,
                                      OpStatus.DONE)),
            Call(do_failover),
            Delay(1.0),
            Call(do_failover),
        ], category="failover"),
    ]
