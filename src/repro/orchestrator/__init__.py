"""Failure injection and trace orchestration."""

from .from_counterexample import trace_from_counterexample
from .failures import (
    ComponentFailureEvent,
    ComponentFailureInjector,
    SwitchFailureEvent,
    SwitchFailureInjector,
    random_component_failures,
    random_switch_failures,
)
from .trace import (
    AwaitOpStatus,
    AwaitPredicate,
    Call,
    CrashComponent,
    Delay,
    FailSwitch,
    RecoverSwitch,
    Trace,
    TraceContext,
    TraceOrchestrator,
    TraceStep,
)
from .tracelib import (
    dag_op,
    failover_traces,
    op_switch,
    standard_traces,
    submit_measured_dag,
    worker_of_op,
)

__all__ = [
    "AwaitOpStatus",
    "AwaitPredicate",
    "Call",
    "ComponentFailureEvent",
    "ComponentFailureInjector",
    "CrashComponent",
    "Delay",
    "FailSwitch",
    "RecoverSwitch",
    "SwitchFailureEvent",
    "SwitchFailureInjector",
    "Trace",
    "TraceContext",
    "TraceOrchestrator",
    "TraceStep",
    "dag_op",
    "failover_traces",
    "op_switch",
    "random_component_failures",
    "random_switch_failures",
    "standard_traces",
    "submit_measured_dag",
    "trace_from_counterexample",
    "worker_of_op",
]
