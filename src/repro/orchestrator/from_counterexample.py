"""Bridge: model-checker counterexamples → replayable runtime traces.

The paper's Fig. 10 methodology runs ZENITH and the baselines "on the
set of TLA+ traces obtained during the process of developing the
ZENITH-core specification", enforced by the Trace Orchestrator.  This
module converts a :class:`~repro.spec.checker.Violation` found on the
controller specification into a :class:`~repro.orchestrator.trace.Trace`
that replays the same *adversarial schedule* against the executable
controller:

* ``swFailure<k>.fail`` / ``swRecovery<k>.recover`` steps become
  FailSwitch/RecoverSwitch actions against the k-th switch of the
  measured DAG;
* the OP progress recorded in the state *preceding* each failure
  becomes AwaitOpStatus gates, so the failure lands at the same point
  of the pipeline as in the counterexample;
* spec OP ids map positionally onto the measured DAG's INSTALL OPs.

The mapping is necessarily abstraction-level (the runtime cannot be
single-stepped the way the checker steps the spec), but it preserves
what matters for convergence experiments: *which* failure hits *when*
relative to OP progress.
"""

from __future__ import annotations

import re
from typing import Optional

from ..core.types import OpStatus
from ..net.switch import FailureMode
from ..spec.checker import Violation
from ..spec.lang import SpecView
from .trace import (
    AwaitOpStatus,
    Call,
    Delay,
    FailSwitch,
    RecoverSwitch,
    Trace,
    TraceStep,
)
from .tracelib import dag_op, op_switch, submit_measured_dag

__all__ = ["trace_from_counterexample"]

#: Spec OP status → the runtime statuses that witness "at least as far".
_STATUS_GATES = {
    "sched": (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT, OpStatus.DONE),
    "flight": (OpStatus.IN_FLIGHT, OpStatus.DONE),
    "done": (OpStatus.DONE,),
}

_FAIL_ACTION = re.compile(r"^swFailure(\d+)\.")
_RECOVER_ACTION = re.compile(r"^swRecovery(\d+)\.")


def _progress_gates(spec, state, num_ops: int) -> list[TraceStep]:
    """AwaitOpStatus steps reproducing the spec state's OP progress."""
    view = SpecView(spec, state)
    statuses = view["status"]
    gates: list[TraceStep] = []
    for op_index in range(num_ops):
        spec_status = statuses[op_index + 1]  # spec ops are 1-indexed
        runtime_statuses = _STATUS_GATES.get(spec_status)
        if runtime_statuses:
            gates.append(AwaitOpStatus(dag_op(op_index), runtime_statuses,
                                       timeout=20.0))
    return gates


def trace_from_counterexample(spec, violation: Violation,
                              name: Optional[str] = None,
                              recovery_dwell: float = 1.0) -> Trace:
    """Build a runtime trace replaying the counterexample's schedule.

    ``spec`` must be a controller specification (its states carry the
    ``status`` vector the OP-progress gates are derived from).
    """
    num_ops = len(spec.view(spec.initial_state())["status"]) - 1
    steps: list[TraceStep] = [Call(submit_measured_dag)]
    down: set[int] = set()
    for index, (action, _state) in enumerate(violation.trace):
        fail = _FAIL_ACTION.match(action)
        recover = _RECOVER_ACTION.match(action)
        if fail:
            shard = int(fail.group(1))
            # Gate on the OP progress at the step *before* the failure.
            pre_state = violation.trace[index - 1][1] if index else _state
            steps.extend(_progress_gates(spec, pre_state, num_ops))
            steps.append(FailSwitch(op_switch(shard),
                                    FailureMode.COMPLETE))
            down.add(shard)
        elif recover:
            shard = int(recover.group(1))
            if shard in down:
                steps.append(Delay(recovery_dwell))
                steps.append(RecoverSwitch(op_switch(shard)))
                down.discard(shard)
    # Recover anything the counterexample left dead, so convergence is
    # measurable (permanent failures need app-level DAG changes).
    for shard in sorted(down):
        steps.append(Delay(recovery_dwell))
        steps.append(RecoverSwitch(op_switch(shard)))
    return Trace(name or f"ce-{spec.name}-{violation.property_name}",
                 steps, category="counterexample")
