"""Failure injection: random switch and component failure schedules.

Drives the failure scenarios of paper Table 3 at scale (Figs. 12/13):
switch failures (complete/partial × transient/permanent) and controller
component crashes, generated from seeded random streams so experiments
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.controller import ZenithController
from ..net.dataplane import Network
from ..net.switch import FailureMode
from ..sim import Environment, RandomStreams

__all__ = [
    "SwitchFailureEvent",
    "ComponentFailureEvent",
    "random_switch_failures",
    "random_component_failures",
    "SwitchFailureInjector",
    "ComponentFailureInjector",
]


@dataclass(frozen=True)
class SwitchFailureEvent:
    """One scheduled switch failure."""

    at: float
    switch: str
    mode: FailureMode
    #: None = permanent; otherwise seconds until recovery.
    recover_after: Optional[float]


@dataclass(frozen=True)
class ComponentFailureEvent:
    """One scheduled component crash."""

    at: float
    component: str


def random_switch_failures(switches: Sequence[str], streams: RandomStreams,
                           window: tuple[float, float], count: int,
                           mean_downtime: float = 2.0,
                           complete_fraction: float = 0.5,
                           permanent_fraction: float = 0.0,
                           concurrent: bool = False,
                           protected: Sequence[str] = ()) -> list[SwitchFailureEvent]:
    """Generate a schedule of random switch failures.

    With ``concurrent=False`` failures are spaced so that at most one
    switch is down at a time (each next failure starts after the
    previous recovery); with ``concurrent=True`` inter-arrival times are
    drawn shorter than downtimes so failures overlap (the Fig. 12(b)
    regime).
    """
    stream = streams.child("switch-failures")
    start, end = window
    candidates = [s for s in switches if s not in set(protected)]
    if not candidates:
        raise ValueError("no switches eligible for failure")
    events = []
    if concurrent:
        times = sorted(stream.uniform(start, end) for _ in range(count))
    else:
        times = []
        cursor = start
        for _ in range(count):
            cursor += stream.expovariate(1.0 / max(
                (end - start) / max(count, 1), 1e-9))
            times.append(cursor)
    for at in times:
        switch = stream.choice(candidates)
        complete = stream.random() < complete_fraction
        mode = FailureMode.COMPLETE if complete else FailureMode.PARTIAL
        if stream.random() < permanent_fraction:
            recover_after: Optional[float] = None
        else:
            recover_after = stream.expovariate(1.0 / mean_downtime)
        events.append(SwitchFailureEvent(at, switch, mode, recover_after))
    if not concurrent:
        # Enforce one-at-a-time: every event (the first included) starts
        # no earlier than the previous outage's end plus a settle gap.
        # A permanent outage never ends, so nothing can follow it.
        events = _serialize_outages(events, start)
    return sorted(events, key=lambda e: e.at)


#: Minimum quiet time between one recovery and the next failure in
#: one-at-a-time schedules.
_SERIAL_GAP = 0.5


def _serialize_outages(events: Sequence[SwitchFailureEvent],
                       start: float) -> list[SwitchFailureEvent]:
    """Shift events so at most one switch is ever down at a time."""
    serialized: list[SwitchFailureEvent] = []
    cursor = start
    for event in sorted(events, key=lambda e: e.at):
        if cursor == float("inf"):
            break  # an earlier permanent outage never ends
        at = max(event.at, cursor)
        serialized.append(SwitchFailureEvent(at, event.switch, event.mode,
                                             event.recover_after))
        if event.recover_after is None:
            cursor = float("inf")
        else:
            cursor = at + event.recover_after + _SERIAL_GAP
    return serialized


def random_component_failures(components: Sequence[str],
                              streams: RandomStreams,
                              window: tuple[float, float], count: int,
                              concurrent: bool = False) -> list[ComponentFailureEvent]:
    """Generate a schedule of random component crashes."""
    stream = streams.child("component-failures")
    start, end = window
    events = []
    if concurrent:
        times = sorted(stream.uniform(start, end) for _ in range(count))
        for at in times:
            events.append(ComponentFailureEvent(at, stream.choice(components)))
    else:
        step = (end - start) / max(count, 1)
        for i in range(count):
            at = start + i * step + stream.uniform(0, 0.5 * step)
            events.append(ComponentFailureEvent(at, stream.choice(components)))
    return sorted(events, key=lambda e: e.at)


class SwitchFailureInjector:
    """Executes a switch failure schedule against a network."""

    def __init__(self, env: Environment, network: Network,
                 schedule: Sequence[SwitchFailureEvent]):
        self.env = env
        self.network = network
        self.schedule = sorted(schedule, key=lambda e: e.at)
        self.executed: list[SwitchFailureEvent] = []
        #: Events skipped because the switch was already down.
        self.skipped_overlaps = 0
        #: Recoveries dropped because a later failure owned the outage.
        self.stale_recoveries_skipped = 0
        self._proc = env.process(self._run(), name="switch-failure-injector")

    def _run(self):
        for event in self.schedule:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            switch = self.network[event.switch]
            if not switch.is_healthy:
                self.skipped_overlaps += 1
                continue  # already down via an overlapping event
            switch.fail(event.mode)
            self.executed.append(event)
            if event.recover_after is not None:
                # failure_count identifies *this* outage: if another
                # failure hits before our recovery fires, the count
                # advances and the recovery would bring up a switch a
                # later (possibly permanent) event deliberately downed.
                token = switch.failure_count
                self.env.process(
                    self._recover_later(event.switch, event.recover_after,
                                        token),
                    name=f"recover-{event.switch}")

    def _recover_later(self, switch_id: str, delay: float, token: int):
        yield self.env.timeout(delay)
        switch = self.network[switch_id]
        if switch.failure_count != token:
            self.stale_recoveries_skipped += 1
            return
        self.network.recover_switch(switch_id)


class ComponentFailureInjector:
    """Executes a component crash schedule against a controller."""

    def __init__(self, env: Environment, controller: ZenithController,
                 schedule: Sequence[ComponentFailureEvent]):
        self.env = env
        self.controller = controller
        self.schedule = sorted(schedule, key=lambda e: e.at)
        self.executed: list[ComponentFailureEvent] = []
        #: Crashes that hit an already-down component (counted no-ops).
        self.noop_crashes = 0
        self._proc = env.process(self._run(), name="component-failure-injector")

    def _run(self):
        for event in self.schedule:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if self.controller.crash_component(event.component):
                self.executed.append(event)
            else:
                self.noop_crashes += 1
