"""Command-line interface.

``python -m repro list``            — list experiments
``python -m repro quickstart``      — the sixty-second demo
``python -m repro fig10``           — run one experiment (quick mode)
``python -m repro fig11 --full``    — full-scale parameters
``python -m repro run fig12 --trace out.json --metrics``
                                    — run with telemetry (trace loads in
                                      https://ui.perfetto.dev)
``python -m repro all``             — run every experiment (quick mode)
``python -m repro check <spec>``    — model-check a named specification
``python -m repro check controller-large --workers 4``
                                    — TLC-style parallel exploration
                                      (sharded fingerprint store, one
                                      process per worker)
``python -m repro check controller-large --compiled``
                                    — compiled-step engine (per-label
                                      closures; byte-identical output)
``python -m repro check controller-large --workers 2 --store-dir /tmp/fp``
                                    — spill fingerprint shards to mmap
                                      files under a memory budget
``python -m repro swarm controller-large --workers 4 --seed 7``
                                    — seeded randomized-DFS swarm
                                      bug-finding (workers share only
                                      the fingerprint store)
``python -m repro lint [target]``   — static analysis of specs/programs
``python -m repro sweep campaigns/quick.toml -j4``
                                    — expand a campaign over a worker
                                      pool into BENCH_campaign.json
``python -m repro render-docs --check``
                                    — regenerate (or verify) the
                                      measured blocks of EXPERIMENTS.md
``python -m repro chaos --seed 0 --out chaos.json``
                                    — search seeded fault schedules for
                                      consistency violations and shrink
                                      the first PR-only failure
``python -m repro chaos --replay examples/chaos_pr_violation.json``
                                    — re-run a committed shrunk
                                      schedule and verify its verdicts
``python -m repro ablate campaigns/ablation.toml``
                                    — sweep the component-ablation
                                      registry into BENCH_ablation.json
                                      (importance ranking, harmful-
                                      component flags)

Every parser is exposed through a ``build_*_parser()`` function so the
documentation tests can assert that each flag DESIGN.md documents
actually exists (and vice versa) without invoking a command.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = [
    "build_ablate_parser",
    "build_chaos_parser",
    "build_main_parser",
    "build_render_docs_parser",
    "build_swarm_parser",
    "build_sweep_parser",
    "main",
]

def _spec_factories() -> dict:
    """name → zero-arg spec factory, from the bundled-spec registry."""
    from .spec.specs import SPEC_SOURCES

    return {name: source.build for name, source in SPEC_SOURCES.items()}


def _nadir_programs() -> dict:
    from .nadir.programs import drain_app_program, worker_pool_program

    return {
        "nadir-drain-app": drain_app_program,
        "nadir-worker-pool": worker_pool_program,
    }


#: Default effect-inference budget for `lint`.  Large enough that every
#: bundled spec's inference runs to completion (the two biggest need
#: ~100k raw states), so footprints are sound and the incomplete-effects
#: warning only fires on genuinely truncated runs.
LINT_MAX_STATES = 200_000


def _run_lint(target, as_json: bool, strict: bool, deps: bool = False,
              max_states: int = LINT_MAX_STATES) -> int:
    """`lint`: run speclint over specs and NADIR programs."""
    from . import analysis
    from .nadir.ast_nodes import Program

    targets = _spec_factories()
    targets.update(_nadir_programs())
    if target is not None:
        if target not in targets:
            print(f"unknown lint target {target!r}; try: "
                  f"{', '.join(sorted(targets))}", file=sys.stderr)
            return 2
        targets = {target: targets[target]}

    results = []
    for _name, factory in targets.items():
        artifact = factory()
        if isinstance(artifact, Program):
            results.append(analysis.analyze_program(artifact, deps=deps))
        else:
            results.append(analysis.analyze_spec(
                artifact, max_states=max_states, deps=deps))

    if as_json:
        print(analysis.render_json(results))
    else:
        print(analysis.render_text(results))
    if any(result.errors for result in results):
        return 1
    if strict and any(result.findings for result in results):
        return 1
    return 0


def _run_experiment(name: str, quick: bool, seed: int,
                    trace: str = None, metrics: bool = False) -> int:
    from .experiments import EXPERIMENTS

    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    tracer = registry = None
    if trace or metrics:
        from . import obs

        tracer = obs.RecordingTracer() if trace else None
        registry = obs.MetricsRegistry() if metrics else None

    started = time.perf_counter()
    if tracer is not None or registry is not None:
        from . import obs

        with obs.observe(tracer=tracer, metrics=registry):
            result = EXPERIMENTS[name](quick=quick, seed=seed)
    else:
        result = EXPERIMENTS[name](quick=quick, seed=seed)
    elapsed = time.perf_counter() - started
    print(result.render())
    if tracer is not None:
        tracer.write(trace)
        spans = len(tracer.complete_op_ids())
        print(f"\ntrace: {trace}  ({len(tracer.chrome_events())} events, "
              f"{spans} complete OP spans) — load in https://ui.perfetto.dev")
    if registry is not None:
        print()
        print(registry.render(limit=40))
    failures = result.check_shape()
    if failures:
        print(f"\nPAPER-SHAPE REGRESSIONS: {failures}", file=sys.stderr)
        return 1
    print(f"\nshape checks passed  [{elapsed:.1f}s]")
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    """The `sweep` subcommand's parser."""
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="expand a campaign TOML into tasks and execute them")
    parser.add_argument("campaign", help="path to the campaign TOML file")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--serial", action="store_true",
                        help="force serial in-process execution")
    parser.add_argument("--out", default="BENCH_campaign.json",
                        help="artifact output path")
    parser.add_argument("--cache-dir", default=".campaign-cache",
                        help="per-task result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the cache")
    parser.add_argument("--mp-context", default="spawn",
                        choices=("spawn", "fork", "forkserver"),
                        help="multiprocessing start method")
    parser.add_argument("--metrics", action="store_true",
                        help="print the campaign metrics registry")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-task progress lines")
    return parser


def _run_sweep(argv) -> int:
    """`sweep`: run a campaign file across a worker pool."""
    args = build_sweep_parser().parse_args(argv)

    from .campaign import (load_campaign, run_campaign, validate_artifact,
                           write_artifact)

    try:
        spec = load_campaign(args.campaign)
    except (OSError, ValueError) as exc:
        print(f"cannot load campaign: {exc}", file=sys.stderr)
        return 2
    registry = None
    if args.metrics:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    jobs = 1 if args.serial else max(1, args.jobs)

    def stderr_progress(line: str) -> None:
        # Progress is a heartbeat, not output: stderr only, so piping
        # stdout stays clean and `--quiet` can drop it entirely.
        print(line, file=sys.stderr)

    artifact = run_campaign(
        spec, jobs=jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        registry=registry, mp_context=args.mp_context,
        progress=None if args.quiet else stderr_progress)
    problems = validate_artifact(artifact)
    for problem in problems:
        print(f"INVALID ARTIFACT: {problem}", file=sys.stderr)
    write_artifact(artifact, args.out)
    rows = sum(len(e["rows"]) for e in artifact["experiments"].values())
    print(f"wrote {args.out}: {len(artifact['experiments'])} experiments, "
          f"{len(artifact['tasks'])} tasks, {rows} rows")
    if registry is not None:
        print()
        print(registry.render(limit=40))
    shape_failures = {exp_id: entry["shape_failures"]
                      for exp_id, entry in artifact["experiments"].items()
                      if entry["shape_failures"]}
    if shape_failures:
        print(f"\nPAPER-SHAPE REGRESSIONS: {shape_failures}",
              file=sys.stderr)
        return 1
    return 1 if problems else 0


def build_render_docs_parser() -> argparse.ArgumentParser:
    """The `render-docs` subcommand's parser."""
    parser = argparse.ArgumentParser(
        prog="repro render-docs",
        description="regenerate the campaign- and ablation-marked "
                    "blocks of EXPERIMENTS.md from their artifacts")
    parser.add_argument("--artifact", default="BENCH_campaign.json")
    parser.add_argument("--ablation-artifact", default="BENCH_ablation.json",
                        help="repro.ablation/v1 artifact feeding the "
                             "ablation: blocks (skipped when absent)")
    parser.add_argument("--docs", default="EXPERIMENTS.md")
    parser.add_argument("--check", action="store_true",
                        help="fail on drift instead of rewriting")
    return parser


def _run_render_docs(argv) -> int:
    """`render-docs`: regenerate (or verify) the measured doc blocks."""
    args = build_render_docs_parser().parse_args(argv)

    import json as _json
    import os as _os

    from .campaign import render_docs

    try:
        artifact = _json.loads(open(args.artifact).read())
    except (OSError, ValueError) as exc:
        print(f"cannot read artifact: {exc}", file=sys.stderr)
        return 2
    ablation = None
    if _os.path.exists(args.ablation_artifact):
        try:
            ablation = _json.loads(open(args.ablation_artifact).read())
        except (OSError, ValueError) as exc:
            print(f"cannot read ablation artifact: {exc}", file=sys.stderr)
            return 2
    try:
        text = open(args.docs).read()
    except OSError as exc:
        print(f"cannot read docs: {exc}", file=sys.stderr)
        return 2
    new_text, changed = render_docs(text, artifact, ablation=ablation)
    if args.check:
        if changed:
            print(f"{args.docs} is stale for: {', '.join(changed)} "
                  f"(regenerate with `python -m repro render-docs`)",
                  file=sys.stderr)
            return 1
        print(f"{args.docs} matches {args.artifact}")
        return 0
    if changed:
        open(args.docs, "w").write(new_text)
        print(f"updated {args.docs}: {', '.join(changed)}")
    else:
        print(f"{args.docs} already up to date")
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    """The `chaos` subcommand's parser."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="sample seeded fault schedules, hunt consistency "
                    "violations the reference controller survives, and "
                    "shrink the first one to a minimal replayable repro")
    parser.add_argument("--seed", type=int, default=0,
                        help="search seed (same seed ⇒ byte-identical "
                             "artifact)")
    parser.add_argument("--trials", type=int, default=5,
                        help="schedules to sample (default: 5)")
    parser.add_argument("--target", default=None,
                        help="controller hunted for violations "
                             "(default: pr; update campaign: naive)")
    parser.add_argument("--reference", default=None,
                        help="controller that must stay clean "
                             "(default: zenith; update campaign: "
                             "consistent)")
    parser.add_argument("--campaign", choices=("update",), default=None,
                        help="named scenario preset: 'update' hunts "
                             "update-window violations (naive vs "
                             "consistent scheduler on the update-gadget "
                             "topology)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the repro.chaos/v1 artifact to PATH")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of interesting trials")
    parser.add_argument("--quick", action="store_true",
                        help="shorter event window + fewer channel "
                             "faults (the CI chaos-smoke preset)")
    parser.add_argument("--replay", metavar="ARTIFACT",
                        help="re-run ARTIFACT's shrunk schedule and "
                             "verify the recorded verdicts")
    parser.add_argument("--progress", action="store_true",
                        help="stderr heartbeat after every trial "
                             "(interesting count, ETA)")
    return parser


def _run_chaos(argv) -> int:
    """`chaos`: adversarial search-and-shrink, or artifact replay."""
    args = build_chaos_parser().parse_args(argv)

    from .chaos import dump_artifact, load_artifact, replay, search
    from .chaos.validate import validate_artifact

    if args.replay:
        try:
            artifact = load_artifact(args.replay)
        except (OSError, ValueError) as exc:
            print(f"cannot load artifact: {exc}", file=sys.stderr)
            return 2
        try:
            outcome = replay(artifact)
        except ValueError as exc:
            print(f"cannot replay: {exc}", file=sys.stderr)
            return 2
        for name, verdict in sorted(outcome["verdicts"].items()):
            first = verdict["first_violation_at"]
            state = (f"VIOLATED at t={first}" if verdict["violated"]
                     else "clean")
            print(f"{name:>8}: {state}")
        if outcome["ok"]:
            print("replay OK: recorded verdicts reproduced exactly")
            return 0
        for mismatch in outcome["mismatches"]:
            print(f"REPLAY MISMATCH: {mismatch}", file=sys.stderr)
        return 1

    scenario = "update" if args.campaign == "update" else "classic"
    target = args.target or ("naive" if scenario == "update" else "pr")
    reference = args.reference or (
        "consistent" if scenario == "update" else "zenith")
    sampler_kwargs = {}
    if args.quick:
        if scenario == "update":
            sampler_kwargs.update(active=8.0, cooldown=10.0)
        else:
            sampler_kwargs.update(active=8.0, cooldown=12.0, n_channel=2,
                                  n_triggers=0)
    progress_cb = None
    if args.progress:
        from .obs.prof import Progress

        heartbeat = Progress(label=f"chaos seed={args.seed}")
        trial_t0 = time.perf_counter()

        def progress_cb(done: int, total: int, interesting: int) -> None:
            elapsed = time.perf_counter() - trial_t0
            eta = (elapsed / done) * (total - done) if done else None
            heartbeat.update(force=(done == total), eta_s=eta,
                             trials=f"{done}/{total}",
                             interesting=interesting)

    started = time.perf_counter()
    artifact = search(args.seed, trials=args.trials, target=target,
                      reference=reference, shrink=not args.no_shrink,
                      progress=progress_cb, scenario=scenario,
                      **sampler_kwargs)
    elapsed = time.perf_counter() - started
    for run in artifact["runs"]:
        flags = []
        for name, verdict in sorted(run["verdicts"].items()):
            first = verdict["first_violation_at"]
            flags.append(f"{name}={'t=%.3f' % first if verdict['violated'] else 'clean'}")
        marker = "  <-- interesting" if run["interesting"] else ""
        print(f"trial {run['trial']}: {'  '.join(flags)}{marker}")
    shrunk = artifact["shrunk"]
    if shrunk is not None:
        print(f"\nshrunk trial {shrunk['from_trial']}: "
              f"{shrunk['events_before']} -> {shrunk['events_after']} "
              f"events in {shrunk['tests_run']} probes")
        from .chaos.schedule import ChaosEvent

        for event in shrunk["schedule"]["events"]:
            print(f"  {ChaosEvent.from_json_obj(event).describe()}")
        for name, verdict in sorted(shrunk["verdicts"].items()):
            first = verdict["first_violation_at"]
            state = (f"VIOLATED at t={first}" if verdict["violated"]
                     else "clean")
            print(f"  {name:>8}: {state}")
    elif artifact["interesting_trials"]:
        print("\n(shrink skipped)")
    else:
        print(f"\nno {target}-only violations in "
              f"{args.trials} trials")
    problems = validate_artifact(artifact)
    for problem in problems:
        print(f"INVALID ARTIFACT: {problem}", file=sys.stderr)
    if args.out:
        dump_artifact(artifact, args.out)
        print(f"\nwrote {args.out}")
    print(f"[{elapsed:.1f}s]")
    return 1 if problems else 0


def build_ablate_parser() -> argparse.ArgumentParser:
    """The `ablate` subcommand's parser."""
    parser = argparse.ArgumentParser(
        prog="repro ablate",
        description="sweep the component-ablation registry "
                    "(baseline plus one-off per component) into a "
                    "repro.ablation/v1 importance-ranking artifact")
    parser.add_argument("plan", nargs="?", default="campaigns/ablation.toml",
                        help="ablation plan TOML "
                             "(default: campaigns/ablation.toml)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--out", default="BENCH_ablation.json",
                        help="artifact output path")
    parser.add_argument("--cache-dir", default=".campaign-cache",
                        help="per-task result cache directory (shared "
                             "with sweep)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the cache")
    parser.add_argument("--mp-context", default="spawn",
                        choices=("spawn", "fork", "forkserver"),
                        help="multiprocessing start method")
    parser.add_argument("--list", action="store_true", dest="list_runs",
                        help="print the expanded run set and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-run progress lines")
    return parser


def _run_ablate(argv) -> int:
    """`ablate`: registry sweep → importance-ranked artifact."""
    args = build_ablate_parser().parse_args(argv)

    from .ablation import load_plan, run_ablation, validate_artifact
    from .campaign import write_artifact

    try:
        plan = load_plan(args.plan)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load plan: {exc}", file=sys.stderr)
        return 2

    if args.list_runs:
        from .ablation import expand_runs

        for run in expand_runs(plan):
            off = ",".join(run.off) or "(baseline)"
            print(f"{run.run_id}  {run.workload:<8} seed={run.seed}  "
                  f"off={off}")
        return 0

    def stderr_progress(line: str) -> None:
        print(line, file=sys.stderr)

    artifact, run_meta = run_ablation(
        plan, jobs=max(1, args.jobs),
        cache_dir=None if args.no_cache else args.cache_dir,
        mp_context=args.mp_context,
        progress=None if args.quiet else stderr_progress)
    problems = validate_artifact(artifact)
    for problem in problems:
        print(f"INVALID ARTIFACT: {problem}", file=sys.stderr)
    write_artifact(artifact, args.out)
    cached = sum(1 for meta in run_meta if meta["cached"])
    print(f"wrote {args.out}: {len(artifact['runs'])} runs "
          f"({cached} cached), {len(artifact['components'])} components "
          f"ranked")
    for cid in artifact["ranking"]:
        entry = artifact["components"][cid]
        flags = []
        if entry["harmful"]:
            flags.append("HARMFUL")
        if entry["verdict_changed"]:
            flags.append("verdict flips")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"  {entry['rank']:2d}. {cid:<22} importance="
              f"{entry['importance']:<10g} ({entry['layer']}/"
              f"{entry['workload']}){suffix}")
    return 1 if problems else 0


def _print_experiment_lines() -> None:
    from .experiments import EXPERIMENTS, describe

    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print(f"{name:<{width}}  {describe(name)}")


def main(argv=None) -> int:
    """CLI dispatcher; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    # Subcommands with their own flag namespaces dispatch before the
    # main parser sees them.
    if argv and argv[0] == "sweep":
        return _run_sweep(argv[1:])
    if argv and argv[0] == "render-docs":
        return _run_render_docs(argv[1:])
    if argv and argv[0] == "chaos":
        return _run_chaos(argv[1:])
    if argv and argv[0] == "ablate":
        return _run_ablate(argv[1:])
    if argv and argv[0] == "swarm":
        return _run_swarm_cmd(argv[1:])

    return _dispatch_main(argv)


def build_swarm_parser() -> argparse.ArgumentParser:
    """`swarm`: seeded randomized-DFS bug-finding over a bundled spec."""
    parser = argparse.ArgumentParser(
        prog="repro swarm",
        description="Swarm bug-finding: N seeded randomized-DFS workers "
                    "sharing only the fingerprint store; --seed "
                    "reproduces every worker's walk exactly")
    parser.add_argument("spec", help="bundled specification name")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="randomized-DFS worker processes (default 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="swarm seed; worker w shuffles successors "
                             "with Random(f'{seed}:{w}') (default 0)")
    parser.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="per-worker expansion budget (default: "
                             "unbounded — every worker's DFS runs to "
                             "exhaustion, matching the serial verdict "
                             "and state/transition counts)")
    parser.add_argument("--store-dir", metavar="DIR",
                        help="spill shared-store fingerprint shards to "
                             "mmap files under DIR when a shard exceeds "
                             "its memory budget (REPRO_FP_SPILL)")
    parser.add_argument("--compiled", action="store_true",
                        help="workers step through compiled per-label "
                             "closures instead of the interpreter")
    parser.add_argument("--keep-going", action="store_true",
                        help="collect every violation instead of "
                             "stopping each worker at its first")
    return parser


def _run_swarm_cmd(argv) -> int:
    args = build_swarm_parser().parse_args(argv)
    from .spec.specs import SPEC_SOURCES

    if args.spec not in SPEC_SOURCES:
        print(f"unknown spec {args.spec!r}; try: "
              f"{', '.join(sorted(SPEC_SOURCES))}", file=sys.stderr)
        return 2
    from .spec.swarm import swarm_check

    try:
        result = swarm_check(
            SPEC_SOURCES[args.spec], workers=args.workers, seed=args.seed,
            max_steps=args.max_steps, store_dir=args.store_dir,
            compiled=args.compiled,
            stop_at_first_violation=not args.keep_going)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    print(result.summary())
    swarm = result.stats["swarm"]
    mode = "exhaustive" if swarm["exhaustive"] else \
        f"budget {swarm['max_steps']} steps/worker"
    print(f"engine=swarm workers={swarm['workers']} seed={swarm['seed']} "
          f"({mode}) steps={swarm['steps']} "
          f"store_bytes={swarm['store_bytes']} spilled={swarm['spilled']}")
    for worker in swarm["per_worker"]:
        print(f"  worker {worker['worker']}: {worker['states']} states, "
              f"depth {worker['max_depth']}, "
              f"digest {worker['trace_digest']}")
    for violation in result.violations:
        print(violation.describe())
    return 0 if result.ok else 1


def build_main_parser() -> argparse.ArgumentParser:
    """The main (non-subcommand) parser: experiments, check, lint."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZENITH (SIGCOMM 2025) reproduction toolkit")
    parser.add_argument("command",
                        help="experiment id (fig3..figA6, table4, ...), "
                             "'run', 'list', 'all', 'quickstart', 'check' "
                             "or 'lint'")
    parser.add_argument("spec", nargs="?",
                        help="specification name (for 'check'/'lint') or "
                             "experiment id (for 'run')")
    parser.add_argument("--full", action="store_true",
                        help="full-scale parameters (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable lint output")
    parser.add_argument("--strict", action="store_true",
                        help="lint: fail on warnings too, not just errors")
    parser.add_argument("--deps", action="store_true",
                        help="lint: also run the footprint-based "
                             "cross-process race detector")
    parser.add_argument("--max-states", type=int, default=None, metavar="N",
                        help="lint: effect-inference state budget "
                             f"(default: {LINT_MAX_STATES})")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a sim-time trace to PATH (Chrome "
                             "trace-event JSON; .jsonl suffix for JSONL)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect and print the metrics registry")
    parser.add_argument("--workers", default=None, metavar="N",
                        help="check: explore with N worker processes, or "
                             "'auto' to pick serial vs parallel from the "
                             "host's core count (default: in-process "
                             "serial)")
    parser.add_argument("--exact", action="store_true",
                        help="check: keep canonical state bytes alongside "
                             "fingerprints and fail loudly on any 64-bit "
                             "hash collision")
    parser.add_argument("--por-deps", action="store_true",
                        help="check: derive POR ample sets from static+"
                             "dynamic footprint independence instead of "
                             "only Step.local hints")
    parser.add_argument("--compiled", action="store_true",
                        help="check: compiled-step engine — per-label "
                             "closures specialized over the flat slot "
                             "vector (byte-identical canonical output; "
                             "coverage reported in stats)")
    parser.add_argument("--store-dir", metavar="DIR",
                        help="check: with --workers, spill fingerprint "
                             "shards to open-addressed mmap files under "
                             "DIR once a shard's in-memory set exceeds "
                             "the REPRO_FP_SPILL budget")
    parser.add_argument("--incremental-fp", action="store_true",
                        help="check: serial fingerprint-dedup engine with "
                             "incremental per-slot digests (re-encodes "
                             "only each step's write footprint)")
    parser.add_argument("--profile", metavar="PATH",
                        help="check: write a repro.prof/v1 phase/label "
                             "profile artifact to PATH (timing rides in "
                             "stats; canonical output stays byte-identical)")
    parser.add_argument("--profile-report", action="store_true",
                        help="check: print the phase breakdown and top "
                             "hot labels after the run (implies profiling)")
    parser.add_argument("--progress", action="store_true",
                        help="check: stderr heartbeat per BFS round "
                             "(states/s, frontier depth, dedup rate, ETA)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="check: write a Chrome trace of worker "
                             "utilization (explore/serialize/relay/idle "
                             "spans; .jsonl suffix for JSONL)")
    parser.add_argument("--list", action="store_true", dest="list_entries",
                        help="with 'run'/'list': one line per experiment")
    return parser


def _dispatch_main(argv) -> int:
    args = build_main_parser().parse_args(argv)

    if args.command == "quickstart":
        from . import quickstart

        quickstart()
        return 0

    if args.command == "list":
        from .experiments import EXPERIMENTS

        if args.list_entries:
            _print_experiment_lines()
            return 0
        specs = _spec_factories()
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("specs:      ", ", ".join(sorted(specs)))
        print("lintable:   ", ", ".join(sorted(
            list(specs) + list(_nadir_programs()))))
        return 0

    if args.command == "lint":
        return _run_lint(args.spec, as_json=args.json, strict=args.strict,
                         deps=args.deps,
                         max_states=(LINT_MAX_STATES if args.max_states
                                     is None else args.max_states))

    if args.command == "check":
        from .spec.specs import SPEC_SOURCES

        if args.spec not in SPEC_SOURCES:
            print(f"unknown spec {args.spec!r}; try: "
                  f"{', '.join(sorted(SPEC_SOURCES))}", file=sys.stderr)
            return 2
        from .spec import ModelChecker

        workers = args.workers
        if workers is not None and workers != "auto":
            try:
                workers = int(workers)
            except ValueError:
                print(f"--workers must be an integer or 'auto', "
                      f"got {workers!r}", file=sys.stderr)
                return 2
        registry = None
        if args.metrics:
            from .obs import MetricsRegistry

            registry = MetricsRegistry()
        source = SPEC_SOURCES[args.spec]
        profile = bool(args.profile or args.profile_report)
        try:
            checker = ModelChecker(
                source.build(), workers=workers, spec_source=source,
                exact_fingerprints=args.exact, registry=registry,
                por_deps=args.por_deps,
                fingerprint_mode="incremental" if args.incremental_fp
                                 else None,
                compiled=args.compiled, store_dir=args.store_dir,
                profile=profile, progress=args.progress,
                trace_out=args.trace_out)
        except ValueError as error:
            # Incompatible option combinations (e.g. --workers N with
            # --incremental-fp, or --exact with --incremental-fp) are
            # user errors, not tracebacks.
            print(error, file=sys.stderr)
            return 2
        result = checker.run()
        print(result.summary())
        stats = dict(result.stats)
        if stats.get("workers_requested") == "auto":
            resolved = stats.get("workers")
            print(f"workers=auto on {stats.get('host_cpus')} cpus -> "
                  f"{'serial' if resolved is None else f'{resolved} workers'}")
        if stats.get("engine") == "parallel":
            print(f"engine=parallel workers={stats['workers']} "
                  f"spawn={stats['spawn_s']}s explore={stats['explore_s']}s "
                  f"{stats.get('states_per_s', 0.0)} states/s "
                  f"dedup_hits={stats['dedup_hits']}")
        elif stats.get("fingerprint_mode"):
            print(f"engine=serial fingerprint_mode={stats['fingerprint_mode']}")
        coverage = stats.get("compiled")
        if isinstance(coverage, dict):
            print(f"engine=compiled "
                  f"coverage={coverage['covered_fraction']:.3f} "
                  f"(codegen={coverage['labels_codegen']} "
                  f"memo={coverage['labels_memo']} "
                  f"interp={coverage['labels_interp']} "
                  f"of {coverage['labels']} labels)")
        if stats.get("store_dir"):
            print(f"store_dir={stats['store_dir']} "
                  f"store_bytes={stats.get('store_bytes')} "
                  f"spilled={stats.get('spilled')} "
                  f"spills={stats.get('spills')}")
        for violation in result.violations:
            print(violation.describe())
        if profile:
            from .obs.prof import dump_prof, render_report

            doc = result.stats.get("profile")
            if doc is None:
                print("no profile collected (engine returned no stats)",
                      file=sys.stderr)
            else:
                if args.profile:
                    dump_prof(doc, args.profile)
                    print(f"profile: {args.profile}  "
                          f"(repro.prof/v1, coverage {doc['coverage']})")
                if args.profile_report:
                    print()
                    print(render_report(doc))
        if args.trace_out:
            print(f"trace: {args.trace_out} — load in "
                  f"https://ui.perfetto.dev")
        if registry is not None:
            print()
            print(registry.render(limit=40))
        return 0 if result.ok else 1

    if args.command == "all":
        from .experiments import EXPERIMENTS

        status = 0
        for name in sorted(EXPERIMENTS):
            print(f"\n################ {name} ################")
            status |= _run_experiment(name, quick=not args.full,
                                      seed=args.seed, trace=args.trace,
                                      metrics=args.metrics)
        return status

    if args.command == "run":
        if args.list_entries:
            _print_experiment_lines()
            return 0
        if not args.spec:
            print("usage: run <experiment> [--trace PATH] [--metrics] "
                  "| run --list", file=sys.stderr)
            return 2
        return _run_experiment(args.spec, quick=not args.full,
                               seed=args.seed, trace=args.trace,
                               metrics=args.metrics)

    return _run_experiment(args.command, quick=not args.full,
                           seed=args.seed, trace=args.trace,
                           metrics=args.metrics)


if __name__ == "__main__":
    sys.exit(main())
