"""Command-line interface.

``python -m repro list``            — list experiments
``python -m repro quickstart``      — the sixty-second demo
``python -m repro fig10``           — run one experiment (quick mode)
``python -m repro fig11 --full``    — full-scale parameters
``python -m repro run fig12 --trace out.json --metrics``
                                    — run with telemetry (trace loads in
                                      https://ui.perfetto.dev)
``python -m repro all``             — run every experiment (quick mode)
``python -m repro check <spec>``    — model-check a named specification
``python -m repro lint [target]``   — static analysis of specs/programs
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

_SPECS = {
    "workerpool-initial": lambda: __import__(
        "repro.spec.specs", fromlist=["worker_pool_spec"]
    ).worker_pool_spec(fixed=False),
    "workerpool-final": lambda: __import__(
        "repro.spec.specs", fromlist=["worker_pool_spec"]
    ).worker_pool_spec(fixed=True),
    "controller": lambda: __import__(
        "repro.spec.specs", fromlist=["controller_spec"]
    ).controller_spec(failures=1),
    "controller-buggy-recovery": lambda: __import__(
        "repro.spec.specs", fromlist=["controller_spec"]
    ).controller_spec(num_switches=1, failures=1, recovery_order="buggy",
                      stale_protection=False, oneshot_sequencer=True),
    "core-with-app": lambda: __import__(
        "repro.spec.specs", fromlist=["core_with_app_spec"]
    ).core_with_app_spec(failures=2),
    "core-with-app-naive": lambda: __import__(
        "repro.spec.specs", fromlist=["core_with_app_spec"]
    ).core_with_app_spec(failures=1, naive_transition=True),
    "drain-app": lambda: __import__(
        "repro.spec.specs", fromlist=["drain_app_spec"]
    ).drain_app_spec("abstract"),
    "drain-app-full-core": lambda: __import__(
        "repro.spec.specs", fromlist=["drain_app_spec"]
    ).drain_app_spec("full"),
    "te-app": lambda: __import__(
        "repro.spec.specs", fromlist=["te_app_spec"]).te_app_spec(),
    "failover-app": lambda: __import__(
        "repro.spec.specs", fromlist=["failover_app_spec"]
    ).failover_app_spec(),
}


def _nadir_programs() -> dict:
    from .nadir.programs import drain_app_program, worker_pool_program

    return {
        "nadir-drain-app": drain_app_program,
        "nadir-worker-pool": worker_pool_program,
    }


def _run_lint(target, as_json: bool, strict: bool) -> int:
    """`lint`: run speclint over specs and NADIR programs."""
    from . import analysis
    from .nadir.ast_nodes import Program

    targets = dict(_SPECS)
    targets.update(_nadir_programs())
    if target is not None:
        if target not in targets:
            print(f"unknown lint target {target!r}; try: "
                  f"{', '.join(sorted(targets))}", file=sys.stderr)
            return 2
        targets = {target: targets[target]}

    results = []
    for _name, factory in targets.items():
        artifact = factory()
        if isinstance(artifact, Program):
            results.append(analysis.analyze_program(artifact))
        else:
            results.append(analysis.analyze_spec(artifact))

    if as_json:
        print(analysis.render_json(results))
    else:
        print(analysis.render_text(results))
    if any(result.errors for result in results):
        return 1
    if strict and any(result.findings for result in results):
        return 1
    return 0


def _run_experiment(name: str, quick: bool, seed: int,
                    trace: str = None, metrics: bool = False) -> int:
    from .experiments import EXPERIMENTS

    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    tracer = registry = None
    if trace or metrics:
        from . import obs

        tracer = obs.RecordingTracer() if trace else None
        registry = obs.MetricsRegistry() if metrics else None

    started = time.perf_counter()
    if tracer is not None or registry is not None:
        from . import obs

        with obs.observe(tracer=tracer, metrics=registry):
            result = EXPERIMENTS[name](quick=quick, seed=seed)
    else:
        result = EXPERIMENTS[name](quick=quick, seed=seed)
    elapsed = time.perf_counter() - started
    print(result.render())
    if tracer is not None:
        tracer.write(trace)
        spans = len(tracer.complete_op_ids())
        print(f"\ntrace: {trace}  ({len(tracer.chrome_events())} events, "
              f"{spans} complete OP spans) — load in https://ui.perfetto.dev")
    if registry is not None:
        print()
        print(registry.render(limit=40))
    failures = result.check_shape()
    if failures:
        print(f"\nPAPER-SHAPE REGRESSIONS: {failures}", file=sys.stderr)
        return 1
    print(f"\nshape checks passed  [{elapsed:.1f}s]")
    return 0


def main(argv=None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZENITH (SIGCOMM 2025) reproduction toolkit")
    parser.add_argument("command",
                        help="experiment id (fig3..figA6, table4, ...), "
                             "'run', 'list', 'all', 'quickstart', 'check' "
                             "or 'lint'")
    parser.add_argument("spec", nargs="?",
                        help="specification name (for 'check'/'lint') or "
                             "experiment id (for 'run')")
    parser.add_argument("--full", action="store_true",
                        help="full-scale parameters (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable lint output")
    parser.add_argument("--strict", action="store_true",
                        help="lint: fail on warnings too, not just errors")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a sim-time trace to PATH (Chrome "
                             "trace-event JSON; .jsonl suffix for JSONL)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect and print the metrics registry")
    args = parser.parse_args(argv)

    if args.command == "quickstart":
        from . import quickstart

        quickstart()
        return 0

    if args.command == "list":
        from .experiments import EXPERIMENTS

        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("specs:      ", ", ".join(sorted(_SPECS)))
        print("lintable:   ", ", ".join(sorted(
            list(_SPECS) + list(_nadir_programs()))))
        return 0

    if args.command == "lint":
        return _run_lint(args.spec, as_json=args.json, strict=args.strict)

    if args.command == "check":
        if args.spec not in _SPECS:
            print(f"unknown spec {args.spec!r}; try: "
                  f"{', '.join(sorted(_SPECS))}", file=sys.stderr)
            return 2
        from .spec import check

        result = check(_SPECS[args.spec]())
        print(result.summary())
        for violation in result.violations:
            print(violation.describe())
        return 0 if result.ok else 1

    if args.command == "all":
        from .experiments import EXPERIMENTS

        status = 0
        for name in sorted(EXPERIMENTS):
            print(f"\n################ {name} ################")
            status |= _run_experiment(name, quick=not args.full,
                                      seed=args.seed, trace=args.trace,
                                      metrics=args.metrics)
        return status

    if args.command == "run":
        if not args.spec:
            print("usage: run <experiment> [--trace PATH] [--metrics]",
                  file=sys.stderr)
            return 2
        return _run_experiment(args.spec, quick=not args.full,
                               seed=args.seed, trace=args.trace,
                               metrics=args.metrics)

    return _run_experiment(args.command, quick=not args.full,
                           seed=args.seed, trace=args.trace,
                           metrics=args.metrics)


if __name__ == "__main__":
    sys.exit(main())
