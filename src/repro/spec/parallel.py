"""TLC-style parallel state-space exploration.

The serial checker's seen-set holds full states in one process, which
caps both memory and throughput.  This engine replaces it with the
classic TLC worker architecture, adapted to spawn-safe Python
multiprocessing (the same discipline as :mod:`repro.campaign`):

* **sharded fingerprint ownership** — the 64 fingerprint-prefix shards
  of :mod:`repro.spec.fingerprint` are dealt round-robin to ``N``
  worker processes; the worker owning a state's shard is the only one
  that dedupes, stores and expands it, so the seen-set is partitioned,
  never replicated;
* **batched state exchange** — exploration is level-synchronous BFS:
  each round, every worker expands the frontier states it owns and
  routes newly generated successors to their owners in per-destination
  pickled batches, relayed through the coordinator without
  re-serialization.  A worker-local "already routed" filter sends any
  given fingerprint at most once per worker;
* **breadcrumb traces** — workers keep only ``fingerprint →
  (parent fingerprint, action)`` breadcrumbs.  A violation found by any
  worker is rebuilt into a full :class:`~repro.spec.checker.Violation`
  by walking breadcrumbs back to the initial state and replaying the
  action labels forward, disambiguating nondeterministic successors by
  fingerprint — the exact trace the serial checker would print.

Determinism and POR/symmetry soundness
--------------------------------------

Workers compute successors with the *same* ``ModelChecker._successors``
/ ``_canonical`` code as the serial engine, on a spec rebuilt from the
same :class:`SpecSource`.  Both the ample-set (POR) choice and the
symmetry canonicalization are pure functions of the state alone — they
never consult the seen-set, the frontier, or anything else that depends
on which worker expands the state or in which order — so the explored
(reduced) state graph is identical at every worker count.  Rounds are
barrier-synchronized and batches are merged in (source worker, position)
order, so repeated runs of the same configuration are byte-identical.

A run either completes with exact results or fails loudly: a worker
that dies (or raises) surfaces as :class:`ParallelCheckError` naming
the worker and carrying the remote traceback — the state space is never
silently truncated.
"""

from __future__ import annotations

import importlib
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.prof import CheckerTraceBuilder
from .checker import CheckResult, ModelChecker, Violation
from .fingerprint import (
    SHARDS,
    FingerprintStore,
    canonical_bytes,
    fingerprint_state,
    shard_of,
)

__all__ = ["ParallelCheckError", "SpecSource", "run_parallel"]

#: Seconds between liveness checks on a worker we are waiting for.
_POLL_S = 0.05


class ParallelCheckError(Exception):
    """A worker process died or raised; the exploration is incomplete."""


@dataclass(frozen=True)
class SpecSource:
    """A picklable recipe for rebuilding a spec in a worker process.

    Specs hold closures (invariants, symmetry functions) and cannot
    cross a spawn boundary themselves; the (module, factory, kwargs)
    triple can.  ``kwargs`` is a sorted tuple of pairs so sources are
    hashable and their repr is stable.
    """

    module: str
    factory: str
    kwargs: tuple[tuple[str, Any], ...] = field(default=())

    @classmethod
    def of(cls, module: str, factory: str, **kwargs) -> "SpecSource":
        return cls(module, factory, tuple(sorted(kwargs.items())))

    def build(self):
        """Import the factory and build the spec."""
        mod = importlib.import_module(self.module)
        return getattr(mod, self.factory)(**dict(self.kwargs))

    def label(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.module}.{self.factory}({args})"


# -- worker side (runs in spawned processes; must stay module-level) ----------
def _worker_main(conn, worker_id: int, nworkers: int, source: SpecSource,
                 options: dict) -> None:
    """Serve rounds: dedupe owned candidates, expand, route successors."""
    try:
        spec = source.build()
        checker = ModelChecker(
            spec, symmetry=options["symmetry"], por=options["por"],
            check_deadlock=options["check_deadlock"],
            validate_por_hints=False,
            por_deps=options.get("por_deps", False),
            profile=options.get("profile", False),
            compiled=options.get("compiled", False),
            uncompiled_labels=options.get("uncompiled_labels", ()))
        # Worker-local phase/label profiler; snapshots ship back on
        # finalize and the coordinator merges them (repro.obs.prof).
        prof = checker.profiler
        perf = time.perf_counter
        if prof is not None:
            phase_s = prof.phase_s
            phase_calls = prof.phase_calls
        exact = options["exact"]
        need_liveness = bool(spec.eventually_always)
        live_predicates = list(spec.eventually_always.values())
        # Workers own disjoint shards, and spill shard files are named
        # by shard index, so every worker can spill into the same
        # --store-dir without coordination.
        store_dir = options.get("store_dir")
        store = FingerprintStore(
            owned=[s for s in range(SHARDS) if s % nworkers == worker_id],
            exact=exact, spill_dir=store_dir)
        #: Membership probes hit mmap pages once a shard spills; charge
        #: them to the "spill" phase so the profile separates disk-tier
        #: dedup from the in-memory sets.
        dedup_phase = "spill" if store_dir is not None else "dedup"
        breadcrumbs: dict[int, tuple[Optional[int], str]] = {}
        depth_of: dict[int, int] = {}
        live_bits: dict[int, tuple] = {}
        edges: list[tuple[int, int]] = []
        routed: set[int] = set()
        # Raw successor -> (canonical state, fingerprint).  Distinct
        # states are regenerated as successors ~3-4x in the bundled
        # specs; the memo pays for canonicalization + fingerprinting
        # once.  Keyed by in-process hash(), which never crosses the
        # spawn boundary — only the fingerprint does.
        fp_memo: dict = {}
        local_next: list[tuple] = []
        conn.send(("ready", worker_id))
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "round":
                _tag, depth, blobs = message
                candidates = local_next
                local_next = []
                for _src, blob in blobs:
                    candidates.extend(pickle.loads(blob))
                # Explore/serialize split, reported every round: the
                # coordinator derives relay and idle spans from it for
                # the --trace-out worker-utilization tracks.
                explore_t0 = perf()
                accepted = duplicates = transitions = 0
                violations: list[tuple] = []
                outbox: dict[int, list] = {}
                for state, fp, parent_fp, action in candidates:
                    payload = canonical_bytes(state) if exact else None
                    if prof is None:
                        added = store.add(fp, payload)
                    else:
                        t0 = perf()
                        added = store.add(fp, payload)
                        t1 = perf()
                        phase_s[dedup_phase] += t1 - t0
                        phase_calls[dedup_phase] += 1
                    if not added:
                        duplicates += 1
                        continue
                    accepted += 1
                    breadcrumbs[fp] = (parent_fp, action)
                    depth_of[fp] = depth
                    if prof is not None:
                        t0 = perf()
                    view = spec.view(state)
                    for name, predicate in spec.invariants.items():
                        if not predicate(view):
                            violations.append(("invariant", name, depth, fp))
                            break
                    if need_liveness:
                        live_bits[fp] = tuple(
                            bool(p(view)) for p in live_predicates)
                    if prof is not None:
                        t1 = perf()
                        phase_s["property_eval"] += t1 - t0
                        phase_calls["property_eval"] += 1
                        # _successors dispatches to the profiled variant
                        # (por_ample + per-label successor_gen) because
                        # checker.profiler is set.
                    successors = checker._successors(state)
                    if (options["check_deadlock"] and not successors
                            and any(pc is not None and not process.daemon
                                    for process, (pc, _locals) in zip(
                                        spec.processes, state.procs))):
                        violations.append(
                            ("deadlock", "no-enabled-step", depth, fp))
                    for succ_action, successor in successors:
                        transitions += 1
                        if prof is not None:
                            rt = perf()
                        memo = fp_memo.get(successor)
                        if memo is None:
                            if prof is None:
                                canon = checker._canonical(successor)
                                succ_fp = fingerprint_state(canon)
                            else:
                                canon = checker._canonical(successor)
                                t1 = perf()
                                phase_s["canonicalize"] += t1 - rt
                                phase_calls["canonicalize"] += 1
                                succ_fp = fingerprint_state(canon)
                                rt = perf()
                                phase_s["fingerprint"] += rt - t1
                                phase_calls["fingerprint"] += 1
                            fp_memo[successor] = (canon, succ_fp)
                        else:
                            canon, succ_fp = memo
                        if need_liveness:
                            edges.append((fp, succ_fp))
                        if succ_fp in routed:
                            if prof is not None:
                                phase_s["dedup"] += perf() - rt
                                phase_calls["dedup"] += 1
                            continue
                        routed.add(succ_fp)
                        owner = shard_of(succ_fp) % nworkers
                        candidate = (canon, succ_fp, fp, succ_action)
                        if owner == worker_id:
                            local_next.append(candidate)
                        else:
                            outbox.setdefault(owner, []).append(candidate)
                        if prof is not None:
                            # Routed-filter membership + routing rides
                            # the dedup phase (it is the cross-worker
                            # half of deduplication).
                            phase_s["dedup"] += perf() - rt
                            phase_calls["dedup"] += 1
                serialize_t0 = perf()
                outbox_blobs = {dest: pickle.dumps(batch)
                                for dest, batch in outbox.items()}
                serialize_end = perf()
                if prof is not None:
                    prof.busy_s += serialize_end - explore_t0
                conn.send(("expanded", {
                    "accepted": accepted,
                    "duplicates": duplicates,
                    "transitions": transitions,
                    "violations": violations,
                    "outbox": outbox_blobs,
                    "self_pending": len(local_next),
                    "store_len": len(store),
                    "store_bytes": store.store_bytes(),
                    "spilled": store.spilled(),
                    "spills": store.spills,
                    "hit_rate": round(store.hit_rate(), 6),
                    "explore_s": serialize_t0 - explore_t0,
                    "serialize_s": serialize_end - serialize_t0,
                }))
            elif tag == "finalize":
                need = message[1]
                reply: dict = {}
                if "traces" in need:
                    reply["breadcrumbs"] = breadcrumbs
                    reply["depth_of"] = depth_of
                if "liveness" in need:
                    reply["edges"] = edges
                    reply["live_bits"] = live_bits
                if "prof" in need and prof is not None:
                    reply["prof"] = prof.snapshot()
                conn.send(("finalized", reply))
            elif tag == "stop":
                conn.send(("stopped", worker_id))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {tag!r}")
    except BaseException:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


# -- coordinator side ---------------------------------------------------------
class _Pool:
    """The spawned workers plus crash-aware messaging.

    ``target`` is the module-level worker entry point — the BFS
    :func:`_worker_main` by default; the swarm driver
    (:mod:`repro.spec.swarm`) passes its randomized-DFS worker and
    inherits the same death detection and error relaying.
    """

    def __init__(self, nworkers: int, source: SpecSource, options: dict,
                 target=None):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        self.nworkers = nworkers
        self.procs = []
        self.conns = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=target if target is not None else _worker_main,
                args=(child_conn, wid, nworkers, source, options),
                daemon=True, name=f"spec-check-{wid}")
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)

    def send(self, wid: int, message) -> None:
        try:
            self.conns[wid].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise self._death(wid) from exc

    def recv(self, wid: int):
        conn = self.conns[wid]
        while not conn.poll(_POLL_S):
            if not self.procs[wid].is_alive() and not conn.poll(_POLL_S):
                raise self._death(wid)
        try:
            message = conn.recv()
        except (EOFError, OSError) as exc:
            raise self._death(wid) from exc
        if message[0] == "error":
            raise ParallelCheckError(
                f"checker worker {wid} raised during exploration; the "
                f"state space was NOT fully explored.  Worker traceback:\n"
                f"{message[2]}")
        return message

    def _death(self, wid: int) -> ParallelCheckError:
        exitcode = self.procs[wid].exitcode
        return ParallelCheckError(
            f"checker worker {wid} died mid-exploration "
            f"(exit code {exitcode}); the state space was NOT fully "
            f"explored — rerun, or fall back to the serial checker")

    def shutdown(self) -> None:
        for wid, conn in enumerate(self.conns):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.conns:
            conn.close()


def _reconstruct_trace(checker: ModelChecker, breadcrumbs: dict,
                       target_fp: int) -> list[tuple]:
    """Replay breadcrumbs into the serial checker's (action, state) trace.

    Breadcrumbs only record action labels; an action may have several
    successors (nondeterministic choice), so each replay step picks the
    matching-label successor whose canonical fingerprint equals the next
    breadcrumb — the same disambiguation TLC uses for its trace files.
    """
    chain: list[tuple[str, int]] = []
    fp = target_fp
    while True:
        parent_fp, action = breadcrumbs[fp]
        chain.append((action, fp))
        if parent_fp is None:
            break
        fp = parent_fp
    chain.reverse()
    state = checker._canonical(checker.spec.initial_state())
    trace: list[tuple] = []
    for action, fp in chain:
        if action == "<init>":
            trace.append((action, state))
            continue
        for succ_action, successor in checker._successors(state):
            if succ_action != action:
                continue
            canon = checker._canonical(successor)
            if fingerprint_state(canon) == fp:
                state = canon
                break
        else:  # pragma: no cover - would mean spec rebuild divergence
            raise ParallelCheckError(
                f"trace reconstruction failed at {action!r}: no successor "
                f"matches fingerprint {fp:#018x} (spec factory is not "
                "deterministic across processes?)")
        trace.append((action, state))
    return trace


def _check_liveness_parallel(checker: ModelChecker, breadcrumbs: dict,
                             depth_of: dict, edges: list,
                             live_bits: dict) -> list[tuple]:
    """◇□ over the fingerprint graph; returns (name, witness_fp) pairs.

    Same algorithm and same canonical witness (minimal (depth,
    fingerprint) failing state in a terminal SCC) as the serial
    checker, so both engines report identical liveness traces.
    """
    from .checker import _tarjan

    nodes = sorted(breadcrumbs, key=lambda fp: (depth_of[fp], fp))
    index_of = {fp: i for i, fp in enumerate(nodes)}
    adjacency: dict[int, list[int]] = {}
    for src_fp, dst_fp in edges:
        adjacency.setdefault(index_of[src_fp], []).append(index_of[dst_fp])
    sccs = _tarjan(len(nodes), adjacency)
    scc_of = {}
    for scc_id, members in enumerate(sccs):
        for node in members:
            scc_of[node] = scc_id
    terminal = [True] * len(sccs)
    for node, outs in adjacency.items():
        for out in outs:
            if scc_of[out] != scc_of[node]:
                terminal[scc_of[node]] = False
    witnesses = []
    for prop_index, name in enumerate(checker.spec.eventually_always):
        best = None
        for scc_id, members in enumerate(sccs):
            if not terminal[scc_id]:
                continue
            for node in members:
                fp = nodes[node]
                if not live_bits[fp][prop_index]:
                    key = (depth_of[fp], fp)
                    if best is None or key < best:
                        best = key
        if best is not None:
            witnesses.append((name, best[1]))
    return witnesses


def run_parallel(checker: ModelChecker) -> CheckResult:
    """Explore ``checker.spec`` with ``checker.workers`` processes."""
    spec = checker.spec
    nworkers = checker.workers
    source = checker.spec_source
    if source is None:
        raise ValueError(
            "workers=N requires spec_source=SpecSource(...) so worker "
            "processes can rebuild the spec (closures cannot be pickled)")
    start_time = time.perf_counter()
    if checker.use_por and checker.validate_por_hints:
        checker._reject_unsound_hints()
    registry = checker.registry
    prefix = (registry.checker_prefix(checker)
              if registry is not None else None)
    tracer = (CheckerTraceBuilder(
                  label=f"check {getattr(spec, 'name', 'spec')} "
                        f"({nworkers} workers)")
              if checker.trace_out else None)
    options = {
        "symmetry": checker.use_symmetry,
        "por": checker.use_por,
        "check_deadlock": checker.check_deadlock,
        "exact": checker.exact_fingerprints,
        "por_deps": checker.use_por_deps,
        "profile": checker.profile,
        "compiled": checker.compiled,
        "uncompiled_labels": checker.uncompiled_labels,
        "store_dir": checker.store_dir,
    }
    pool = _Pool(nworkers, source, options)
    try:
        for wid in range(nworkers):
            pool.recv(wid)  # "ready": spec built, spawn cost paid
        spawn_s = time.perf_counter() - start_time
        explore_start = time.perf_counter()

        init = checker._canonical(spec.initial_state())
        init_fp = fingerprint_state(init)
        pending: dict[int, list] = {wid: [] for wid in range(nworkers)}
        pending[shard_of(init_fp) % nworkers].append(
            (-1, pickle.dumps([(init, init_fp, None, "<init>")])))
        depth = 0
        total_states = total_transitions = total_duplicates = 0
        #: Latest per-worker seen-set footprint (bytes, spilled fps,
        #: shard flushes) — summed into the result stats.
        store_gauges: list = [(0, 0, 0)] * nworkers
        diameter = 0
        raw_violations: list[tuple] = []  # (kind, name, depth, fp)
        prev_accepted = 1
        while True:
            dispatch_t = time.perf_counter()
            for wid in range(nworkers):
                pool.send(wid, ("round", depth, pending[wid]))
            pending = {wid: [] for wid in range(nworkers)}
            round_accepted = round_transitions = 0
            self_pending = 0
            round_stats: list = [None] * nworkers
            reply_at: list = [0.0] * nworkers
            for wid in range(nworkers):
                _tag, stats = pool.recv(wid)
                reply_at[wid] = time.perf_counter()
                round_stats[wid] = stats
                round_accepted += stats["accepted"]
                round_transitions += stats["transitions"]
                total_duplicates += stats["duplicates"]
                self_pending += stats["self_pending"]
                store_gauges[wid] = (stats["store_bytes"],
                                     stats["spilled"], stats["spills"])
                raw_violations.extend(stats["violations"])
                for dest, blob in sorted(stats["outbox"].items()):
                    pending[dest].append((wid, blob))
                if registry is not None:
                    registry.gauge(f"{prefix}.shard{wid}.states").set(
                        stats["store_len"])
                    registry.gauge(
                        f"{prefix}.shard{wid}.dedup_hit_rate").set(
                        stats["hit_rate"])
            total_states += round_accepted
            total_transitions += round_transitions
            if tracer is not None:
                barrier = max(reply_at) - explore_start
                t0 = dispatch_t - explore_start
                for wid in range(nworkers):
                    stats = round_stats[wid]
                    tracer.round_spans(
                        f"worker{wid}", depth, t0,
                        reply_at[wid] - explore_start, barrier,
                        stats["explore_s"], stats["serialize_s"],
                        accepted=stats["accepted"],
                        duplicates=stats["duplicates"])
                tracer.counter("frontier depth", barrier,
                               {"states": round_accepted})
                if total_transitions:
                    tracer.counter("dedup", barrier, {
                        "hit_rate": round(
                            1 - total_states / total_transitions, 4)})
            if round_accepted:
                diameter = depth
            if registry is not None:
                registry.gauge(f"{prefix}.frontier_depth").set(depth)
                registry.counter(f"{prefix}.states").inc(round_accepted)
                registry.counter(
                    f"{prefix}.transitions").inc(round_transitions)
                registry.counter(f"{prefix}.dedup_hits").inc(
                    total_duplicates - registry.counter(
                        f"{prefix}.dedup_hits").value)
                elapsed_so_far = time.perf_counter() - explore_start
                if elapsed_so_far > 0:
                    registry.gauge(f"{prefix}.states_per_s").set(
                        round(total_states / elapsed_so_far, 1))
            if checker.progress is not None:
                checker._progress_round(
                    depth + 1, total_states, round_accepted, prev_accepted,
                    total_transitions, explore_start)
            prev_accepted = round_accepted
            if total_states > checker.max_states:
                raise MemoryError(
                    f"state space exceeds {checker.max_states} states")
            if raw_violations and checker.stop_at_first:
                break
            if self_pending == 0 and not any(pending.values()):
                break
            depth += 1

        # Deterministic violation order, independent of worker count.
        raw_violations.sort(key=lambda v: (v[2], v[0], v[1], v[3]))
        if checker.stop_at_first and raw_violations:
            raw_violations = raw_violations[:1]

        # Serial semantics: liveness is checked whenever exploration ran
        # to completion (it is skipped only on a stop-at-first-violation
        # early exit, where the reachable graph is incomplete).
        need = set()
        check_liveness = bool(
            spec.eventually_always
            and not (checker.stop_at_first and raw_violations))
        if raw_violations:
            need.add("traces")
        if check_liveness:
            need.update(("traces", "liveness"))
        if checker.profile:
            need.add("prof")
        breadcrumbs: dict = {}
        depth_of: dict = {}
        edges: list = []
        live_bits: dict = {}
        if need:
            for wid in range(nworkers):
                pool.send(wid, ("finalize", sorted(need)))
            for wid in range(nworkers):
                _tag, reply = pool.recv(wid)
                breadcrumbs.update(reply.get("breadcrumbs", {}))
                depth_of.update(reply.get("depth_of", {}))
                edges.extend(reply.get("edges", []))
                live_bits.update(reply.get("live_bits", {}))
                if "prof" in reply:
                    checker.profiler.merge(reply["prof"])

        violations = [
            Violation(kind, name,
                      _reconstruct_trace(checker, breadcrumbs, fp))
            for kind, name, _depth, fp in raw_violations]
        if check_liveness:
            live_t0 = time.perf_counter()
            witnesses = _check_liveness_parallel(
                checker, breadcrumbs, depth_of, edges, live_bits)
            if checker.profiler is not None:
                checker.profiler.add(
                    "liveness", time.perf_counter() - live_t0)
            violations.extend(
                Violation("liveness", name,
                          _reconstruct_trace(checker, breadcrumbs, fp))
                for name, fp in witnesses)
    finally:
        pool.shutdown()

    elapsed = time.perf_counter() - start_time
    explore_s = time.perf_counter() - explore_start
    result = CheckResult(
        not violations, total_states, total_transitions, diameter,
        elapsed, violations,
        stats={
            "engine": "parallel",
            "workers": nworkers,
            "spawn_s": round(spawn_s, 3),
            "explore_s": round(explore_s, 3),
            "dedup_hits": total_duplicates,
            "exact": checker.exact_fingerprints,
            "compiled": checker.compiled,
            "store_bytes": sum(g[0] for g in store_gauges),
            "spilled": sum(g[1] for g in store_gauges),
            "spills": sum(g[2] for g in store_gauges),
        })
    if checker.store_dir is not None:
        result.stats["store_dir"] = checker.store_dir
    checker._record_auto_choice(result.stats)
    if explore_s > 0:
        result.stats["states_per_s"] = round(total_states / explore_s, 1)
    if checker.profile:
        result.stats["profile"] = checker._profile_artifact(
            checker.profiler, engine="parallel", workers=nworkers,
            total_s=elapsed, exploration_s=explore_s,
            busy_s=checker.profiler.busy_s,
            counts={"states": total_states,
                    "transitions": total_transitions,
                    "diameter": diameter})
    if tracer is not None:
        tracer.write(checker.trace_out)
    if checker.progress is not None:
        checker.progress.done(states=total_states,
                              transitions=total_transitions,
                              diameter=diameter,
                              elapsed_s=round(elapsed, 2))
    return result
