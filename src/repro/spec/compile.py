"""Compiled-step execution: per-label closures over flat state vectors.

The interpreted engine pays Python's dispatch tax per transition: every
``_expand_step`` builds a :class:`~repro.spec.lang.Ctx`, every read goes
through ``global_index`` dict lookups, and every dedup hashes nested
tuples (``FrozenRecord.__hash__`` rebuilds a frozenset per call).  This
module removes that tax from the hot path (ROADMAP open item 2):

* **flat state vectors** — a state becomes a tuple of small ints: one
  slot per global, per process pc, per process local, each holding the
  *interned id* of its value.  Interning is equality-faithful (ids are
  assigned by ``==``/``hash``, exactly the identifications a dict-based
  seen-set makes: ``True == 1``, ``1.0 == 1``), so vector equality is
  state equality and dedup over int tuples is byte-identical to the
  interpreted engine's dedup over states.
* **per-(process, label) compiled closures** — each label owns a
  transition table mapping the values of the slots the step *reads* to
  its full expansion: the ordered successor list as (slot, id) write
  lists plus a write bitmask.  Tables are filled on demand by one of
  two tiers: a **codegen** tier that translates the label's NADIR AST
  (the same AST :mod:`repro.analysis.deps` walks) into a specialized
  Python closure — guard test first, direct slot reads/writes, queue
  macros inlined — or an **interp** tier that runs the original step
  once under a read-recording ``Ctx``.  Labels the compiler cannot
  cover (no NADIR block, unsupported statement, or an explicit
  ``uncompiled_labels`` override) degrade to interpretation; the tier
  of every label is recorded in ``CheckResult.stats["compiled"]``.
* **self-validating read sets** — the memo key is the projection of the
  vector onto the label's *observed* read slots.  Reads are recorded
  per fill; discovering a new read slot grows the key and clears the
  table.  This is sound without any completeness assumption: a table
  hit means the new state agrees with a previously executed state on
  every slot that execution read, and step functions are deterministic
  given those reads (plus the choice oracle, which the fill
  enumerates), so the cached expansion is the real one.
* **delta reuse** — a successor differs from its parent only on the
  transition's write mask; any process whose result's read mask is
  disjoint from it reuses the parent's cached expansion without even a
  table lookup.  The same mask logic skips invariant re-evaluation for
  properties whose read slots were not written.

Byte-identity: ``run_compiled`` mirrors the serial BFS of
:class:`~repro.spec.checker.ModelChecker` decision for decision — POR
ample scan order, successor order (the LIFO choice-oracle enumeration),
dedup-by-equality, deadlock condition, invariant order, the canonical
(depth, fingerprint) liveness witness, and the ``max_states`` guard —
so ``CheckResult.to_json`` is identical to the interpreted engine's on
every spec (the engine differential matrix enforces this).
"""

from __future__ import annotations

import gc
import time
from operator import itemgetter
from typing import Optional

from ..obs.prof import CheckerTraceBuilder
from .checker import CheckResult, Violation
from .fingerprint import fingerprint_state
from .lang import Blocked, Ctx, NeedChoice, Spec, SpecView, State

__all__ = ["CompiledSpec", "CompiledStepper", "run_compiled"]

#: Result-tuple fields: (read_mask, action, successors, is_ample, label_key)
#: where successors is a tuple of (writes, write_mask) pairs and writes
#: is a tuple of (slot, interned id) assignments in slot order.
_RMASK, _ACTION, _SUCCS, _AMPLE, _LABEL = range(5)


class _RecordingCtx(Ctx):
    """A :class:`Ctx` that records which parent slots the step reads.

    Only *parent* reads condition the memo key: a read of a slot the
    same execution path already wrote returns a derived value, not a
    branch point, so it is excluded (tracked per path via ``_written``).
    Reads accumulate into a shared set across all oracle paths of one
    expansion — the whole expansion is one deterministic function of
    the parent state, so its read trace is well defined.
    """

    def __init__(self, cs: "CompiledSpec", state: State, proc_index: int,
                 oracle, reads: set):
        super().__init__(cs.spec, state, proc_index, oracle)
        self._cs = cs
        self._reads = reads
        self._written: set[int] = set()

    # Global slot == global index (both enumerate ``global_names``), so
    # one dict lookup serves the read, the write, and the recording.
    def get(self, name):
        slot = self.spec.global_index[name]
        if slot not in self._written:
            self._reads.add(slot)
        return self._globals[slot]

    def set(self, name, value):
        slot = self.spec.global_index[name]
        self._written.add(slot)
        self._globals[slot] = value

    def lget(self, name):
        process = self.spec.processes[self.proc_index]
        index = process.local_index[name]
        slot = self._cs.local_slots[self.proc_index][index]
        if slot not in self._written:
            self._reads.add(slot)
        return self._locals[index]

    def lset(self, name, value):
        process = self.spec.processes[self.proc_index]
        index = process.local_index[name]
        self._written.add(self._cs.local_slots[self.proc_index][index])
        self._locals[index] = value

    def peer_pc(self, process_name):
        slot = self._cs.pc_slots[self.spec.process_index[process_name]]
        if slot not in self._written:
            self._reads.add(slot)
        return super().peer_pc(process_name)

    def reset_peer(self, process_name, pc=None):
        index = self.spec.process_index[process_name]
        self._written.add(self._cs.pc_slots[index])
        self._written.update(self._cs.local_slots[index])
        super().reset_peer(process_name, pc)


class _LabelEntry:
    """One (process, label) compiled closure: memo table + fill tier."""

    __slots__ = ("cs", "proc_index", "process", "step", "label", "action",
                 "label_key", "default_next", "is_ample", "pc_bit", "rmask",
                 "keyslots", "getter", "memo", "tier", "fills", "codegen_fn")

    def __init__(self, cs: "CompiledSpec", proc_index: int, process, step,
                 is_ample: bool, tier: str):
        self.cs = cs
        self.proc_index = proc_index
        self.process = process
        self.step = step
        self.label = step.label
        self.action = f"{process.name}.{step.label}"
        self.label_key = (process.name, step.label)
        self.default_next = process.default_next(step.label)
        self.is_ample = is_ample
        self.pc_bit = 1 << cs.pc_slots[proc_index]
        #: Own pc rides in the read mask (never the memo key: it is
        #: constant per entry) — a pc change must invalidate delta reuse.
        self.rmask = self.pc_bit
        self.keyslots: list[int] = []
        self.getter = None
        #: None = forced interpretation (no memoization at all).
        self.memo: Optional[dict] = None if tier == "interp" else {}
        self.tier = tier
        self.fills = 0
        self.codegen_fn = None

    # -- fill: run the step once, record reads, intern the writes -----------
    def fill(self, vec: tuple):
        """Execute the label on ``vec`` and (unless forced-interp) memoize.

        Replicates ``ModelChecker._expand_step`` exactly: a LIFO stack
        of choice oracles, one fresh ``Ctx`` per path, successors in
        completion order — so the compiled successor order is the
        interpreted one.
        """
        cs = self.cs
        self.fills += 1
        state = cs.to_state(vec)
        reads: set[int] = set()
        succs = []
        if self.codegen_fn is not None:
            blocked = self.codegen_fn(cs, vec, state, succs)
            reads.update(self.keyslots)
            if blocked:
                succs = []
        else:
            proc_index = self.proc_index
            pc_slot = cs.pc_slots[proc_index]
            step_run = self.step.run
            default_next = self.default_next
            slot_kind = cs.slot_kind
            intern = cs.intern
            stack: list[list[int]] = [[]]
            while stack:
                oracle = stack.pop()
                ctx = _RecordingCtx(cs, state, proc_index, oracle, reads)
                try:
                    step_run(ctx)
                except Blocked:
                    continue
                except NeedChoice as need:
                    for i in range(need.arity):
                        stack.append(oracle + [i])
                    continue
                # Writes are the *assigned* slots (plus the pc), not the
                # value diff against the fill state: an assignment that
                # happened to be a no-op here can still change the value
                # on another state matching the same memo key.  A pair
                # whose value equals the target's current one applies as
                # a no-op, so assigned ⊇ changed keeps replay exact and
                # the write mask a sound over-approximation.  Values are
                # pulled straight out of the finished ctx via slot_kind —
                # no successor State or full-vector interning.
                next_pc = ctx._next_pc if ctx._jumped else default_next
                ctx_globals = ctx._globals
                ctx_locals = ctx._locals
                ctx_procs = ctx._procs
                wslots = ctx._written
                wslots.add(pc_slot)
                writes = []
                wmask = 0
                for s in sorted(wslots):
                    wmask |= 1 << s
                    kind = slot_kind[s]
                    if kind is None:
                        value = ctx_globals[s]
                    else:
                        j, k = kind
                        if k < 0:
                            value = next_pc if j == proc_index \
                                else ctx_procs[j][0]
                        elif j == proc_index:
                            value = ctx_locals[k]
                        else:
                            value = ctx_procs[j][1][k]
                    writes.append((s, intern(value)))
                succs.append((tuple(writes), wmask))
        if self.memo is None:
            # Forced interpretation: every visit re-executes, nothing is
            # cached, and the all-slots read mask disables delta reuse.
            return (cs.all_mask, self.action, tuple(succs), self.is_ample,
                    self.label_key)
        new_slots = reads.difference(self.keyslots)
        if new_slots:
            # A previously unseen read slot: grow the key and drop the
            # table.  Live entries always satisfy "reads ⊆ keyslots", so
            # a key match proves the cached execution path replays.
            self.keyslots.extend(sorted(new_slots))
            self.getter = (itemgetter(*self.keyslots)
                           if len(self.keyslots) > 1
                           else itemgetter(self.keyslots[0]))
            for slot in new_slots:
                self.rmask |= 1 << slot
            self.memo.clear()
            cs.keyslot_growths += 1
        result = (self.rmask, self.action, tuple(succs), self.is_ample,
                  self.label_key)
        key = self.getter(vec) if self.getter is not None else None
        self.memo[key] = result
        return result


class _RecordingView(SpecView):
    """A :class:`SpecView` that records property reads as slot indices."""

    def __init__(self, cs: "CompiledSpec", state: State, reads: set):
        super().__init__(cs.spec, state)
        self._cs = cs
        self._reads = reads

    def __getitem__(self, name):
        self._reads.add(self._cs.global_slot[name])
        return super().__getitem__(name)

    def local(self, process, name):
        index = self.spec.process_index[process]
        proc = self.spec.processes[index]
        self._reads.add(self._cs.local_slots[index][proc.local_index[name]])
        return super().local(process, name)

    def pc(self, process):
        self._reads.add(self._cs.pc_slots[self.spec.process_index[process]])
        return super().pc(process)


class _PropEntry:
    """One property predicate, memoized on its observed read slots.

    Same self-validating scheme as :class:`_LabelEntry`: the memo key is
    the vector projected onto every slot any evaluation has read; a new
    read slot grows the key and clears the table.  Predicates are pure
    functions of the view by the same API convention the effect
    analyzer relies on.
    """

    __slots__ = ("cs", "name", "predicate", "keyslots", "getter", "memo",
                 "rmask", "fills")

    def __init__(self, cs: "CompiledSpec", name: str, predicate):
        self.cs = cs
        self.name = name
        self.predicate = predicate
        self.keyslots: list[int] = []
        self.getter = None
        self.memo: dict = {}
        self.rmask = 0
        self.fills = 0

    def fill(self, vec: tuple) -> bool:
        cs = self.cs
        self.fills += 1
        reads: set[int] = set()
        view = _RecordingView(cs, cs.to_state(vec), reads)
        verdict = bool(self.predicate(view))
        new_slots = reads.difference(self.keyslots)
        if new_slots:
            self.keyslots.extend(sorted(new_slots))
            self.getter = (itemgetter(*self.keyslots)
                           if len(self.keyslots) > 1
                           else itemgetter(self.keyslots[0]))
            for slot in new_slots:
                self.rmask |= 1 << slot
            self.memo.clear()
        key = self.getter(vec) if self.getter is not None else None
        self.memo[key] = verdict
        return verdict

    def value(self, vec: tuple) -> bool:
        getter = self.getter
        if getter is None:
            if not self.memo:
                return self.fill(vec)
            return self.memo[None]
        verdict = self.memo.get(getter(vec))
        if verdict is None:
            verdict = self.fill(vec)
        return verdict


class CompiledSpec:
    """A spec lowered onto flat interned state vectors.

    ``ample_keys`` (a frozenset of (process name, label) pairs) replaces
    the ``Step.local`` hint as the ample-set oracle when given — the
    deps-POR configuration.  ``uncompiled_labels`` forces the named
    ``"process.label"`` steps back to per-visit interpretation (the
    honest fallback path, and the lever the forced-fallback tests use).
    """

    def __init__(self, spec: Spec, ample_keys=None,
                 uncompiled_labels=()):
        self.spec = spec
        nglobals = len(spec.global_names)
        self.global_slot = {name: i for i, name in enumerate(spec.global_names)}
        self.pc_slots: list[int] = []
        self.local_slots: list[tuple[int, ...]] = []
        slot = nglobals
        for process in spec.processes:
            self.pc_slots.append(slot)
            slot += 1
            self.local_slots.append(
                tuple(range(slot, slot + len(process.locals_))))
            slot += len(process.locals_)
        self.nslots = slot
        self.all_mask = (1 << slot) - 1
        self._ids: dict = {}
        self._values: list = []
        self.none_id = self.intern(None)
        self.keyslot_growths = 0
        uncompiled = frozenset(uncompiled_labels)
        known = {f"{process.name}.{step.label}"
                 for process in spec.processes for step in process.steps}
        unknown = uncompiled - known
        if unknown:
            raise ValueError(
                f"uncompiled_labels name no step: {sorted(unknown)}; "
                "expected 'process.label' pairs from this spec")
        #: Per-process dispatch: interned pc id → label entry.
        self.dispatch: list[dict] = []
        self.entries: list[_LabelEntry] = []
        self.any_ample = False
        for proc_index, process in enumerate(spec.processes):
            table: dict = {}
            for step in process.steps:
                if ample_keys is None:
                    is_ample = step.local
                else:
                    is_ample = (process.name, step.label) in ample_keys
                name = f"{process.name}.{step.label}"
                tier = "interp" if name in uncompiled else "memo"
                entry = _LabelEntry(self, proc_index, process, step,
                                    is_ample, tier)
                if tier != "interp":
                    _attach_codegen(self, entry)
                table[self.intern(step.label)] = entry
                self.entries.append(entry)
                self.any_ample = self.any_ample or is_ample
            self.dispatch.append(table)
        #: Constant result for a terminated process (pc None): reads
        #: only its own pc, yields nothing, never ample.
        self.term_results = [(1 << self.pc_slots[i], None, (), False, None)
                             for i in range(len(spec.processes))]
        #: Deadlock scan: (pc slot, bit) of every non-daemon process.
        self.live_pc_slots = tuple(
            self.pc_slots[i] for i, process in enumerate(spec.processes)
            if not process.daemon)
        #: Slot → location map for extracting written values straight out
        #: of a finished ``Ctx``: ``None`` = global (slot == global
        #: index), ``(j, -1)`` = pc of process j, ``(j, k)`` = local k of
        #: process j.
        self.slot_kind: list = [None] * self.nslots
        for j in range(len(spec.processes)):
            self.slot_kind[self.pc_slots[j]] = (j, -1)
            for k, s in enumerate(self.local_slots[j]):
                self.slot_kind[s] = (j, k)
        self._nglobals = nglobals
        self._proc_slot_pairs = tuple(zip(self.pc_slots, self.local_slots))
        self._unintern_cache: tuple = (None, None)
        self.invariant_entries = [
            _PropEntry(self, name, predicate)
            for name, predicate in spec.invariants.items()]
        self.liveness_entries = [
            _PropEntry(self, name, predicate)
            for name, predicate in spec.eventually_always.items()]

    # -- interning -----------------------------------------------------------
    def intern(self, value) -> int:
        """The small-int id of ``value`` (assigned by ``==`` equality)."""
        ids = self._ids
        vid = ids.get(value)
        if vid is None:
            vid = len(self._values)
            ids[value] = vid
            self._values.append(value)
        return vid

    def to_vector(self, state: State) -> tuple:
        """Flatten + intern a state.  Inverse of :meth:`to_state` up to
        the equality classes interning collapses (``True``/``1``), the
        same classes a dict seen-set collapses."""
        intern = self.intern
        vec = [intern(value) for value in state.globals_]
        for pc, locals_ in state.procs:
            vec.append(intern(pc))
            for value in locals_:
                vec.append(intern(value))
        return tuple(vec)

    def to_state(self, vec: tuple) -> State:
        """Rebuild a :class:`State` from a vector (cached per vector)."""
        cached_vec, cached_state = self._unintern_cache
        if cached_vec is vec:
            return cached_state
        values = self._values
        state = State(
            tuple([values[vid] for vid in vec[:self._nglobals]]),
            tuple([(values[vec[ps]],
                    tuple([values[vec[s]] for s in ls]))
                   for ps, ls in self._proc_slot_pairs]))
        self._unintern_cache = (vec, state)
        return state

    # -- coverage ------------------------------------------------------------
    def coverage(self) -> dict:
        """Per-tier label counts + memo health for ``stats["compiled"]``."""
        tiers = {"codegen": 0, "memo": 0, "interp": 0}
        for entry in self.entries:
            tiers[entry.tier] += 1
        total = len(self.entries)
        return {
            "labels": total,
            "labels_codegen": tiers["codegen"],
            "labels_memo": tiers["memo"],
            "labels_interp": tiers["interp"],
            "covered_fraction": round(
                (tiers["codegen"] + tiers["memo"]) / total, 4) if total else 0.0,
            "label_fills": sum(entry.fills for entry in self.entries),
            "property_fills": sum(
                prop.fills for prop in
                self.invariant_entries + self.liveness_entries),
            "keyslot_growths": self.keyslot_growths,
            "interned_values": len(self._values),
            "slots": self.nslots,
        }


class CompiledStepper:
    """State-in, state-out adapter over :class:`CompiledSpec`.

    Drop-in for ``ModelChecker._successors`` — same POR ample-scan
    semantics, same successor order — used by the parallel workers
    under ``--compiled`` and by the per-label differential tests.  It
    pays vector/state conversion per call, so it buys parity and
    bounded per-label work, not the flat-vector engine's raw speed
    (that lives in :func:`run_compiled`).
    """

    def __init__(self, spec: Spec, use_por: bool = True, ample_keys=None,
                 uncompiled_labels=()):
        self.cs = CompiledSpec(spec, ample_keys=ample_keys,
                               uncompiled_labels=uncompiled_labels)
        self.use_por = use_por

    def expand_label(self, state: State, proc_index: int):
        """All successors of one process's current step (compiled)."""
        cs = self.cs
        vec = cs.to_vector(state)
        result = self._probe(vec, proc_index)
        return self._materialize(vec, result)

    def successors(self, state: State):
        """``ModelChecker._successors`` semantics over the memo tables."""
        cs = self.cs
        vec = cs.to_vector(state)
        nprocs = len(cs.spec.processes)
        if self.use_por and cs.any_ample:
            for proc_index in range(nprocs):
                if vec[cs.pc_slots[proc_index]] == cs.none_id:
                    continue
                entry = cs.dispatch[proc_index].get(vec[cs.pc_slots[proc_index]])
                if entry is None or not entry.is_ample:
                    continue
                result = self._probe(vec, proc_index)
                if result[_SUCCS]:
                    return self._materialize(vec, result)
        out = []
        for proc_index in range(nprocs):
            out.extend(
                self._materialize(vec, self._probe(vec, proc_index)))
        return out

    def _probe(self, vec: tuple, proc_index: int):
        cs = self.cs
        pc_id = vec[cs.pc_slots[proc_index]]
        entry = cs.dispatch[proc_index].get(pc_id)
        if entry is None:
            return cs.term_results[proc_index]
        memo = entry.memo
        if memo is None:
            return entry.fill(vec)
        getter = entry.getter
        key = getter(vec) if getter is not None else None
        result = memo.get(key)
        if result is None:
            result = entry.fill(vec)
        return result

    def _materialize(self, vec: tuple, result):
        action = result[_ACTION]
        out = []
        for writes, _wmask in result[_SUCCS]:
            child = list(vec)
            for slot, vid in writes:
                child[slot] = vid
            out.append((action, self.cs.to_state(tuple(child))))
        return out


def _build_fast_expand(cs: CompiledSpec):
    """exec-generate the per-state expansion with the process loop unrolled.

    Semantically the textbook full loop of ``run_compiled`` (delta
    reuse, then dispatch probe, then fill), specialized to this spec:
    pc slots become literals, per-process dispatch tables and terminal
    results become closure locals, and the record list is built in one
    ``BUILD_LIST``.  Only used on the unprofiled no-ample-scan path —
    the readable loop stays the reference semantics (and the profiled
    engine), this is its constant-folded twin.
    """
    n = len(cs.spec.processes)
    lines = ["def _make(dispatch, term_results):"]
    for i in range(n):
        lines.append(f"    d{i} = dispatch[{i}].get")
        lines.append(f"    t{i} = term_results[{i}]")
    lines.append("    def _expand(vec, prec, wm):")
    lines.append("        delta = 0")
    lines.append("        probes = 0")
    for i in range(n):
        pc_slot = cs.pc_slots[i]
        lines.extend([
            f"        r{i} = prec[{i}]",
            f"        if r{i} is None or wm & r{i}[0]:",
            f"            e = d{i}(vec[{pc_slot}])",
            "            if e is None:",
            f"                r{i} = t{i}",
            "            else:",
            "                probes += 1",
            "                m = e.memo",
            "                if m is None:",
            f"                    r{i} = e.fill(vec)",
            "                else:",
            "                    g = e.getter",
            f"                    r{i} = m.get(g(vec)"
            " if g is not None else None)",
            f"                    if r{i} is None:",
            f"                        r{i} = e.fill(vec)",
            "        else:",
            "            delta += 1",
        ])
    rec = ", ".join(f"r{i}" for i in range(n))
    lines.append(f"        return [{rec}], delta, probes")
    lines.append("    return _expand")
    namespace: dict = {}
    exec(compile("\n".join(lines), "<compiled-expand>", "exec"), namespace)
    return namespace["_make"](cs.dispatch, cs.term_results)


def run_compiled(checker) -> CheckResult:
    """Serial BFS over flat vectors; byte-identical to ``ModelChecker.run``.

    ``checker`` is a :class:`~repro.spec.checker.ModelChecker` with
    ``compiled=True``; this is its serial engine the way
    ``run_parallel`` is its parallel one.
    """
    spec = checker.spec
    start_time = time.perf_counter()
    perf = time.perf_counter
    prof = checker.profiler
    tracer = (CheckerTraceBuilder(
                  label=f"check {getattr(spec, 'name', 'spec')} (compiled)")
              if checker.trace_out else None)
    if checker.use_por and checker.validate_por_hints:
        checker._reject_unsound_hints()
    explore_t0 = perf()
    ample_keys = checker._deps_ample() if checker.use_por_deps else None
    cs = CompiledSpec(spec, ample_keys=ample_keys,
                      uncompiled_labels=getattr(
                          checker, "uncompiled_labels", ()))
    if prof is not None:
        prof.add("compile", perf() - explore_t0)

    use_symmetry = checker.use_symmetry
    init_state = checker._canonical(spec.initial_state())
    init_vec = cs.to_vector(init_state)
    all_mask = cs.all_mask
    none_id = cs.none_id
    pc_slots = cs.pc_slots
    dispatch = cs.dispatch
    term_results = cs.term_results
    nprocs = len(spec.processes)
    proc_range = range(nprocs)
    use_por = checker.use_por
    scan_ample = use_por and cs.any_ample

    seen: dict = {init_vec: 0}
    #: raw successor vector → canonical index (symmetry only), the
    #: analog of the interpreted engine's raw_memo.
    raw_memo: dict = {}
    vecs: list[tuple] = [init_vec]
    parent: list[tuple[int, str]] = [(-1, "<init>")]
    depth: list[int] = [0]
    #: Write mask of the transition that discovered each state
    #: (all_mask when symmetry replaced the raw successor).
    wmask_of: list[int] = [all_mask]
    #: Per-state expansion records for delta reuse (filled at expansion).
    recs: list = [None]
    edges: dict[int, list[int]] = {}
    violations: list[Violation] = []
    diameter = 0
    transitions = 0
    delta_reuses = 0
    probes = 0

    inv_entries = cs.invariant_entries
    inv_union_rmask = 0  # grows with the entries' masks
    #: Per-state "passed every invariant" flags, for the delta skip.
    inv_ok: list[bool] = []

    def trace_to(index: int) -> list[tuple[str, State]]:
        path = []
        while index >= 0:
            pred, action = parent[index]
            path.append((action, cs.to_state(vecs[index])))
            index = pred
        return list(reversed(path))

    def check_invariants(index: int) -> bool:
        vec = vecs[index]
        ok = True
        for prop in inv_entries:
            if not prop.value(vec):
                violations.append(
                    Violation("invariant", prop.name, trace_to(index)))
                ok = False
                break
        inv_ok.append(ok)
        return ok

    if prof is not None:
        t0 = perf()
    if not check_invariants(0) and checker.stop_at_first:
        elapsed = time.perf_counter() - start_time
        stats = {"engine": "compiled", "compiled": cs.coverage()}
        if prof is not None:
            prof.add("property_eval", perf() - t0)
            prof.busy_s = perf() - explore_t0
            stats["profile"] = checker._profile_artifact(
                prof, engine="compiled", total_s=elapsed,
                exploration_s=prof.busy_s,
                counts={"states": 1, "transitions": 0, "diameter": 0})
        return CheckResult(False, 1, 0, 0, elapsed, violations, stats=stats)
    if prof is not None:
        prof.add("property_eval", perf() - t0)
        phase_s = prof.phase_s
        phase_calls = prof.phase_calls
        prof_labels = prof.labels
    for prop in inv_entries:
        inv_union_rmask |= prop.rmask

    max_states = checker.max_states
    check_deadlock = checker.check_deadlock
    stop_at_first = checker.stop_at_first
    live_pc_slots = cs.live_pc_slots
    frontier = [0]
    nvecs = 1
    stop = False
    bfs_round = 0
    #: The unrolled expansion twin (see :func:`_build_fast_expand`) —
    #: only off the profiled path (which owns the phase timestamps) and
    #: the ample-scan path (whose early exit the loop below encodes).
    fast_expand = (None if prof is not None or scan_ample
                   else _build_fast_expand(cs))
    none_prec = [None] * nprocs
    vecs_append = vecs.append
    parent_append = parent.append
    depth_append = depth.append
    wmask_append = wmask_of.append
    recs_append = recs.append
    inv_ok_append = inv_ok.append
    # Exploration allocates monotonically (states are never freed), so
    # cyclic-GC passes over the growing heap are pure overhead — pause
    # collection for the duration, like TLC's generation-free workers.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while frontier and not stop:
            round_t0 = perf()
            next_frontier = []
            for index in frontier:
                vec = vecs[index]
                pidx = parent[index][0]
                if fast_expand is not None:
                    rec, d, p = fast_expand(
                        vec, recs[pidx] if pidx >= 0 else none_prec,
                        wmask_of[index])
                    delta_reuses += d
                    probes += p
                    expansion = rec
                    recs[index] = rec
                    out_edges = edges[index] = []
                    had_successor = False
                    parent_inv_ok = inv_ok[index]
                    child_depth = depth[index] + 1
                    for r in expansion:
                        succs = r[_SUCCS]
                        if not succs:
                            continue
                        had_successor = True
                        action = r[_ACTION]
                        for writes, wm2 in succs:
                            transitions += 1
                            child = list(vec)
                            for slot, vid in writes:
                                child[slot] = vid
                            tvec = tuple(child)
                            if use_symmetry:
                                cidx = raw_memo.get(tvec)
                                if cidx is not None:
                                    out_edges.append(cidx)
                                    continue
                                canon_state = checker._canonical(
                                    cs.to_state(tvec))
                                cvec = cs.to_vector(canon_state)
                                if cvec != tvec:
                                    wm2 = all_mask
                                new_index = nvecs
                                existing = seen.setdefault(cvec, new_index)
                                if existing != new_index:
                                    raw_memo[tvec] = existing
                                    out_edges.append(existing)
                                    continue
                                raw_memo[tvec] = new_index
                                tvec = cvec
                            else:
                                new_index = nvecs
                                existing = seen.setdefault(tvec, new_index)
                                if existing != new_index:
                                    out_edges.append(existing)
                                    continue
                            nvecs = new_index + 1
                            vecs_append(tvec)
                            parent_append((index, action))
                            depth_append(child_depth)
                            wmask_append(wm2)
                            recs_append(None)
                            if child_depth > diameter:
                                diameter = child_depth
                            out_edges.append(new_index)
                            if parent_inv_ok and not (wm2 & inv_union_rmask):
                                inv_ok_append(True)
                            else:
                                if not check_invariants(new_index) \
                                        and stop_at_first:
                                    stop = True
                                    break
                                new_union = 0
                                for prop in inv_entries:
                                    new_union |= prop.rmask
                                inv_union_rmask = new_union
                            next_frontier.append(new_index)
                            if nvecs > max_states:
                                raise MemoryError(
                                    f"state space exceeds {max_states} states")
                        if stop:
                            break
                    if not stop and check_deadlock and not had_successor:
                        alive = False
                        for slot in live_pc_slots:
                            if vec[slot] != none_id:
                                alive = True
                                break
                        if alive:
                            violations.append(
                                Violation("deadlock", "no-enabled-step",
                                          trace_to(index)))
                            if stop_at_first:
                                stop = True
                    if stop:
                        break
                    continue
                prec = recs[pidx] if pidx >= 0 else None
                wm = wmask_of[index]
                rec = [None] * nprocs
                if prof is not None:
                    t0 = perf()
                expansion = None  # set by a successful ample probe
                if scan_ample:
                    # The interpreted ample scan: first process in order
                    # whose current step is ample *and* expands non-empty
                    # is expanded alone.  Probes cache into rec.
                    for i in proc_range:
                        r = None
                        if prec is not None:
                            pe = prec[i]
                            if pe is not None and not (wm & pe[0]):
                                r = pe
                        if r is None:
                            pc_id = vec[pc_slots[i]]
                            if pc_id == none_id:
                                rec[i] = term_results[i]
                                continue
                            entry = dispatch[i].get(pc_id)
                            if entry is None:
                                rec[i] = term_results[i]
                                continue
                            if not entry.is_ample:
                                continue
                            memo = entry.memo
                            if memo is None:
                                r = entry.fill(vec)
                            else:
                                getter = entry.getter
                                key = getter(vec) if getter is not None else None
                                r = memo.get(key)
                                if r is None:
                                    if prof is not None:
                                        tf = perf()
                                        phase_s["successor_gen"] += tf - t0
                                        phase_calls["successor_gen"] += 1
                                        r = entry.fill(vec)
                                        t0 = perf()
                                        phase_s["compile"] += t0 - tf
                                        phase_calls["compile"] += 1
                                    else:
                                        r = entry.fill(vec)
                        rec[i] = r
                        if prof is not None and r[_AMPLE] \
                                and r[_LABEL] is not None:
                            # The interpreted scan expands (and counts)
                            # every ample process it reaches.
                            lentry = prof_labels.get(r[_LABEL])
                            if lentry is None:
                                lentry = prof_labels[r[_LABEL]] = [0, 0, 0.0]
                            lentry[0] += 1
                            lentry[1] += len(r[_SUCCS])
                        if r[_AMPLE] and r[_SUCCS]:
                            expansion = (r,)
                            break
                if expansion is None:
                    for i in proc_range:
                        if rec[i] is None:
                            if prec is not None:
                                pe = prec[i]
                                if pe is not None and not (wm & pe[0]):
                                    rec[i] = pe
                                    delta_reuses += 1
                                    continue
                            pc_id = vec[pc_slots[i]]
                            entry = dispatch[i].get(pc_id)
                            if entry is None:
                                rec[i] = term_results[i]
                                continue
                            probes += 1
                            memo = entry.memo
                            if memo is None:
                                r = entry.fill(vec)
                            else:
                                getter = entry.getter
                                key = getter(vec) if getter is not None else None
                                r = memo.get(key)
                                if r is None:
                                    if prof is not None:
                                        tf = perf()
                                        phase_s["successor_gen"] += tf - t0
                                        phase_calls["successor_gen"] += 1
                                        r = entry.fill(vec)
                                        t0 = perf()
                                        phase_s["compile"] += t0 - tf
                                        phase_calls["compile"] += 1
                                    else:
                                        r = entry.fill(vec)
                            rec[i] = r
                    # After the full loop every slot of ``rec`` is set (a
                    # terminated process contributes its constant empty
                    # result), so the record doubles as the expansion.
                    expansion = rec
                    if prof is not None:
                        # The interpreted full loop expands (and counts)
                        # every live process, including ample ones the scan
                        # already counted.
                        for r in expansion:
                            if r[_LABEL] is not None:
                                lentry = prof_labels.get(r[_LABEL])
                                if lentry is None:
                                    lentry = prof_labels[r[_LABEL]] = [0, 0, 0.0]
                                lentry[0] += 1
                                lentry[1] += len(r[_SUCCS])
                recs[index] = rec
                if prof is not None:
                    t1 = perf()
                    phase_s["successor_gen"] += t1 - t0
                    phase_calls["successor_gen"] += 1
                    t0 = t1
                out_edges = edges[index] = []
                had_successor = False
                for r in expansion:
                    succs = r[_SUCCS]
                    if not succs:
                        continue
                    had_successor = True
                    action = r[_ACTION]
                    for writes, wm2 in succs:
                        transitions += 1
                        child = list(vec)
                        for slot, vid in writes:
                            child[slot] = vid
                        tvec = tuple(child)
                        if use_symmetry:
                            cidx = raw_memo.get(tvec)
                            if cidx is not None:
                                out_edges.append(cidx)
                                continue
                            canon_state = checker._canonical(cs.to_state(tvec))
                            cvec = cs.to_vector(canon_state)
                            if cvec != tvec:
                                wm2 = all_mask
                            new_index = nvecs
                            existing = seen.setdefault(cvec, new_index)
                            if existing != new_index:
                                raw_memo[tvec] = existing
                                out_edges.append(existing)
                                continue
                            raw_memo[tvec] = new_index
                            tvec = cvec
                        else:
                            new_index = nvecs
                            existing = seen.setdefault(tvec, new_index)
                            if existing != new_index:
                                out_edges.append(existing)
                                continue
                        nvecs = new_index + 1
                        vecs.append(tvec)
                        parent.append((index, action))
                        new_depth = depth[index] + 1
                        depth.append(new_depth)
                        wmask_of.append(wm2)
                        recs.append(None)
                        if new_depth > diameter:
                            diameter = new_depth
                        out_edges.append(new_index)
                        if prof is not None:
                            t1 = perf()
                            phase_s["dedup"] += t1 - t0
                            phase_calls["dedup"] += 1
                            t0 = t1
                        # Invariant delta skip: the parent passed and no
                        # property-read slot was written.
                        if (inv_ok[index] and not (wm2 & inv_union_rmask)):
                            inv_ok.append(True)
                            inv_passed = True
                        else:
                            inv_passed = check_invariants(new_index)
                            new_union = 0
                            for prop in inv_entries:
                                new_union |= prop.rmask
                            inv_union_rmask = new_union
                        if prof is not None:
                            t1 = perf()
                            phase_s["property_eval"] += t1 - t0
                            phase_calls["property_eval"] += 1
                            t0 = t1
                        if not inv_passed and stop_at_first:
                            stop = True
                            break
                        next_frontier.append(new_index)
                        if nvecs > max_states:
                            raise MemoryError(
                                f"state space exceeds {max_states} states")
                    if stop:
                        break
                if not stop and check_deadlock and not had_successor:
                    alive = False
                    for slot in live_pc_slots:
                        if vec[slot] != none_id:
                            alive = True
                            break
                    if alive:
                        violations.append(
                            Violation("deadlock", "no-enabled-step",
                                      trace_to(index)))
                        if stop_at_first:
                            stop = True
                if stop:
                    break
            prev_len = len(frontier)
            frontier = next_frontier
            bfs_round += 1
            if tracer is not None:
                now = perf() - start_time
                tracer.round_span("compiled", bfs_round - 1,
                                  round_t0 - start_time, now,
                                  frontier=prev_len)
                tracer.counter("frontier depth", now,
                               {"states": len(frontier)})
                if transitions:
                    tracer.counter("dedup", now, {
                        "hit_rate": round(1 - nvecs / transitions, 4)})
            if checker.progress is not None:
                checker._progress_round(bfs_round, nvecs, len(frontier),
                                        prev_len, transitions, start_time)

        explore_end = perf()
        if not stop and spec.eventually_always:
            live_t0 = perf()
            violations.extend(
                _check_liveness_compiled(checker, cs, vecs, edges, depth,
                                         trace_to))
            if prof is not None:
                prof.add("liveness", perf() - live_t0)
    finally:
        if gc_was_enabled:
            gc.enable()

    elapsed = time.perf_counter() - start_time
    stats = {"engine": "compiled", "compiled": cs.coverage()}
    stats["compiled"]["delta_reuses"] = delta_reuses
    stats["compiled"]["probes"] = probes
    checker._record_auto_choice(stats)
    if prof is not None:
        exploration_s = explore_end - explore_t0
        prof.busy_s = exploration_s
        stats["profile"] = checker._profile_artifact(
            prof, engine="compiled", total_s=elapsed,
            exploration_s=exploration_s,
            counts={"states": len(vecs), "transitions": transitions,
                    "diameter": diameter})
    if tracer is not None:
        tracer.write(checker.trace_out)
    if checker.progress is not None:
        checker.progress.done(states=len(vecs), transitions=transitions,
                              diameter=diameter,
                              elapsed_s=round(elapsed, 2))
    result = CheckResult(not violations, len(vecs), transitions,
                         diameter, elapsed, violations, stats=stats)
    if checker.registry is not None:
        checker._report_metrics(result)
    return result


def _tarjan_flat(n: int, edges: dict) -> list[list[int]]:
    """Iterative Tarjan over 0..n-1, tuned for the compiled engine.

    Computes the same SCC partition as ``checker._tarjan`` (partition
    identity is all the liveness pass consumes — the witness is the
    order-independent minimal (depth, fingerprint)), but keeps the DFS
    work stack in parallel lists instead of repacked tuples and skips
    the per-edge ``edges.get``.
    """
    index = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    empty: tuple = ()
    wnode: list[int] = []
    wpos: list[int] = []
    wout: list = []
    edges_get = edges.get
    for root in range(n):
        if index[root] != -1:
            continue
        wnode.append(root)
        wpos.append(0)
        wout.append(edges_get(root, empty))
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while wnode:
            node = wnode[-1]
            out = wout[-1]
            pos = wpos[-1]
            nout = len(out)
            advanced = False
            lown = low[node]
            while pos < nout:
                succ = out[pos]
                pos += 1
                si = index[succ]
                if si == -1:
                    wpos[-1] = pos
                    low[node] = lown
                    wnode.append(succ)
                    wpos.append(0)
                    wout.append(edges_get(succ, empty))
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    advanced = True
                    break
                if on_stack[succ] and si < lown:
                    lown = si
            if advanced:
                continue
            low[node] = lown
            wnode.pop()
            wpos.pop()
            wout.pop()
            if wnode:
                p = wnode[-1]
                if lown < low[p]:
                    low[p] = lown
            if lown == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.append(w)
                    if w == node:
                        break
                sccs.append(component)
    return sccs


def _check_liveness_compiled(checker, cs: CompiledSpec, vecs, edges, depth,
                             trace_to) -> list[Violation]:
    """◇□ over vectors: same terminal-SCC pass, same canonical witness
    (minimal (BFS depth, state fingerprint)) as the interpreted engine,
    with predicate evaluation memoized per property."""
    sccs = _tarjan_flat(len(vecs), edges)
    scc_of = [0] * len(vecs)
    for scc_id, members in enumerate(sccs):
        for node in members:
            scc_of[node] = scc_id
    terminal = [True] * len(sccs)
    for node, outs in edges.items():
        own = scc_of[node]
        for out in outs:
            if scc_of[out] != own:
                terminal[own] = False
    violations = []
    for prop in cs.liveness_entries:
        value = prop.value
        best = None  # ((depth, fingerprint), node)
        for scc_id, members in enumerate(sccs):
            if not terminal[scc_id]:
                continue
            for node in members:
                if not value(vecs[node]):
                    key = (depth[node],
                           fingerprint_state(cs.to_state(vecs[node])))
                    if best is None or key < best[0]:
                        best = (key, node)
        if best is not None:
            violations.append(
                Violation("liveness", prop.name, trace_to(best[1])))
    return violations


# -- NADIR codegen tier -------------------------------------------------------
def _attach_codegen(cs: CompiledSpec, entry: _LabelEntry) -> None:
    """Attach a generated closure when the spec carries a NADIR AST.

    The closure becomes the entry's *fill* executor: guard first, direct
    slot reads/writes, queue macros inlined — and its read set is the
    statically complete AST footprint, so the memo key never has to
    grow.  Labels without a block (or with statements outside the
    supported vocabulary) keep the interpreted fill; that *is* the
    fallback path the coverage stats report.
    """
    program = getattr(cs.spec, "nadir_program", None)
    if program is None:
        return
    try:
        from .compile_nadir import compile_label
    except ImportError:  # pragma: no cover - optional tier
        return
    compiled = compile_label(cs, entry, program)
    if compiled is None:
        return
    fn, read_slots = compiled
    entry.codegen_fn = fn
    entry.tier = "codegen"
    entry.keyslots = sorted(read_slots)
    if entry.keyslots:
        entry.getter = (itemgetter(*entry.keyslots)
                        if len(entry.keyslots) > 1
                        else itemgetter(entry.keyslots[0]))
    for slot in entry.keyslots:
        entry.rmask |= 1 << slot
