"""Stable 64-bit state fingerprints and the sharded fingerprint store.

TLC scales past in-memory state sets by storing *fingerprints* — fixed
width hashes of canonicalized states — instead of the states
themselves.  This module provides the same mechanism for
:class:`repro.spec.lang.State`:

* :func:`canonical_bytes` — a deterministic byte encoding of a state
  that is **equality-faithful** (two states compare equal under Python
  ``==`` iff they encode to the same bytes) and **stable across
  interpreter invocations** (no use of ``hash()``, whose string hashing
  is randomized per process by ``PYTHONHASHSEED``);
* :func:`fingerprint_state` / :func:`fingerprint_bytes` — the encoding
  folded through BLAKE2b to a 64-bit integer;
* :class:`FingerprintStore` — a seen-set of fingerprints sharded by
  fingerprint prefix, with an optional *exact mode* that keeps the
  canonical bytes alongside each fingerprint and turns any hash
  collision into a loud :class:`FingerprintCollisionError` instead of a
  silently pruned state.

Collision probability
---------------------

With an ideal 64-bit hash, a run visiting ``n`` distinct states misses
a state (treats it as seen) only if two distinct canonical encodings
collide; by the birthday bound the probability of *any* collision is at
most ``n * (n - 1) / 2**65``.  At the scale this checker reaches in
Python — 10**7 states — that is under ``3e-6`` per run; at TLC-like
10**9 states it would be ~3%, which is why exact mode exists as a
fallback for small specs and why the bound is recorded in
``BENCH_checker.json`` artifacts.

Equality faithfulness requires the same value identifications Python's
``==`` makes inside states: ``True == 1``, ``1 == 1.0``.  Numbers are
therefore canonicalized (bools to ints, integral floats to ints) before
encoding, so states that a ``dict``-based seen-set would merge also
share a fingerprint.

Encoding scheme
---------------

A pure-Python byte encoder costs ~37us per controller state — more
than generating the state's successors — so the encoder instead
*normalizes* the value tree in Python (cheap: most nodes pass through
untouched) and lets C-level ``marshal`` produce the bytes (~2us).
Normalization maps every state value onto the marshal-canonical subset
{None, int, non-integral float, str, bytes, tuple, Ellipsis}:

* ``bool`` -> ``int``, integral ``float`` -> ``int`` (``==`` faithful);
* ``frozenset``/``set`` -> ``(Ellipsis, "fs", sorted elements)``
  (insertion order must not leak into the encoding);
* ``FrozenRecord``/``dict`` -> ``(Ellipsis, "d", items sorted by key)``;
* a literal ``Ellipsis`` leaf -> ``(Ellipsis, "e")`` so the tags above
  can never collide with user data.

Marshal version 0 is the reference-free format: equal-but-distinct
strings encode identically (later versions emit id-based back
references, which would break canonicality).
"""

from __future__ import annotations

import hashlib
import marshal
from typing import Iterable, Optional

from .lang import State, changed_slots

__all__ = [
    "FingerprintCollisionError",
    "FingerprintStore",
    "IncrementalFingerprinter",
    "canonical_bytes",
    "fingerprint_bytes",
    "fingerprint_state",
    "shard_of",
]

#: Global shard count = 2**_SHARD_BITS; shards are dealt to workers
#: round-robin so any worker count divides the space evenly.
_SHARD_BITS = 6
SHARDS = 1 << _SHARD_BITS


class FingerprintCollisionError(Exception):
    """Two distinct canonical states hashed to the same fingerprint.

    Only detectable (and raised) in exact mode; a hash-only store would
    silently prune one of the states.
    """


def _marshal_key(value):
    # Total order over heterogeneous normalized values, for sorting set
    # elements / dict items whose natural comparison raises TypeError.
    return marshal.dumps(value, 0)


#: Normalized forms of frozensets seen so far.  ``_norm`` is a pure
#: function, so caching is transparent; frozensets recur heavily across
#: states (switch tables, installed-rule sets) and their normalization
#: is the expensive path (sort + rebuild).  Process-local: the cache
#: key uses in-process ``hash()``, the cached *value* does not.
_FS_CACHE: dict = {}


def _norm(value):
    cls = value.__class__
    # Fast path: already marshal-canonical, returned untouched (no
    # allocation) — the overwhelmingly common case inside states.
    if cls is int or cls is str:
        return value
    if value is None or cls is bytes:
        return value
    if cls is bool:
        return int(value)  # True == 1 inside states
    if cls is float:
        # 1.0 == 1 inside states; -0.0 lands on 0 via the same rule.
        return int(value) if value.is_integer() else value
    if cls is tuple:
        # Rebuild only if some element changed.
        normed = None
        for index, item in enumerate(value):
            fixed = _norm(item)
            if normed is None:
                if fixed is item:
                    continue
                normed = list(value[:index])
            normed.append(fixed)
        return value if normed is None else tuple(normed)
    if cls is frozenset or cls is set or isinstance(value, (frozenset, set)):
        if cls is frozenset:
            cached = _FS_CACHE.get(value)
            if cached is not None:
                return cached
        elems = [_norm(item) for item in value]
        try:
            elems.sort()
        except TypeError:
            elems.sort(key=_marshal_key)
        normed = (Ellipsis, "fs", tuple(elems))
        if cls is frozenset:
            _FS_CACHE[value] = normed
        return normed
    if isinstance(value, dict):  # FrozenRecord subclasses dict
        items = [(_norm(key), _norm(item)) for key, item in value.items()]
        try:
            items.sort()
        except TypeError:
            items.sort(key=_marshal_key)
        return (Ellipsis, "d", tuple(items))
    if isinstance(value, tuple):  # tuple subclass (== a plain tuple)
        return tuple(_norm(item) for item in value)
    if isinstance(value, int):  # bool/int subclasses
        return int(value)
    if value is Ellipsis:
        return (Ellipsis, "e")  # keep the structural tags collision-free
    raise TypeError(
        f"cannot fingerprint a {type(value).__name__} leaf; states may "
        "only contain None/bool/int/float/str/bytes, tuples, "
        "(frozen)sets and FrozenRecords")


def canonical_bytes(state: State) -> bytes:
    """The equality-faithful, cross-interpreter-stable encoding."""
    return marshal.dumps((_norm(state.globals_), _norm(state.procs)), 0)


def fingerprint_bytes(payload: bytes) -> int:
    """Fold an encoding to a 64-bit fingerprint (BLAKE2b, fixed key)."""
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big")


def fingerprint_state(state: State) -> int:
    """The 64-bit fingerprint of ``state``."""
    return fingerprint_bytes(canonical_bytes(state))


def shard_of(fp: int) -> int:
    """The global shard (by fingerprint prefix) owning ``fp``."""
    return fp >> (64 - _SHARD_BITS)


class IncrementalFingerprinter:
    """Fingerprints via per-slot digests, updated along transitions.

    Re-encoding a whole state per successor costs ~20us on controller
    states; a step typically writes one or two slots.  This fingerprint
    represents a state as the concatenation of one 8-byte BLAKE2b
    digest per *slot* (each global variable, then each process's
    (pc, locals) pair) and hashes that fixed-width **vector** to the
    64-bit fingerprint.  A successor's vector is the parent's with only
    the transition's written slots re-digested — the dirty set comes
    from :func:`repro.spec.lang.changed_slots`, the slot-identity diff
    that is exact for the step's write footprint.

    Equality faithfulness: slot digests go through the same ``_norm``
    canonicalization as :func:`canonical_bytes`, so two states equal
    under Python ``==`` (slot-wise, by construction of ``State``)
    produce identical vectors; distinct states produce distinct vectors
    up to 64-bit digest collisions — the same collision model as full
    fingerprints, property-tested against them in the spec suite.  The
    incremental fingerprint *value* differs from ``fingerprint_state``
    (different encoding); only equality structure is shared, which is
    all a seen-set needs.

    Slot values recur massively across states (a queue tail, a settled
    switch table), so digests are memoized by value up to
    ``cache_limit`` entries; past the limit the fingerprinter keeps
    working, just without new memo entries.
    """

    _DIGEST_SIZE = 8

    def __init__(self, spec, cache_limit: int = 1 << 17):
        self.nglobals = len(spec.global_names)
        self.nprocs = len(spec.processes)
        self.cache_limit = cache_limit
        self._cache: dict = {}
        #: Slot digests consulted (fresh or memoized) — a deterministic
        #: work counter the ablation harness compares against the
        #: full-encoding engine's ``transitions × slot_count``.
        self.slots_digested = 0

    def _digest(self, value) -> bytes:
        cache = self._cache
        digest = cache.get(value)
        if digest is None:
            digest = hashlib.blake2b(
                marshal.dumps(_norm(value), 0),
                digest_size=self._DIGEST_SIZE).digest()
            if len(cache) < self.cache_limit:
                cache[value] = digest
        return digest

    def vector(self, state: State) -> bytes:
        """The full per-slot digest vector of ``state`` (from scratch)."""
        digest = self._digest
        self.slots_digested += self.nglobals + self.nprocs
        parts = [digest(value) for value in state.globals_]
        parts.extend(digest(slot) for slot in state.procs)
        return b"".join(parts)

    def update(self, parent_vector: bytes, parent: State,
               successor: State) -> bytes:
        """``successor``'s vector from its parent's, re-digesting only
        the transition's written slots.  ``successor`` must be the raw
        successor produced from ``parent`` (see ``changed_slots``)."""
        dirty_globals, dirty_procs = changed_slots(parent, successor)
        if not dirty_globals and not dirty_procs:
            return parent_vector
        self.slots_digested += len(dirty_globals) + len(dirty_procs)
        size = self._DIGEST_SIZE
        vec = bytearray(parent_vector)
        for index in dirty_globals:
            vec[index * size:(index + 1) * size] = \
                self._digest(successor.globals_[index])
        base = self.nglobals
        for index in dirty_procs:
            offset = (base + index) * size
            vec[offset:offset + size] = self._digest(successor.procs[index])
        return bytes(vec)

    def fingerprint(self, vector: bytes) -> int:
        """Fold a digest vector to the 64-bit fingerprint."""
        return fingerprint_bytes(vector)

    def fingerprint_state(self, state: State) -> int:
        """Convenience: the incremental-scheme fingerprint of a state."""
        return self.fingerprint(self.vector(state))


class FingerprintStore:
    """A seen-set of 64-bit fingerprints, sharded by prefix.

    ``owned`` restricts the store to a subset of the global shards (a
    parallel worker owns ``shard % nworkers == worker_id``); adding a
    fingerprint outside the owned shards is a programming error and
    raises.  In *exact mode* the canonical bytes ride along and any
    collision raises :class:`FingerprintCollisionError`.
    """

    def __init__(self, owned: Optional[Iterable[int]] = None,
                 exact: bool = False):
        self.exact = exact
        self._owned = (frozenset(owned) if owned is not None
                       else frozenset(range(SHARDS)))
        self._shards: dict[int, set[int]] = {s: set() for s in self._owned}
        self._payloads: dict[int, bytes] = {} if exact else None
        self.hits = 0    #: dedup hits (fingerprint already present)
        self.adds = 0    #: fingerprints accepted as new

    def add(self, fp: int, payload: Optional[bytes] = None) -> bool:
        """Record ``fp``; True iff it was new.

        ``payload`` (the canonical bytes) is required in exact mode and
        ignored otherwise.
        """
        shard = shard_of(fp)
        bucket = self._shards.get(shard)
        if bucket is None:
            raise ValueError(
                f"fingerprint {fp:#018x} belongs to shard {shard}, "
                f"not owned by this store")
        if fp in bucket:
            if self.exact and payload is not None \
                    and self._payloads[fp] != payload:
                raise FingerprintCollisionError(
                    f"fingerprint {fp:#018x} shared by two distinct "
                    "canonical states; rerun with more bits or a "
                    "smaller model")
            self.hits += 1
            return False
        if self.exact:
            if payload is None:
                raise ValueError("exact mode requires the canonical bytes")
            self._payloads[fp] = payload
        bucket.add(fp)
        self.adds += 1
        return True

    def __contains__(self, fp: int) -> bool:
        bucket = self._shards.get(shard_of(fp))
        return bucket is not None and fp in bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._shards.values())

    def shard_sizes(self) -> dict[int, int]:
        """Occupancy per owned shard (for balance diagnostics)."""
        return {shard: len(bucket)
                for shard, bucket in sorted(self._shards.items())}

    def hit_rate(self) -> float:
        """Fraction of ``add`` calls that were duplicates."""
        total = self.hits + self.adds
        return self.hits / total if total else 0.0
