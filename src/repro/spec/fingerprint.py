"""Stable 64-bit state fingerprints and the sharded fingerprint store.

TLC scales past in-memory state sets by storing *fingerprints* — fixed
width hashes of canonicalized states — instead of the states
themselves.  This module provides the same mechanism for
:class:`repro.spec.lang.State`:

* :func:`canonical_bytes` — a deterministic byte encoding of a state
  that is **equality-faithful** (two states compare equal under Python
  ``==`` iff they encode to the same bytes) and **stable across
  interpreter invocations** (no use of ``hash()``, whose string hashing
  is randomized per process by ``PYTHONHASHSEED``);
* :func:`fingerprint_state` / :func:`fingerprint_bytes` — the encoding
  folded through BLAKE2b to a 64-bit integer;
* :class:`FingerprintStore` — a seen-set of fingerprints sharded by
  fingerprint prefix, with an optional *exact mode* that keeps the
  canonical bytes alongside each fingerprint and turns any hash
  collision into a loud :class:`FingerprintCollisionError` instead of a
  silently pruned state.

Collision probability
---------------------

With an ideal 64-bit hash, a run visiting ``n`` distinct states misses
a state (treats it as seen) only if two distinct canonical encodings
collide; by the birthday bound the probability of *any* collision is at
most ``n * (n - 1) / 2**65``.  At the scale this checker reaches in
Python — 10**7 states — that is under ``3e-6`` per run; at TLC-like
10**9 states it would be ~3%, which is why exact mode exists as a
fallback for small specs and why the bound is recorded in
``BENCH_checker.json`` artifacts.

Equality faithfulness requires the same value identifications Python's
``==`` makes inside states: ``True == 1``, ``1 == 1.0``.  Numbers are
therefore canonicalized (bools to ints, integral floats to ints) before
encoding, so states that a ``dict``-based seen-set would merge also
share a fingerprint.

Encoding scheme
---------------

A pure-Python byte encoder costs ~37us per controller state — more
than generating the state's successors — so the encoder instead
*normalizes* the value tree in Python (cheap: most nodes pass through
untouched) and lets C-level ``marshal`` produce the bytes (~2us).
Normalization maps every state value onto the marshal-canonical subset
{None, int, non-integral float, str, bytes, tuple, Ellipsis}:

* ``bool`` -> ``int``, integral ``float`` -> ``int`` (``==`` faithful);
* ``frozenset``/``set`` -> ``(Ellipsis, "fs", sorted elements)``
  (insertion order must not leak into the encoding);
* ``FrozenRecord``/``dict`` -> ``(Ellipsis, "d", items sorted by key)``;
* a literal ``Ellipsis`` leaf -> ``(Ellipsis, "e")`` so the tags above
  can never collide with user data.

Marshal version 0 is the reference-free format: equal-but-distinct
strings encode identically (later versions emit id-based back
references, which would break canonicality).
"""

from __future__ import annotations

import hashlib
import marshal
import mmap
import os
import struct
from typing import Iterable, Optional

from .lang import State, changed_slots

__all__ = [
    "FingerprintCollisionError",
    "FingerprintStore",
    "IncrementalFingerprinter",
    "ShardFileError",
    "canonical_bytes",
    "fingerprint_bytes",
    "fingerprint_state",
    "shard_of",
    "spill_threshold_from_env",
]

#: Global shard count = 2**_SHARD_BITS; shards are dealt to workers
#: round-robin so any worker count divides the space evenly.
_SHARD_BITS = 6
SHARDS = 1 << _SHARD_BITS


class FingerprintCollisionError(Exception):
    """Two distinct canonical states hashed to the same fingerprint.

    Only detectable (and raised) in exact mode; a hash-only store would
    silently prune one of the states.
    """


class ShardFileError(Exception):
    """A spill shard file is corrupt (bad magic, truncated, bad size).

    Raised loudly on open/probe instead of treating a damaged file as
    an empty seen-set, which would silently re-admit visited states and
    corrupt dedup counts.
    """


#: Spill shard file layout: a 32-byte header followed by ``capacity``
#: fixed-width 8-byte little-endian slots, open-addressed by the
#: fingerprint's low bits with linear probing.  Slot value 0 means
#: empty (a real fingerprint of 0 stays in the in-memory tier forever).
_SPILL_MAGIC = b"ZFPS1\0"
_SPILL_HEADER = struct.Struct("<6s2xQQ8x")  # magic, capacity, count
_SPILL_HEADER_SIZE = 32
assert _SPILL_HEADER.size == _SPILL_HEADER_SIZE

#: Default in-memory entries per shard before spilling to disk.
_SPILL_THRESHOLD = 1 << 16
#: Initial slot count of a fresh shard file (grows by doubling).
_SPILL_INITIAL_CAPACITY = 1 << 15
#: Load factor that triggers a rehash into a doubled file.
_SPILL_MAX_LOAD = 0.6


def spill_threshold_from_env(default: int = _SPILL_THRESHOLD) -> int:
    """The per-shard spill threshold, overridable via REPRO_FP_SPILL.

    CI uses a tiny value to force the spill path on small specs without
    burning 10⁷ states; the variable holds the entry count per shard.
    """
    raw = os.environ.get("REPRO_FP_SPILL")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_FP_SPILL must be an integer entry count, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"REPRO_FP_SPILL must be >= 1, got {value}")
    return value


class _SpillShard:
    """One shard's on-disk open-addressed fingerprint table (mmap'd).

    The file is probed in place; growth rewrites into a sibling file
    and atomically replaces (``os.replace``), so a crash leaves either
    the old or the new complete table, never a half-written one.  The
    header ``count`` is updated per insert, making truncation and
    header/size mismatches detectable on reopen.
    """

    __slots__ = ("path", "_file", "_mm", "capacity", "count")

    def __init__(self, path: str, capacity: int = _SPILL_INITIAL_CAPACITY):
        self.path = path
        if os.path.exists(path):
            self._open_existing()
        else:
            self._create(capacity)

    def _create(self, capacity: int) -> None:
        size = _SPILL_HEADER_SIZE + capacity * 8
        with open(self.path, "wb") as handle:
            handle.write(_SPILL_HEADER.pack(_SPILL_MAGIC, capacity, 0))
            handle.truncate(size)
        self._map(capacity, 0)

    def _open_existing(self) -> None:
        size = os.path.getsize(self.path)
        if size < _SPILL_HEADER_SIZE:
            raise ShardFileError(
                f"spill shard {self.path}: {size} bytes is smaller than "
                f"the {_SPILL_HEADER_SIZE}-byte header (truncated?)")
        with open(self.path, "rb") as handle:
            header = handle.read(_SPILL_HEADER_SIZE)
        magic, capacity, count = _SPILL_HEADER.unpack(header)
        if magic != _SPILL_MAGIC:
            raise ShardFileError(
                f"spill shard {self.path}: bad magic {magic!r} "
                f"(not a {_SPILL_MAGIC!r} shard file)")
        expected = _SPILL_HEADER_SIZE + capacity * 8
        if size != expected:
            raise ShardFileError(
                f"spill shard {self.path}: file is {size} bytes but the "
                f"header claims capacity {capacity} ({expected} bytes) — "
                "truncated or partially written; delete the store "
                "directory to restart from an empty seen-set")
        if count > capacity:
            raise ShardFileError(
                f"spill shard {self.path}: header count {count} exceeds "
                f"capacity {capacity}")
        self._map(capacity, count)

    def _map(self, capacity: int, count: int) -> None:
        self.capacity = capacity
        self.count = count
        self._file = open(self.path, "r+b")
        self._mm = mmap.mmap(self._file.fileno(), 0)

    def __contains__(self, fp: int) -> bool:
        mm = self._mm
        mask = self.capacity - 1
        index = fp & mask
        while True:
            offset = _SPILL_HEADER_SIZE + index * 8
            slot = int.from_bytes(mm[offset:offset + 8], "little")
            if slot == 0:
                return False
            if slot == fp:
                return True
            index = (index + 1) & mask

    def insert(self, fp: int) -> bool:
        """Add ``fp``; True iff it was new.  ``fp`` must be nonzero."""
        if self.count + 1 > self.capacity * _SPILL_MAX_LOAD:
            self._grow()
        mm = self._mm
        mask = self.capacity - 1
        index = fp & mask
        while True:
            offset = _SPILL_HEADER_SIZE + index * 8
            slot = int.from_bytes(mm[offset:offset + 8], "little")
            if slot == 0:
                mm[offset:offset + 8] = fp.to_bytes(8, "little")
                self.count += 1
                _SPILL_HEADER.pack_into(mm, 0, _SPILL_MAGIC, self.capacity,
                                        self.count)
                return True
            if slot == fp:
                return False
            index = (index + 1) & mask

    def _grow(self) -> None:
        old_mm = self._mm
        old_capacity = self.capacity
        capacity = old_capacity * 2
        size = _SPILL_HEADER_SIZE + capacity * 8
        tmp_path = self.path + ".rehash"
        with open(tmp_path, "wb") as handle:
            handle.write(_SPILL_HEADER.pack(_SPILL_MAGIC, capacity,
                                            self.count))
            handle.truncate(size)
        with open(tmp_path, "r+b") as handle:
            new_mm = mmap.mmap(handle.fileno(), 0)
            mask = capacity - 1
            for old_index in range(old_capacity):
                offset = _SPILL_HEADER_SIZE + old_index * 8
                raw = old_mm[offset:offset + 8]
                if raw == b"\0" * 8:
                    continue
                fp = int.from_bytes(raw, "little")
                index = fp & mask
                while True:
                    dst = _SPILL_HEADER_SIZE + index * 8
                    if new_mm[dst:dst + 8] == b"\0" * 8:
                        new_mm[dst:dst + 8] = raw
                        break
                    index = (index + 1) & mask
            new_mm.flush()
            new_mm.close()
        self.close()
        os.replace(tmp_path, self.path)
        self._map(capacity, self.count)

    def file_bytes(self) -> int:
        return _SPILL_HEADER_SIZE + self.capacity * 8

    def close(self) -> None:
        self._mm.flush()
        self._mm.close()
        self._file.close()


def _marshal_key(value):
    # Total order over heterogeneous normalized values, for sorting set
    # elements / dict items whose natural comparison raises TypeError.
    return marshal.dumps(value, 0)


#: Normalized forms of frozensets seen so far.  ``_norm`` is a pure
#: function, so caching is transparent; frozensets recur heavily across
#: states (switch tables, installed-rule sets) and their normalization
#: is the expensive path (sort + rebuild).  Process-local: the cache
#: key uses in-process ``hash()``, the cached *value* does not.
_FS_CACHE: dict = {}


def _norm(value):
    cls = value.__class__
    # Fast path: already marshal-canonical, returned untouched (no
    # allocation) — the overwhelmingly common case inside states.
    if cls is int or cls is str:
        return value
    if value is None or cls is bytes:
        return value
    if cls is bool:
        return int(value)  # True == 1 inside states
    if cls is float:
        # 1.0 == 1 inside states; -0.0 lands on 0 via the same rule.
        return int(value) if value.is_integer() else value
    if cls is tuple:
        # Rebuild only if some element changed.
        normed = None
        for index, item in enumerate(value):
            fixed = _norm(item)
            if normed is None:
                if fixed is item:
                    continue
                normed = list(value[:index])
            normed.append(fixed)
        return value if normed is None else tuple(normed)
    if cls is frozenset or cls is set or isinstance(value, (frozenset, set)):
        if cls is frozenset:
            cached = _FS_CACHE.get(value)
            if cached is not None:
                return cached
        elems = [_norm(item) for item in value]
        try:
            elems.sort()
        except TypeError:
            elems.sort(key=_marshal_key)
        normed = (Ellipsis, "fs", tuple(elems))
        if cls is frozenset:
            _FS_CACHE[value] = normed
        return normed
    if isinstance(value, dict):  # FrozenRecord subclasses dict
        items = [(_norm(key), _norm(item)) for key, item in value.items()]
        try:
            items.sort()
        except TypeError:
            items.sort(key=_marshal_key)
        return (Ellipsis, "d", tuple(items))
    if isinstance(value, tuple):  # tuple subclass (== a plain tuple)
        return tuple(_norm(item) for item in value)
    if isinstance(value, int):  # bool/int subclasses
        return int(value)
    if value is Ellipsis:
        return (Ellipsis, "e")  # keep the structural tags collision-free
    raise TypeError(
        f"cannot fingerprint a {type(value).__name__} leaf; states may "
        "only contain None/bool/int/float/str/bytes, tuples, "
        "(frozen)sets and FrozenRecords")


def canonical_bytes(state: State) -> bytes:
    """The equality-faithful, cross-interpreter-stable encoding."""
    return marshal.dumps((_norm(state.globals_), _norm(state.procs)), 0)


def fingerprint_bytes(payload: bytes) -> int:
    """Fold an encoding to a 64-bit fingerprint (BLAKE2b, fixed key)."""
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big")


def fingerprint_state(state: State) -> int:
    """The 64-bit fingerprint of ``state``."""
    return fingerprint_bytes(canonical_bytes(state))


def shard_of(fp: int) -> int:
    """The global shard (by fingerprint prefix) owning ``fp``."""
    return fp >> (64 - _SHARD_BITS)


class IncrementalFingerprinter:
    """Fingerprints via per-slot digests, updated along transitions.

    Re-encoding a whole state per successor costs ~20us on controller
    states; a step typically writes one or two slots.  This fingerprint
    represents a state as the concatenation of one 8-byte BLAKE2b
    digest per *slot* (each global variable, then each process's
    (pc, locals) pair) and hashes that fixed-width **vector** to the
    64-bit fingerprint.  A successor's vector is the parent's with only
    the transition's written slots re-digested — the dirty set comes
    from :func:`repro.spec.lang.changed_slots`, the slot-identity diff
    that is exact for the step's write footprint.

    Equality faithfulness: slot digests go through the same ``_norm``
    canonicalization as :func:`canonical_bytes`, so two states equal
    under Python ``==`` (slot-wise, by construction of ``State``)
    produce identical vectors; distinct states produce distinct vectors
    up to 64-bit digest collisions — the same collision model as full
    fingerprints, property-tested against them in the spec suite.  The
    incremental fingerprint *value* differs from ``fingerprint_state``
    (different encoding); only equality structure is shared, which is
    all a seen-set needs.

    Slot values recur massively across states (a queue tail, a settled
    switch table), so digests are memoized by value up to
    ``cache_limit`` entries; past the limit the fingerprinter keeps
    working, just without new memo entries.
    """

    _DIGEST_SIZE = 8

    def __init__(self, spec, cache_limit: int = 1 << 17):
        self.nglobals = len(spec.global_names)
        self.nprocs = len(spec.processes)
        self.cache_limit = cache_limit
        self._cache: dict = {}
        #: Slot digests consulted (fresh or memoized) — a deterministic
        #: work counter the ablation harness compares against the
        #: full-encoding engine's ``transitions × slot_count``.
        self.slots_digested = 0

    def _digest(self, value) -> bytes:
        cache = self._cache
        digest = cache.get(value)
        if digest is None:
            digest = hashlib.blake2b(
                marshal.dumps(_norm(value), 0),
                digest_size=self._DIGEST_SIZE).digest()
            if len(cache) < self.cache_limit:
                cache[value] = digest
        return digest

    def vector(self, state: State) -> bytes:
        """The full per-slot digest vector of ``state`` (from scratch)."""
        digest = self._digest
        self.slots_digested += self.nglobals + self.nprocs
        parts = [digest(value) for value in state.globals_]
        parts.extend(digest(slot) for slot in state.procs)
        return b"".join(parts)

    def update(self, parent_vector: bytes, parent: State,
               successor: State) -> bytes:
        """``successor``'s vector from its parent's, re-digesting only
        the transition's written slots.  ``successor`` must be the raw
        successor produced from ``parent`` (see ``changed_slots``)."""
        dirty_globals, dirty_procs = changed_slots(parent, successor)
        if not dirty_globals and not dirty_procs:
            return parent_vector
        self.slots_digested += len(dirty_globals) + len(dirty_procs)
        size = self._DIGEST_SIZE
        vec = bytearray(parent_vector)
        for index in dirty_globals:
            vec[index * size:(index + 1) * size] = \
                self._digest(successor.globals_[index])
        base = self.nglobals
        for index in dirty_procs:
            offset = (base + index) * size
            vec[offset:offset + size] = self._digest(successor.procs[index])
        return bytes(vec)

    def fingerprint(self, vector: bytes) -> int:
        """Fold a digest vector to the 64-bit fingerprint."""
        return fingerprint_bytes(vector)

    def fingerprint_state(self, state: State) -> int:
        """Convenience: the incremental-scheme fingerprint of a state."""
        return self.fingerprint(self.vector(state))


class FingerprintStore:
    """A seen-set of 64-bit fingerprints, sharded by prefix.

    ``owned`` restricts the store to a subset of the global shards (a
    parallel worker owns ``shard % nworkers == worker_id``); adding a
    fingerprint outside the owned shards is a programming error and
    raises.  In *exact mode* the canonical bytes ride along and any
    collision raises :class:`FingerprintCollisionError`.
    """

    def __init__(self, owned: Optional[Iterable[int]] = None,
                 exact: bool = False,
                 spill_dir: Optional[str] = None,
                 spill_threshold: Optional[int] = None):
        self.exact = exact
        self._owned = (frozenset(owned) if owned is not None
                       else frozenset(range(SHARDS)))
        self._shards: dict[int, set[int]] = {s: set() for s in self._owned}
        self._payloads: dict[int, bytes] = {} if exact else None
        self.hits = 0    #: dedup hits (fingerprint already present)
        self.adds = 0    #: fingerprints accepted as new
        self.spills = 0  #: shard flushes into the mmap tier
        if exact and spill_dir is not None:
            raise ValueError(
                "exact mode keeps full canonical payloads, which do not "
                "fit the fixed-width spill slots; drop exact or spill_dir")
        self.spill_dir = spill_dir
        self.spill_threshold = (spill_threshold if spill_threshold is not None
                                else spill_threshold_from_env())
        self._spill: dict[int, _SpillShard] = {}
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
            # Reopen any existing shard files up front: membership must
            # survive a close/reopen cycle (crash-resume, swarm rounds),
            # and a corrupt file must fail loudly now, not mid-run.
            for shard in self._owned:
                path = self._spill_path(shard)
                if os.path.exists(path):
                    self._spill[shard] = _SpillShard(path)

    def _spill_path(self, shard: int) -> str:
        return os.path.join(self.spill_dir, f"shard-{shard:02d}.zfp")

    def _spill_shard(self, shard: int) -> None:
        """Flush a shard's in-memory tier into its mmap file."""
        tier = self._spill.get(shard)
        if tier is None:
            tier = self._spill[shard] = _SpillShard(self._spill_path(shard))
        bucket = self._shards[shard]
        keep_zero = 0 in bucket
        for fp in bucket:
            if fp:
                tier.insert(fp)
        bucket.clear()
        if keep_zero:
            # 0 is the empty-slot sentinel on disk; a real fingerprint
            # of 0 lives in memory forever (one int, once per run).
            bucket.add(0)
        self.spills += 1

    def add(self, fp: int, payload: Optional[bytes] = None) -> bool:
        """Record ``fp``; True iff it was new.

        ``payload`` (the canonical bytes) is required in exact mode and
        ignored otherwise.
        """
        shard = shard_of(fp)
        bucket = self._shards.get(shard)
        if bucket is None:
            raise ValueError(
                f"fingerprint {fp:#018x} belongs to shard {shard}, "
                f"not owned by this store")
        if fp in bucket:
            if self.exact and payload is not None \
                    and self._payloads[fp] != payload:
                raise FingerprintCollisionError(
                    f"fingerprint {fp:#018x} shared by two distinct "
                    "canonical states; rerun with more bits or a "
                    "smaller model")
            self.hits += 1
            return False
        tier = self._spill.get(shard)
        if tier is not None and fp in tier:
            self.hits += 1
            return False
        if self.exact:
            if payload is None:
                raise ValueError("exact mode requires the canonical bytes")
            self._payloads[fp] = payload
        bucket.add(fp)
        self.adds += 1
        if (self.spill_dir is not None
                and len(bucket) >= self.spill_threshold):
            self._spill_shard(shard)
        return True

    def __contains__(self, fp: int) -> bool:
        shard = shard_of(fp)
        bucket = self._shards.get(shard)
        if bucket is None:
            return False
        if fp in bucket:
            return True
        tier = self._spill.get(shard)
        return tier is not None and fp in tier

    def __len__(self) -> int:
        return (sum(len(bucket) for bucket in self._shards.values())
                + sum(tier.count for tier in self._spill.values()))

    def shard_sizes(self) -> dict[int, int]:
        """Occupancy per owned shard (for balance diagnostics)."""
        return {shard: len(bucket) + (self._spill[shard].count
                                      if shard in self._spill else 0)
                for shard, bucket in sorted(self._shards.items())}

    def hit_rate(self) -> float:
        """Fraction of ``add`` calls that were duplicates."""
        total = self.hits + self.adds
        return self.hits / total if total else 0.0

    def store_bytes(self) -> int:
        """Measured seen-set footprint: spill file bytes plus a nominal
        8 bytes per in-memory fingerprint (the ablation metric the
        modeled figure approximates)."""
        return (sum(tier.file_bytes() for tier in self._spill.values())
                + sum(len(bucket) for bucket in self._shards.values()) * 8)

    def spilled(self) -> int:
        """Fingerprints currently held by the mmap tier."""
        return sum(tier.count for tier in self._spill.values())

    def close(self) -> None:
        """Flush and close spill shard files (memory tiers remain)."""
        for tier in self._spill.values():
            tier.close()
        self._spill.clear()
