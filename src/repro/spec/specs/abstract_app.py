"""Core composed with AbstractApp (paper §3.6) and DAG transitions.

The paper verifies ZENITH-core together with an *AbstractApp*: a
reactive process with pre-defined DAGs — one per topology condition —
that deletes the current DAG and installs the matching one whenever a
data-plane event arrives.  The composition establishes the guarantees
apps later rely on: (a) the data plane never ends up carrying the
routing state of a deleted DAG, and (b) topology events are eventually
reflected.

This specification models the composition with the machinery the
transition needs (install *and* delete instructions through a pipeline
with channel delays) on a two-switch topology: the *trigger* switch
fails and recovers (budget-bounded), while the *worked* switch holds
the routing state; DAG ``A`` is the healthy-topology route, DAG ``B``
the detour.  The transition is hitless: the new DAG's OP is installed
before the old DAG's OP is deleted (Fig. 5's ordering); the
``naive_transition`` knob flips that order and must be refuted by the
checker (§3.1's "a naive solution might install A:C before C:D").

Properties:

* **NeverUnrouted** (safety) — once a route was installed, the worked
  switch always has at least one route (hitlessness);
* **TargetInstalled** (◇□) — the worked switch's table eventually equals
  exactly the current target DAG's state: the new route present, every
  deleted DAG's route gone.
"""

from __future__ import annotations

from ..lang import NULL, Spec, SpecProcess, Step, fifo_get, fifo_put

__all__ = ["core_with_app_spec"]

#: op id per DAG: DAG "A" installs op 1, DAG "B" installs op 2 — both
#: on the worked switch.
_OP_OF = {"A": 1, "B": 2}


def core_with_app_spec(failures: int = 1,
                       naive_transition: bool = False) -> Spec:
    """Build the core+AbstractApp composition."""
    globals_: dict = {
        "target": "A",            # the app's current intent
        "table": frozenset(),     # worked switch's routing state (G_d)
        "status": ("-", "none", "none"),   # per-op, 1-indexed
        # Boot: install the healthy-topology DAG ("-" = nothing to
        # delete yet), then serve the app's transitions.
        "dag_q": (("-", "A"),),
        "sw_in": (),              # pipeline → worked switch
        "sw_out": (),             # worked switch → monitor
        "app_q": (),              # topology events → app
        "trigger_up": True,
        "failure_budget": failures,
        "ever_routed": False,     # history: a route existed at some point
    }

    # -- trigger switch: fails/recovers, notifying the app -------------------
    def trig_fail(ctx):
        budget = ctx.get("failure_budget")
        ctx.block_unless(ctx.get("trigger_up") and budget > 0)
        ctx.set("failure_budget", budget - 1)
        ctx.set("trigger_up", False)
        fifo_put(ctx, "app_q", "down")
        ctx.goto("fail")

    def trig_recover(ctx):
        ctx.block_unless(not ctx.get("trigger_up"))
        ctx.set("trigger_up", True)
        fifo_put(ctx, "app_q", "up")
        ctx.goto("recover")

    # -- AbstractApp: pre-defined DAG per topology condition ------------------
    def app(ctx):
        event = fifo_get(ctx, "app_q")
        wanted = "B" if event == "down" else "A"
        if ctx.get("target") != wanted:
            # Delete the current DAG, install the matching one: one
            # transition request carries both.
            old = ctx.get("target")
            ctx.set("target", wanted)
            fifo_put(ctx, "dag_q", (old, wanted))
        ctx.goto("react")

    # -- DE: sequencer driving hitless transitions ------------------------------
    def seq_idle(ctx):
        old, new = fifo_get(ctx, "dag_q")
        ctx.lset("old", old)
        ctx.lset("new", new)
        if naive_transition:
            ctx.goto("emit_delete")   # the §3.1 naive (broken) order
        else:
            ctx.goto("emit_install")

    def seq_emit_install(ctx):
        op = _OP_OF[ctx.lget("new")]
        statuses = list(ctx.get("status"))
        if statuses[op] == "none":
            statuses[op] = "sched"
            ctx.set("status", tuple(statuses))
            fifo_put(ctx, "sw_in", ("install", op))

    def seq_await_install(ctx):
        op = _OP_OF[ctx.lget("new")]
        ctx.block_unless(ctx.get("status")[op] == "done")
        if naive_transition:
            ctx.goto("finish")
        else:
            ctx.goto("emit_delete")

    def seq_emit_delete(ctx):
        op = _OP_OF.get(ctx.lget("old"))
        if op is not None:
            statuses = list(ctx.get("status"))
            if statuses[op] != "none":
                statuses[op] = "none"
                ctx.set("status", tuple(statuses))
                fifo_put(ctx, "sw_in", ("delete", op))
        if naive_transition:
            ctx.goto("emit_install")
        else:
            ctx.goto("finish")

    def seq_finish(ctx):
        ctx.lset("old", NULL)
        ctx.lset("new", NULL)
        ctx.goto("idle")

    if naive_transition:
        seq_blocks = [
            Step("idle", seq_idle),
            Step("emit_delete", seq_emit_delete),
            Step("emit_install", seq_emit_install),
            Step("await_install", seq_await_install),
            # Only touches the sequencer's own locals: a sound
            # ample-set (POR) hint, validated by speclint.
            Step("finish", seq_finish, local=True),
        ]
    else:
        seq_blocks = [
            Step("idle", seq_idle),
            Step("emit_install", seq_emit_install),
            Step("await_install", seq_await_install),
            Step("emit_delete", seq_emit_delete),
            Step("finish", seq_finish, local=True),
        ]

    # -- the worked switch ---------------------------------------------------------
    def switch(ctx):
        action, op = fifo_get(ctx, "sw_in")
        table = ctx.get("table")
        if action == "install":
            ctx.set("table", table | {op})
            ctx.set("ever_routed", True)
        else:
            ctx.set("table", table - {op})
        fifo_put(ctx, "sw_out", (action, op))
        ctx.goto("main")

    # -- monitor: ACKs → status ------------------------------------------------------
    def monitor(ctx):
        action, op = fifo_get(ctx, "sw_out")
        if action == "install":
            statuses = list(ctx.get("status"))
            if statuses[op] == "sched":
                statuses[op] = "done"
                ctx.set("status", tuple(statuses))
        ctx.goto("mon")

    # -- properties ------------------------------------------------------------------
    def never_unrouted(view) -> bool:
        return not view["ever_routed"] or len(view["table"]) > 0

    def target_installed(view) -> bool:
        return view["table"] == frozenset({_OP_OF[view["target"]]})

    return Spec(
        name=(f"core-with-abstract-app-{failures}f"
              f"{'-naive' if naive_transition else ''}"),
        globals_=globals_,
        processes=[
            SpecProcess("trigFailure", [Step("fail", trig_fail)],
                        fair=False, daemon=True),
            SpecProcess("trigRecovery", [Step("recover", trig_recover)],
                        fair=False, daemon=True),
            SpecProcess("abstractApp", [Step("react", app)], daemon=True),
            SpecProcess("sequencer", seq_blocks,
                        locals_={"old": NULL, "new": NULL}, daemon=True),
            SpecProcess("switch", [Step("main", switch)], daemon=True),
            SpecProcess("monitor", [Step("mon", monitor)], daemon=True),
        ],
        invariants={"NeverUnrouted": never_unrouted},
        eventually_always={"TargetInstalled": target_installed},
    )
