"""The ZENITH-core controller specification (decomposed, with failures).

The configuration mirrors §3.4's verification campaign and the Table 4
ablation setup: a DAG of OPs spanning ``num_switches`` switches, driven
by a Sequencer through a consistently sharded Worker Pool (switch *s*
is owned by worker *s* — property P4's sharding), with switches that
can fail (complete, transient, budget-bounded), a Monitoring Server
collecting ACKs, a NIB Event Handler applying events, and a Topo Event
Handler running the Fig. A.5 recovery (wipe → reset OPs → mark UP).
Per-switch epochs (Orion-style session ids) make stale events
detectable — a mechanism this model checker forced us to add.

Knobs (the §3.7 scaling-technique ablation of Table 4):

* ``abstract_switch`` — compositional verification: replace each
  detailed switch (main + failure + recovery processes) by an
  over-approximating single process that atomically installs-and-ACKs
  or fails-and-recovers;
* symmetry — the spec exports a canonicalization that permutes the
  identical (switch, worker, channel) stacks when the DAG treats them
  symmetrically (TLC symmetry sets);
* POR — worker-local bookkeeping steps are declared ``local``.

Properties: CorrectDAGOrder (safety), NoDuplicateWorkerClaims (safety,
§B), DagInstalled (◇□, CorrectDAGInstalled) and ViewMatches (◇□,
CorrectRoutingState).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..lang import NULL, Spec, SpecProcess, State, Step, fifo_get, fifo_put  # noqa: F401

__all__ = ["controller_spec", "CLEAR_OP"]

#: Reserved OP id for CLEAR_TCAM in the recovery pipeline.
CLEAR_OP = 0


def _set(tup: tuple, index: int, value) -> tuple:
    updated = list(tup)
    updated[index] = value
    return tuple(updated)


def controller_spec(num_ops: int = 2,
                    edges: Optional[Sequence[tuple[int, int]]] = None,
                    num_switches: int = 2,
                    failures: int = 1,
                    abstract_switch: bool = False,
                    coarse_atomicity: bool = False,
                    decomposed: bool = True,
                    recovery_order: str = "atomic",
                    stale_protection: bool = True,
                    oneshot_sequencer: bool = False) -> Spec:
    """Build the controller spec for the given configuration.

    OP ``i`` (1-based) lives on switch ``(i-1) % num_switches``; worker
    ``s`` exclusively serves switch ``s`` (consistent sharding).  With
    ``edges=None`` the DAG is a dependency chain op1 → op2 → …; pass
    ``edges=[]`` for independent OPs (the symmetric workload used for
    the symmetry-reduction ablation).
    """
    ops = list(range(1, num_ops + 1))
    if edges is None:
        edges = [(i, i + 1) for i in ops[:-1]]
    edges = list(edges)
    preds: dict[int, list[int]] = {op: [] for op in ops}
    for a, b in edges:
        preds[b].append(a)
    switch_of = {op: (op - 1) % num_switches for op in ops}
    switches = list(range(num_switches))

    globals_: dict = {
        "status": tuple(["-"] + ["none"] * num_ops),   # 1-indexed
        "worker_q": ((),) * num_switches,              # per-shard queues
        "worker_state": (NULL,) * num_switches,
        "sw_in": ((),) * num_switches,
        "sw_out": ((),) * num_switches,
        "sw_table": (frozenset(),) * num_switches,
        "sw_healthy": (True,) * num_switches,
        "install_seq": (),            # first-ever installs (history var)
        "ever_installed": frozenset(),
        "health_view": ("up",) * num_switches,         # controller's T_c
        "topo_q": (),
        "failure_budget": failures,
        "cleanup_pending": (False,) * num_switches,
        "epoch": (0,) * num_switches,  # per-switch session ids
    }
    if decomposed:
        globals_["nib_q"] = ()

    # -- DE: Sequencer -----------------------------------------------------------
    def sequencer(ctx):
        statuses = ctx.get("status")
        if oneshot_sequencer and all(statuses[op] == "done" for op in ops):
            # The §G scenario: the Sequencer stops once the DAG is in
            # place; nothing restores state reset after that point.
            ctx.done()
            return
        busy = set(ctx.get("worker_state"))
        for queue in ctx.get("worker_q"):
            busy.update(op for op, _e in queue)
        schedulable = [op for op in ops
                       if statuses[op] == "none"
                       and op not in busy
                       and all(statuses[p] == "done" for p in preds[op])]
        ctx.block_unless(bool(schedulable))
        op = ctx.choose_from(schedulable)
        ctx.set("status", _set(statuses, op, "sched"))
        shard = switch_of[op]
        queues = ctx.get("worker_q")
        ctx.set("worker_q",
                _set(queues, shard, queues[shard] + ((op, None),)))
        ctx.goto("schedule")

    sequencer_proc = SpecProcess(
        "sequencer", [Step("schedule", sequencer)], daemon=True)

    # -- OFC: Worker Pool (final Listing 3 discipline, sharded) ----------------------
    def make_worker(shard: int) -> SpecProcess:
        def read(ctx):
            queue = ctx.get("worker_q")[shard]
            ctx.block_unless(len(queue) > 0)
            ctx.lset("cur", queue[0][0])

        def record(ctx):
            ctx.set("worker_state",
                    _set(ctx.get("worker_state"), shard, ctx.lget("cur")))

        def act(ctx):
            op = ctx.lget("cur")
            epoch = ctx.get("epoch")[shard]
            if op == CLEAR_OP:
                inq = ctx.get("sw_in")
                ctx.set("sw_in",
                        _set(inq, shard, inq[shard] + ((CLEAR_OP, epoch),)))
            elif ctx.get("status")[op] != "sched":
                # The dispatch this queue entry belongs to was reset by
                # a switch recovery; forwarding it would install state
                # the NIB no longer tracks (model-checker finding).  The
                # fresh dispatch drives the OP instead.
                pass
            elif ctx.get("health_view")[shard] == "up":
                if decomposed:
                    fifo_put(ctx, "nib_q", ("sent", op, epoch))
                else:
                    statuses = ctx.get("status")
                    if statuses[op] == "sched":
                        ctx.set("status", _set(statuses, op, "flight"))
                inq = ctx.get("sw_in")
                ctx.set("sw_in",
                        _set(inq, shard, inq[shard] + ((op, epoch),)))
            else:
                if decomposed:
                    fifo_put(ctx, "nib_q", ("failed", op, epoch))
                else:
                    ctx.set("status",
                            _set(ctx.get("status"), op, "failed"))

        def clear(ctx):
            ctx.set("worker_state",
                    _set(ctx.get("worker_state"), shard, NULL))
            queues = ctx.get("worker_q")
            if queues[shard]:
                ctx.set("worker_q",
                        _set(queues, shard, queues[shard][1:]))
            ctx.lset("cur", NULL)
            ctx.goto("read")

        if coarse_atomicity:
            # The paper's partial-order reduction via "locks and
            # labels": the worker's four steps only interleave with
            # other components through their initial read and final
            # effects, so holding a (conceptual) lock across them and
            # fusing the labels removes the intermediate interleaving
            # points without changing the reachable outcomes.
            def fused(ctx):
                read(ctx)
                record(ctx)
                act(ctx)
                clear(ctx)
                ctx.goto("work")

            return SpecProcess(f"worker{shard}", [Step("work", fused)],
                               locals_={"cur": NULL}, daemon=True)
        return SpecProcess(f"worker{shard}", [
            Step("read", read),
            Step("record", record),
            Step("act", act),
            Step("clear", clear),
        ], locals_={"cur": NULL}, daemon=True)

    workers = [make_worker(s) for s in switches]

    # -- switches --------------------------------------------------------------------
    def _install(ctx, shard: int, op: int) -> None:
        tables = ctx.get("sw_table")
        ever = ctx.get("ever_installed")
        if op not in ever:
            # History variable: only the *first-ever* install counts
            # for CorrectDAGOrder (paper §3.3).
            ctx.set("install_seq", ctx.get("install_seq") + (op,))
            ctx.set("ever_installed", ever | frozenset([op]))
        ctx.set("sw_table", _set(tables, shard, tables[shard] | {op}))

    def _wipe(ctx, shard: int) -> None:
        ctx.set("sw_table", _set(ctx.get("sw_table"), shard, frozenset()))
        ctx.set("sw_in", _set(ctx.get("sw_in"), shard, ()))
        ctx.set("sw_out", _set(ctx.get("sw_out"), shard, ()))

    def full_switch_processes(shard: int) -> list[SpecProcess]:
        """The Listing-2 switch: OP and ACK as separate labels, an
        in-flight ``ingressPkt`` local, and failures with a
        nondeterministic state-loss level (partial keeps the TCAM,
        complete wipes it; both drop in-flight requests)."""

        def sw_op(ctx):
            ctx.block_unless(ctx.get("sw_healthy")[shard])
            inq = ctx.get("sw_in")[shard]
            ctx.block_unless(len(inq) > 0)
            ctx.lset("ingress", inq[0])
            ctx.set("sw_in", _set(ctx.get("sw_in"), shard, inq[1:]))
            op, _epoch = ctx.lget("ingress")
            if op == CLEAR_OP:
                ctx.set("sw_table",
                        _set(ctx.get("sw_table"), shard, frozenset()))
            else:
                _install(ctx, shard, op)

        def sw_ack(ctx):
            ctx.block_unless(ctx.get("sw_healthy")[shard])
            packet = ctx.lget("ingress")
            if packet != NULL:
                outq = ctx.get("sw_out")
                ctx.set("sw_out", _set(outq, shard, outq[shard] + (packet,)))
                ctx.lset("ingress", NULL)
            ctx.goto("op")

        def sw_failure(ctx):
            budget = ctx.get("failure_budget")
            ctx.block_unless(ctx.get("sw_healthy")[shard] and budget > 0)
            ctx.set("failure_budget", budget - 1)
            ctx.set("sw_healthy",
                    _set(ctx.get("sw_healthy"), shard, False))
            if ctx.maybe():
                # Complete: TCAM and in-flight state lost.
                _wipe(ctx, shard)
            else:
                # Partial: TCAM survives; buffered requests are lost.
                ctx.set("sw_in", _set(ctx.get("sw_in"), shard, ()))
                ctx.set("sw_out", _set(ctx.get("sw_out"), shard, ()))
            # Either way the in-progress request is abandoned.
            ctx.reset_peer(f"switch{shard}", "op")
            fifo_put(ctx, "topo_q", ("down", shard))
            ctx.goto("fail")

        def sw_recovery(ctx):
            ctx.block_unless(not ctx.get("sw_healthy")[shard])
            ctx.set("sw_healthy",
                    _set(ctx.get("sw_healthy"), shard, True))
            fifo_put(ctx, "topo_q", ("up", shard))
            ctx.goto("recover")

        return [
            SpecProcess(f"switch{shard}",
                        [Step("op", sw_op), Step("ack", sw_ack)],
                        locals_={"ingress": NULL}, daemon=True),
            SpecProcess(f"swFailure{shard}", [Step("fail", sw_failure)],
                        fair=False, daemon=True),
            SpecProcess(f"swRecovery{shard}", [Step("recover", sw_recovery)],
                        fair=False, daemon=True),
        ]

    def abstract_switch_processes(shard: int) -> list[SpecProcess]:
        """Compositional over-approximation: one process per switch that
        atomically either serves the next request or fails-and-recovers
        (collapsing the failure/recovery interleavings)."""

        def sw_abs(ctx):
            inq = ctx.get("sw_in")[shard]
            budget = ctx.get("failure_budget")
            can_fail = budget > 0
            ctx.block_unless(len(inq) > 0 or can_fail)
            if len(inq) > 0 and (not can_fail or not ctx.maybe()):
                op, epoch = inq[0]
                ctx.set("sw_in", _set(ctx.get("sw_in"), shard, inq[1:]))
                if op == CLEAR_OP:
                    ctx.set("sw_table",
                            _set(ctx.get("sw_table"), shard, frozenset()))
                else:
                    _install(ctx, shard, op)
                outq = ctx.get("sw_out")
                ctx.set("sw_out",
                        _set(outq, shard, outq[shard] + ((op, epoch),)))
            else:
                ctx.set("failure_budget", budget - 1)
                _wipe(ctx, shard)
                fifo_put(ctx, "topo_q", ("down", shard))
                fifo_put(ctx, "topo_q", ("up", shard))
            ctx.goto("abs")

        return [SpecProcess(f"switch{shard}", [Step("abs", sw_abs)],
                            daemon=True)]

    switch_procs: list[SpecProcess] = []
    for shard in switches:
        switch_procs.extend(abstract_switch_processes(shard)
                            if abstract_switch
                            else full_switch_processes(shard))

    # -- OFC: Monitoring Server -----------------------------------------------------------
    def make_monitor(shard: int) -> SpecProcess:
        def mon(ctx):
            outq = ctx.get("sw_out")[shard]
            ctx.block_unless(len(outq) > 0)
            op, epoch = outq[0]
            ctx.set("sw_out", _set(ctx.get("sw_out"), shard, outq[1:]))
            if op == CLEAR_OP:
                fifo_put(ctx, "topo_q", ("cleanup-ack", shard))
            elif decomposed:
                fifo_put(ctx, "nib_q", ("done", op, epoch))
            else:
                if not stale_protection or epoch == ctx.get("epoch")[shard]:
                    ctx.set("status",
                            _set(ctx.get("status"), op, "done"))
            ctx.goto("mon")

        return SpecProcess(f"monitor{shard}", [Step("mon", mon)],
                           daemon=True)

    monitors = [make_monitor(s) for s in switches]

    # -- DE: NIB Event Handler (decomposed only) --------------------------------------------
    def nib_handler(ctx):
        kind, op, epoch = fifo_get(ctx, "nib_q")
        statuses = ctx.get("status")
        if stale_protection and epoch != ctx.get("epoch")[switch_of[op]]:
            # Stale event from before a recovery reset (see module doc).
            ctx.goto("apply")
            return
        if kind == "sent":
            if statuses[op] == "sched":
                ctx.set("status", _set(statuses, op, "flight"))
        elif kind == "done":
            # Conservative state machine (§3.9): accept ACKs only for
            # OPs deemed in flight.
            if statuses[op] == "flight":
                ctx.set("status", _set(statuses, op, "done"))
        elif kind == "failed":
            # A failure report is only valid while the switch is still
            # recorded non-UP: if recovery completed meanwhile, the
            # recovery reset has already re-derived this OP's state and
            # a fresh dispatch is (or will be) under way.
            if (statuses[op] == "sched"
                    and ctx.get("health_view")[switch_of[op]] == "down"):
                ctx.set("status", _set(statuses, op, "failed"))
        ctx.goto("apply")

    nib_proc = SpecProcess("nibHandler", [Step("apply", nib_handler)],
                           daemon=True)

    # -- OFC: Topo Event Handler (Fig. A.5 recovery) ---------------------------------------------
    def _reset_ops(ctx, shard: int) -> None:
        """⑦ reset the recovered switch's OPs — of *every* status.

        The epoch bump happens atomically with the reset: events created
        before this instant are stale by definition, events created
        after refer to post-reset scheduling.  Bumping it any earlier
        re-stamps pre-reset observations as fresh (a bug found here).
        """
        epochs = ctx.get("epoch")
        ctx.set("epoch", _set(epochs, shard, epochs[shard] + 1))
        statuses = list(ctx.get("status"))
        for op in ops:
            if switch_of[op] == shard and statuses[op] != "none":
                statuses[op] = "none"
        ctx.set("status", tuple(statuses))

    def _mark_up(ctx, shard: int) -> None:
        """⑧ flip the topology state."""
        ctx.set("health_view",
                _set(ctx.get("health_view"), shard, "up"))

    def topo(ctx):
        event, shard = fifo_get(ctx, "topo_q")
        view = ctx.get("health_view")
        if event == "down":
            if view[shard] != "down":
                ctx.set("health_view", _set(view, shard, "down"))
        elif event == "up":
            if view[shard] == "down":
                ctx.set("health_view", _set(view, shard, "recovering"))
                ctx.set("cleanup_pending",
                        _set(ctx.get("cleanup_pending"), shard, True))
                queues = ctx.get("worker_q")
                ctx.set("worker_q",
                        _set(queues, shard,
                             queues[shard] + ((CLEAR_OP, None),)))
        elif event == "cleanup-ack":
            if ctx.get("cleanup_pending")[shard]:
                ctx.set("cleanup_pending",
                        _set(ctx.get("cleanup_pending"), shard, False))
                if recovery_order == "atomic":
                    _reset_ops(ctx, shard)          # ⑦ first …
                    _mark_up(ctx, shard)            # … ⑧ second
                else:
                    ctx.lset("shard", shard)
                    if recovery_order == "fixed":
                        ctx.goto("reset_ops")       # ⑦ then ⑧
                    else:  # "buggy": the §G ordering error
                        ctx.goto("mark_up")         # ⑧ then ⑦
                    return
        ctx.goto("topo")

    def topo_reset_step(ctx):
        _reset_ops(ctx, ctx.lget("shard"))
        ctx.goto("mark_up" if recovery_order == "fixed" else "topo")

    def topo_mark_up_step(ctx):
        _mark_up(ctx, ctx.lget("shard"))
        ctx.goto("topo" if recovery_order == "fixed" else "reset_ops")

    topo_steps = [Step("topo", topo)]
    topo_locals: dict = {}
    if recovery_order != "atomic":
        topo_steps += [Step("reset_ops", topo_reset_step),
                       Step("mark_up", topo_mark_up_step)]
        topo_locals["shard"] = -1
    topo_proc = SpecProcess("topoHandler", topo_steps, locals_=topo_locals,
                            daemon=True)

    processes = [sequencer_proc, *workers, *switch_procs, *monitors,
                 topo_proc]
    if decomposed:
        processes.append(nib_proc)

    # -- properties -------------------------------------------------------------------------------
    def correct_dag_order(view) -> bool:
        seq = view["install_seq"]
        position = {op: i for i, op in enumerate(seq)}
        for a, b in edges:
            if a in position and b in position and position[a] >= position[b]:
                return False
        return True

    def no_duplicate_worker_claims(view) -> bool:
        claims = [s for s in view["worker_state"] if s not in (NULL, CLEAR_OP)]
        return len(claims) == len(set(claims))

    def dag_installed(view) -> bool:
        return all(op in view["sw_table"][switch_of[op]] for op in ops)

    def view_matches(view) -> bool:
        for op in ops:
            deemed = view["status"][op] == "done"
            installed = op in view["sw_table"][switch_of[op]]
            if deemed != installed:
                return False
        return True

    # -- symmetry ------------------------------------------------------------------------------------
    if recovery_order == "atomic":
        symmetry = _build_symmetry(num_ops, edges, num_switches, switch_of,
                                   abstract_switch, decomposed)
    else:
        # The split recovery keeps a switch index in the (shared) topo
        # handler's locals, which the stack permutation does not cover.
        symmetry = None

    liveness = {"ViewMatches": view_matches}
    if not oneshot_sequencer:
        # A one-shot sequencer cannot restore standing intent after a
        # wipe, so CorrectDAGInstalled is only meaningful (and checked)
        # for the perpetual-intent configuration.
        liveness["DagInstalled"] = dag_installed
    spec = Spec(
        name=(f"controller-{num_ops}ops-{num_switches}sw-{failures}f"
              f"{'-abs' if abstract_switch else ''}"
              f"{'-coarse' if coarse_atomicity else ''}"
              f"{'-mono' if not decomposed else ''}"
              f"{'-' + recovery_order if recovery_order != 'atomic' else ''}"
              f"{'' if stale_protection else '-noepoch'}"
              f"{'-oneshot' if oneshot_sequencer else ''}"),
        globals_=globals_,
        processes=processes,
        invariants={
            "CorrectDAGOrder": correct_dag_order,
            "NoDuplicateWorkerClaims": no_duplicate_worker_claims,
        },
        eventually_always=liveness,
        symmetry=symmetry,
    )
    if symmetry is not None:
        symmetry.spec = spec
    return spec


def _build_symmetry(num_ops, edges, num_switches, switch_of,
                    abstract_switch, decomposed):
    """Permutation symmetry over (switch, worker, monitor) stacks.

    Valid only when the workload itself is symmetric: permuting switch
    indices (and the induced renaming of the OPs pinned to them) must
    map the DAG edge set onto itself.  Like TLC symmetry sets, the
    canonical representative is the lexicographic minimum over all
    valid permutations.
    """
    ops = list(range(1, num_ops + 1))
    edge_set = frozenset(edges)
    valid_perms = []
    for perm in itertools.permutations(range(num_switches)):
        # The induced op renaming: op i on switch s maps to the op of
        # the same rank on switch perm[s].
        by_switch: dict[int, list[int]] = {s: [] for s in range(num_switches)}
        for op in ops:
            by_switch[switch_of[op]].append(op)
        op_map: dict[int, int] = {}
        consistent = True
        for s in range(num_switches):
            source, target = by_switch[s], by_switch[perm[s]]
            if len(source) != len(target):
                consistent = False
                break
            for a, b in zip(source, target):
                op_map[a] = b
        if not consistent:
            continue
        mapped_edges = frozenset((op_map[a], op_map[b]) for a, b in edge_set)
        if mapped_edges == edge_set:
            valid_perms.append((perm, op_map))
    if len(valid_perms) <= 1:
        return None

    # Index bookkeeping for applying a permutation to a State.
    per_switch_globals = ["worker_q", "sw_in", "sw_out", "sw_table",
                          "sw_healthy", "health_view", "cleanup_pending",
                          "epoch", "worker_state"]

    def apply(spec_state_pair):
        spec, state, perm, op_map = spec_state_pair

        def map_op(op):
            return op_map.get(op, op)

        def map_item(item):
            if isinstance(item, tuple) and len(item) == 2:
                return (map_op(item[0]), item[1])
            return map_op(item)

        new_globals = list(state.globals_)
        for name in per_switch_globals:
            index = spec.global_index[name]
            values = state.globals_[index]
            permuted = [None] * num_switches
            for s in range(num_switches):
                value = values[s]
                if name in ("worker_q", "sw_in", "sw_out"):
                    value = tuple(map_item(i) for i in value)
                elif name == "sw_table":
                    value = frozenset(map_op(o) for o in value)
                elif name == "worker_state":
                    value = map_op(value) if value != NULL else value
                permuted[perm[s]] = value
            new_globals[index] = tuple(permuted)
        # status (op-indexed, 1-based)
        status_index = spec.global_index["status"]
        statuses = state.globals_[status_index]
        new_status = list(statuses)
        for op in ops:
            new_status[op_map[op]] = statuses[op]
        new_globals[status_index] = tuple(new_status)
        # nib_q events carry op ids
        if decomposed:
            nib_index = spec.global_index["nib_q"]
            new_globals[nib_index] = tuple(
                (kind, map_op(op), epoch)
                for kind, op, epoch in state.globals_[nib_index])
        # topo_q events carry switch ids
        topo_index = spec.global_index["topo_q"]
        new_globals[topo_index] = tuple(
            (kind, perm[s]) for kind, s in state.globals_[topo_index])
        # ever_installed / install_seq are history vars over ops
        ever_index = spec.global_index["ever_installed"]
        new_globals[ever_index] = frozenset(
            map_op(o) for o in state.globals_[ever_index])
        seq_index = spec.global_index["install_seq"]
        new_globals[seq_index] = tuple(
            map_op(o) for o in state.globals_[seq_index])
        # processes: permute the per-switch process stacks
        new_procs = list(state.procs)
        prefixes = (["worker", "switch", "monitor"]
                    if abstract_switch
                    else ["worker", "switch", "swFailure", "swRecovery",
                          "monitor"])
        for prefix in prefixes:
            for s in range(num_switches):
                src = spec.process_index[f"{prefix}{s}"]
                dst = spec.process_index[f"{prefix}{perm[s]}"]
                pc, locals_ = state.procs[src]
                if prefix == "worker" and locals_:
                    locals_ = tuple(
                        map_op(v) if v != NULL else v for v in locals_)
                elif prefix == "switch" and locals_:
                    locals_ = tuple(
                        map_item(v) if v != NULL else v for v in locals_)
                new_procs[dst] = (pc, locals_)
        return State(tuple(new_globals), tuple(new_procs))

    perm_by_tuple = {perm: op_map for perm, op_map in valid_perms}
    ops_by_switch: dict[int, list[int]] = {s: [] for s in range(num_switches)}
    for op in ops:
        ops_by_switch[switch_of[op]].append(op)
    status_code = {"-": 0, "none": 1, "sched": 2, "flight": 3, "done": 4,
                   "failed": 5}
    view_code = {"up": 0, "down": 1, "recovering": 2}
    kind_code = {"sent": 0, "done": 1, "failed": 2, "down": 3, "up": 4,
                 "cleanup-ack": 5}

    def _item_key(item) -> tuple:
        op, epoch = item
        return (op, -1 if epoch is None else epoch)

    def signature(spec: Spec, state: State, shard: int) -> tuple:
        """A comparable per-stack signature; swap-equivariant."""
        g = state.globals_

        def gv(name):
            return g[spec.global_index[name]]

        my_ops = ops_by_switch[shard]
        statuses = gv("status")
        seq = gv("install_seq")
        positions = {op: i for i, op in enumerate(seq)}
        sig = (
            tuple(status_code[statuses[op]] for op in my_ops),
            tuple(_item_key(i) for i in gv("worker_q")[shard]),
            tuple(_item_key(i) for i in gv("sw_in")[shard]),
            tuple(_item_key(i) for i in gv("sw_out")[shard]),
            tuple(sorted(gv("sw_table")[shard])),
            int(gv("sw_healthy")[shard]),
            view_code[gv("health_view")[shard]],
            int(gv("cleanup_pending")[shard]),
            gv("epoch")[shard],
            (-1 if gv("worker_state")[shard] == NULL
             else gv("worker_state")[shard]),
            tuple(positions.get(op, -1) for op in my_ops),
            tuple((kind_code[k], op, e) for k, op, e in gv("nib_q")
                  if switch_of.get(op) == shard) if decomposed else (),
            tuple(kind_code[k] for k, s in gv("topo_q") if s == shard),
            tuple(_stack_pcs(spec, state, shard)),
        )
        return sig

    pc_code_cache: dict[str, int] = {}

    def _pc_code(pc) -> int:
        if pc is None:
            return -1
        if pc not in pc_code_cache:
            pc_code_cache[pc] = len(pc_code_cache)
        return pc_code_cache[pc]

    stack_prefixes = (["worker", "switch", "monitor"]
                      if abstract_switch
                      else ["worker", "switch", "swFailure", "swRecovery",
                            "monitor"])

    def _stack_pcs(spec: Spec, state: State, shard: int):
        for prefix in stack_prefixes:
            index = spec.process_index[f"{prefix}{shard}"]
            pc, locals_ = state.procs[index]
            yield _pc_code(pc)
            for value in locals_:
                if value == NULL:
                    yield (-1,)
                elif isinstance(value, tuple):
                    yield _item_key(value)
                else:
                    yield (value,)

    identity = tuple(range(num_switches))

    def symmetry(state: State) -> State:
        spec = symmetry.spec  # attached after Spec construction
        sigs = [signature(spec, state, s) for s in range(num_switches)]
        # Choose the valid permutation that sorts stacks by signature.
        best_perm, best_key = None, None
        for perm, op_map in valid_perms:
            # After applying ``perm`` the stack at position i came from
            # shard p⁻¹(i); its signature is sigs[p⁻¹(i)].
            inverse = [0] * num_switches
            for s in range(num_switches):
                inverse[perm[s]] = s
            key = tuple(sigs[inverse[i]] for i in range(num_switches))
            if best_key is None or key < best_key:
                best_key, best_perm = key, perm
        if best_perm == identity or best_perm is None:
            return state
        return apply((spec, state, best_perm, perm_by_tuple[best_perm]))

    return symmetry
