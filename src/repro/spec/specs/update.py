"""Consistent network update under route nondeterminism (paper §4).

The concrete :class:`repro.apps.update.ConsistentUpdateApp` decomposes
an old-path → new-path transition into dependency-ordered rounds and
re-derives its position from ground truth after a crash.  This spec
verifies that discipline exhaustively on the abstraction that matters:
five nodes ``0-1-2-3-4``, old path ``0-1-2-3-4``, new path
``0-1-3-2-4`` (the 2↔3 reversal gadget), waypoint node ``2``.  Each
node holds at most one *old*-generation and one *new*-generation rule;
the effective next hop is the new rule when present (higher priority),
else the old one — exactly the concrete switch's ``lookup`` semantics.

The **network** applies submitted operations in checker-chosen order
(route nondeterminism: every interleaving of in-flight installs and
deletes is explored).  The **scheduler** comes in two flavors:

* *consistent* — emits one dependency-ordered round at a time
  (destination-backwards installs, then the branch flip, then the
  deletes) and blocks until the round is acknowledged before
  continuing.  A budget-bounded **crasher** wipes its local state
  mid-update; on restart it re-derives the current round from the
  ``applied`` ground truth and never re-issues acknowledged
  operations — the crash-resumable discipline of the concrete app.
* *naive* (``naive=True``) — submits every install and delete as one
  unordered batch.  The checker refutes it: orderings exist where the
  reversed edge forms a transient ``2 ↔ 3`` forwarding loop
  (**LoopFree**), where the early branch flip routes around the
  waypoint (**WaypointEnforced**), and where a delete lands before the
  same node's install (**NoBlackhole**).

Properties:

* **LoopFree** (safety) — the walk from node 0 never revisits a node;
* **WaypointEnforced** (safety) — a delivered walk passes node 2;
* **NoBlackhole** (safety) — the walk never hits a rule-less node;
* **Converged** (◇□) — eventually always: every operation applied,
  nothing in flight, and the walk is exactly the new path.
"""

from __future__ import annotations

from ..lang import Spec, SpecProcess, Step

__all__ = ["update_app_spec", "UPDATE_ROUNDS"]

#: Per-node old-generation next hop (-1 = no rule): the old path
#: 0→1→2→3→4.  Node 4 is the destination.
_OLD_HOPS = (1, 2, 3, 4, -1)
_SRC, _WAYPOINT, _DST = 0, 2, 4
_NEW_PATH = (0, 1, 3, 2, 4)

#: The consistent plan: dependency-ordered rounds, destination-
#: backwards — each install is unreachable from the source until the
#: final branch flip, then the retired rules are deleted.  Ops are
#: uniform ``(kind, node, hop)`` triples (hop -1 for deletes).
UPDATE_ROUNDS = (
    (("install", 2, 4),),
    (("install", 3, 2),),
    (("install", 1, 3),),
    (("delete", 1, -1), ("delete", 2, -1), ("delete", 3, -1)),
)
_ALL_OPS = tuple(op for ops in UPDATE_ROUNDS for op in ops)


def update_app_spec(naive: bool = False, restarts: int = 1) -> Spec:
    """Build the update-scheduler spec (consistent or naive)."""
    globals_: dict = {
        "old_hop": _OLD_HOPS,
        "new_hop": (-1,) * 5,
        "pending": (),            # submitted, not yet applied
        "applied": frozenset(),   # ground truth the scheduler re-reads
        "restart_budget": restarts,
    }

    # -- the network: applies in-flight ops in nondeterministic order --------
    def net_apply(ctx):
        pending = ctx.get("pending")
        ctx.block_unless(len(pending) > 0)
        index = ctx.choose_from(tuple(range(len(pending))))
        kind, node, hop = pending[index]
        ctx.set("pending", pending[:index] + pending[index + 1:])
        if kind == "install":
            rules = list(ctx.get("new_hop"))
            rules[node] = hop
            ctx.set("new_hop", tuple(rules))
        else:
            rules = list(ctx.get("old_hop"))
            rules[node] = -1
            ctx.set("old_hop", tuple(rules))
        ctx.set("applied", ctx.get("applied") | {(kind, node, hop)})
        ctx.goto("apply")

    # -- the consistent round-based scheduler ---------------------------------
    def sched_derive(ctx):
        applied = ctx.get("applied")
        index = 0
        while index < len(UPDATE_ROUNDS) \
                and all(op in applied for op in UPDATE_ROUNDS[index]):
            index += 1
        if index == len(UPDATE_ROUNDS):
            ctx.done()
            return
        ctx.lset("round", index)
        ctx.goto("emit")

    def sched_emit(ctx):
        pending = ctx.get("pending")
        applied = ctx.get("applied")
        for op in UPDATE_ROUNDS[ctx.lget("round")]:
            # Idempotent re-issue: acknowledged / in-flight ops are
            # never duplicated after a crash-restart.
            if op not in applied and op not in pending:
                pending = pending + (op,)
        ctx.set("pending", pending)

    def sched_await(ctx):
        applied = ctx.get("applied")
        ctx.block_unless(all(op in applied
                             for op in UPDATE_ROUNDS[ctx.lget("round")]))
        ctx.goto("derive")

    # -- the naive scheduler: one flat unordered batch ------------------------
    def naive_blast(ctx):
        pending = ctx.get("pending")
        applied = ctx.get("applied")
        for op in _ALL_OPS:
            if op not in applied and op not in pending:
                pending = pending + (op,)
        ctx.set("pending", pending)

    def naive_await(ctx):
        applied = ctx.get("applied")
        ctx.block_unless(all(op in applied for op in _ALL_OPS))
        ctx.done()

    if naive:
        sched_steps = [Step("blast", naive_blast),
                       Step("await", naive_await)]
        sched_locals: dict = {}
    else:
        sched_steps = [Step("derive", sched_derive),
                       Step("emit", sched_emit),
                       Step("await", sched_await)]
        sched_locals = {"round": 0}

    # -- crasher: wipes the scheduler mid-update, budget-bounded --------------
    def crash(ctx):
        budget = ctx.get("restart_budget")
        applied = ctx.get("applied")
        ctx.block_unless(budget > 0
                         and not all(op in applied for op in _ALL_OPS))
        ctx.set("restart_budget", budget - 1)
        ctx.reset_peer("updateSched")
        ctx.goto("crash")

    # -- properties -----------------------------------------------------------
    def _walk(view):
        """Follow effective next hops from the source; bounded."""
        old = view["old_hop"]
        new = view["new_hop"]
        visited = []
        node = _SRC
        while node not in visited:
            visited.append(node)
            if node == _DST:
                return "delivered", visited
            hop = new[node] if new[node] != -1 else old[node]
            if hop == -1:
                return "blackhole", visited
            node = hop
        return "loop", visited

    def loop_free(view) -> bool:
        return _walk(view)[0] != "loop"

    def waypoint_enforced(view) -> bool:
        status, visited = _walk(view)
        return status != "delivered" or _WAYPOINT in visited

    def no_blackhole(view) -> bool:
        return _walk(view)[0] != "blackhole"

    def converged(view) -> bool:
        if len(view["pending"]) > 0:
            return False
        if not all(op in view["applied"] for op in _ALL_OPS):
            return False
        status, visited = _walk(view)
        return status == "delivered" and tuple(visited) == _NEW_PATH

    return Spec(
        name=(f"update-app-{'naive' if naive else 'consistent'}"
              f"-{restarts}r"),
        globals_=globals_,
        processes=[
            SpecProcess("network", [Step("apply", net_apply)], daemon=True),
            SpecProcess("updateSched", sched_steps, locals_=sched_locals,
                        daemon=True),
            SpecProcess("crasher", [Step("crash", crash)],
                        fair=False, daemon=True),
        ],
        invariants={
            "LoopFree": loop_free,
            "WaypointEnforced": waypoint_enforced,
            "NoBlackhole": no_blackhole,
        },
        eventually_always={"Converged": converged},
    )
