"""Worker Pool specifications: Listing 1 (initial) vs Listing 3 (final).

The initial specification forwards the OP to the switch *before*
recording it in the NIB and destructively dequeues before processing;
the final one peeks, records in-progress state, updates the NIB, then
forwards, and pops only when done.  Model checking with a crash process
finds the two §3.9 bug classes in the initial spec:

* **hidden install** (safety): an OP is installed on the switch while
  the NIB still records it as unprocessed and no worker claims it;
* **lost event** (liveness ◇□): a crash between dequeue and completion
  drops the OP, so the "eventually every OP is DONE and stays DONE"
  property fails.
"""

from __future__ import annotations

from ..lang import (
    NULL,
    Spec,
    SpecProcess,
    Step,
    ack_pop,
    ack_read,
    fifo_get,
    fifo_put,
)

__all__ = ["worker_pool_spec"]


def _status_set(status: tuple, op: int, value: str) -> tuple:
    updated = list(status)
    updated[op] = value
    return tuple(updated)


def _switch_process() -> SpecProcess:
    """AbstractSW fragment: install whatever arrives, then ACK."""

    def proc(ctx):
        op = fifo_get(ctx, "sw_in")
        ctx.set("sw_table", ctx.get("sw_table") | frozenset([op]))
        fifo_put(ctx, "sw_out", op)
        ctx.goto("proc")

    return SpecProcess("switch", [Step("proc", proc)], daemon=True)


def _monitor_process() -> SpecProcess:
    """Monitoring Server fragment: ACK → NIB DONE."""

    def proc(ctx):
        op = fifo_get(ctx, "sw_out")
        ctx.set("nib", _status_set(ctx.get("nib"), op, "done"))
        ctx.goto("proc")

    return SpecProcess("monitor", [Step("proc", proc)], daemon=True)


def _crash_process(recovery_label: str) -> SpecProcess:
    """Unfair, budgeted crash injector targeting the worker."""

    def crash(ctx):
        budget = ctx.get("crash_budget")
        ctx.block_unless(budget > 0)
        ctx.set("crash_budget", budget - 1)
        ctx.set("worker_state", NULL)  # in-memory state is lost
        ctx.reset_peer("worker", recovery_label)
        ctx.goto("crash")

    return SpecProcess("crasher", [Step("crash", crash)],
                       fair=False, daemon=True)


def _buggy_worker() -> SpecProcess:
    """Listing 1: FIFOGet, forward, then update the NIB."""

    def get(ctx):
        op = fifo_get(ctx, "op_queue")   # destructive dequeue
        ctx.lset("current", op)

    def forward(ctx):
        fifo_put(ctx, "sw_in", ctx.lget("current"))  # action first …

    def update(ctx):
        op = ctx.lget("current")
        nib = ctx.get("nib")
        if nib[op] == "none":            # … state second
            ctx.set("nib", _status_set(nib, op, "sent"))
        ctx.lset("current", NULL)
        ctx.goto("get")

    return SpecProcess("worker", [
        Step("get", get),
        Step("forward", forward),
        Step("update", update),
    ], locals_={"current": NULL}, daemon=True)


def _fixed_worker() -> SpecProcess:
    """Listing 3: peek, record state, update NIB, forward, pop."""

    def recover(ctx):
        # StateRecovery: clear the in-progress marker; the queue head is
        # still present (pop happens last), so processing restarts.
        ctx.set("worker_state", NULL)
        ctx.goto("read")

    def read(ctx):
        op = ack_read(ctx, "op_queue")   # peek, do not remove
        ctx.lset("current", op)

    def record(ctx):
        ctx.set("worker_state", ctx.lget("current"))

    def update(ctx):
        op = ctx.lget("current")
        nib = ctx.get("nib")
        if nib[op] == "none":            # state first …
            ctx.set("nib", _status_set(nib, op, "sent"))

    def forward(ctx):
        fifo_put(ctx, "sw_in", ctx.lget("current"))  # … action second

    def clear(ctx):
        ctx.set("worker_state", NULL)
        ack_pop(ctx, "op_queue")
        ctx.lset("current", NULL)
        ctx.goto("read")

    return SpecProcess("worker", [
        Step("recover", recover),
        Step("read", read),
        Step("record", record),
        Step("update", update),
        Step("forward", forward),
        Step("clear", clear),
    ], locals_={"current": NULL}, start="read", daemon=True)


def worker_pool_spec(num_ops: int = 2, crashes: int = 1,
                     fixed: bool = True) -> Spec:
    """Build the worker-pool spec (buggy or fixed) with a crash budget."""
    nib = tuple(["-"] + ["none"] * num_ops)  # 1-indexed op statuses
    worker = _fixed_worker() if fixed else _buggy_worker()
    recovery = "recover" if fixed else "get"
    processes = [
        worker,
        _switch_process(),
        _monitor_process(),
        _crash_process(recovery),
    ]
    ops = frozenset(range(1, num_ops + 1))

    def no_hidden_install(view) -> bool:
        """Installed ⇒ NIB knows OR a worker currently claims it."""
        claimed = view["worker_state"]
        for op in view["sw_table"]:
            if view["nib"][op] == "none" and claimed != op:
                return False
        return True

    def all_ops_done(view) -> bool:
        return all(view["nib"][op] == "done" for op in ops)

    return Spec(
        name=("workerpool-final" if fixed else "workerpool-initial")
             + f"-{num_ops}ops-{crashes}crashes",
        globals_={
            "op_queue": tuple(range(1, num_ops + 1)),
            "nib": nib,
            "sw_in": (),
            "sw_out": (),
            "sw_table": frozenset(),
            "worker_state": NULL,
            "crash_budget": crashes,
        },
        processes=processes,
        # Listing 3 commits to the peek/pop discipline on op_queue; the
        # declaration lets speclint hold every access to it (Listing 1
        # predates the discipline and is deliberately left undeclared).
        ack_queues=frozenset({"op_queue"}) if fixed else None,
        invariants={"NoHiddenInstall": no_hidden_install},
        eventually_always={"AllOpsDone": all_ops_done},
    )
