"""Concrete specifications: the controller, worker pool and apps."""

from .abstract_app import core_with_app_spec
from .apps import DIAMOND_PATHS, drain_app_spec, failover_app_spec, te_app_spec
from .controller import CLEAR_OP, controller_spec
from .workerpool import worker_pool_spec

__all__ = [
    "CLEAR_OP",
    "DIAMOND_PATHS",
    "controller_spec",
    "core_with_app_spec",
    "drain_app_spec",
    "failover_app_spec",
    "te_app_spec",
    "worker_pool_spec",
]
