"""Concrete specifications: the controller, worker pool and apps.

``SPEC_SOURCES`` is the registry of every *bundled* spec configuration:
name → picklable :class:`~repro.spec.parallel.SpecSource`, so the CLI,
the parallel checker's worker processes and the differential test suite
all build byte-identical specs from one place.  ``build_spec(name)`` is
the convenience constructor.
"""

from ..parallel import SpecSource
from .abstract_app import core_with_app_spec
from .apps import DIAMOND_PATHS, drain_app_spec, failover_app_spec, te_app_spec
from .controller import CLEAR_OP, controller_spec
from .update import UPDATE_ROUNDS, update_app_spec
from .workerpool import worker_pool_spec

__all__ = [
    "CLEAR_OP",
    "DIAMOND_PATHS",
    "SPEC_SOURCES",
    "UPDATE_ROUNDS",
    "build_spec",
    "controller_spec",
    "core_with_app_spec",
    "drain_app_spec",
    "failover_app_spec",
    "te_app_spec",
    "update_app_spec",
    "worker_pool_spec",
]

_CONTROLLER = "repro.spec.specs.controller"
_WORKERPOOL = "repro.spec.specs.workerpool"
_ABSTRACT = "repro.spec.specs.abstract_app"
_APPS = "repro.spec.specs.apps"
_UPDATE = "repro.spec.specs.update"

#: Every bundled spec configuration (checkable, lintable, benchable).
SPEC_SOURCES = {
    "workerpool-initial": SpecSource.of(
        _WORKERPOOL, "worker_pool_spec", fixed=False),
    "workerpool-final": SpecSource.of(
        _WORKERPOOL, "worker_pool_spec", fixed=True),
    "controller": SpecSource.of(
        _CONTROLLER, "controller_spec", failures=1),
    "controller-buggy-recovery": SpecSource.of(
        _CONTROLLER, "controller_spec", num_switches=1, failures=1,
        recovery_order="buggy", stale_protection=False,
        oneshot_sequencer=True),
    #: A parallel-checking benchmark workload (§3.4 at a second
    #: failure budget): ~83k states, second only to drain-app-full-core
    #: among the bundled state spaces.
    "controller-large": SpecSource.of(
        _CONTROLLER, "controller_spec", failures=2),
    "core-with-app": SpecSource.of(
        _ABSTRACT, "core_with_app_spec", failures=2),
    "core-with-app-naive": SpecSource.of(
        _ABSTRACT, "core_with_app_spec", failures=1, naive_transition=True),
    "drain-app": SpecSource.of(_APPS, "drain_app_spec", core="abstract"),
    "drain-app-full-core": SpecSource.of(_APPS, "drain_app_spec", core="full"),
    "te-app": SpecSource.of(_APPS, "te_app_spec"),
    "failover-app": SpecSource.of(_APPS, "failover_app_spec"),
    "update-app": SpecSource.of(_UPDATE, "update_app_spec", restarts=1),
    "update-app-naive": SpecSource.of(
        _UPDATE, "update_app_spec", naive=True, restarts=1),
}


def build_spec(name: str):
    """Build the named bundled spec configuration."""
    return SPEC_SOURCES[name].build()
