"""Application specifications and the AbstractCore (paper §4).

ZENITH-apps are verified against *AbstractCore* instead of the full
ZENITH-core specification: AbstractCore maintains the list of submitted
DAGs and delivers arbitrary (checker-generated) network events to the
app; the app must (1) react safely — its invariants hold in every
state — and (2) resubmit DAGs consistent with the current topology
(◇□ DagConsistent).  Because ZENITH-core guarantees submitted DAGs are
eventually installed and events eventually delivered, verifying against
AbstractCore suffices for end-to-end correctness — and is orders of
magnitude cheaper than composing with the full core, which is exactly
what §6.3 measures.  ``drain_app_spec(core="full")`` builds the full
composition (the app driving a pipeline of sequencer → worker →
switches → monitor) for that comparison.

The topology is a diamond — s0 {s1 | s2} s3 — with the single demand
s0 → s3, so draining either middle switch must reroute via the other,
and draining both must be refused (the 25% budget and connectivity
invariants of §4).
"""

from __future__ import annotations

from ..lang import NULL, Spec, SpecProcess, Step, fifo_get, fifo_put

__all__ = ["drain_app_spec", "te_app_spec", "failover_app_spec", "DIAMOND_PATHS"]

#: The two s0→s3 paths of the diamond topology (middle hop varies).
DIAMOND_PATHS = {1: (0, 1, 3), 2: (0, 2, 3)}
_SWITCHES = (0, 1, 2, 3)
_MIDDLE = (1, 2)


def drain_app_spec(core: str = "abstract", events: int = 1,
                   drains: int = 2) -> Spec:
    """The drain application (paper §E) against abstract or full core.

    ``events`` bounds checker-generated switch failure/recovery pairs;
    ``drains`` bounds drain/undrain requests.  Invariants: the drain
    budget (≤1 of 4 switches, the 25% rule), endpoint connectivity of
    every submitted DAG, and no-traffic-over-drained-switches; liveness:
    the standing DAG is eventually always consistent with the topology.
    """
    if core not in ("abstract", "full"):
        raise ValueError(f"unknown core model {core!r}")
    full = core == "full"

    globals_: dict = {
        "switch_up": (True,) * 4,
        "drained": frozenset(),
        "dag": 1,                 # current submitted path id (0 = none)
        "event_q": (),            # core → app events
        "request_q": (),          # operator → app drain requests
        "event_budget": events,
        "drain_budget": drains,
        "rejected": 0,
    }
    if full:
        # The pipeline state of the full composition.
        globals_.update({
            "dag_q": (),                      # app → sequencer
            "op_q": (),                       # sequencer → worker
            "sw_in": ((),) * 4,               # worker → switches
            "sw_out": ((),) * 4,              # switches → monitor
            "installed": (frozenset(),) * 4,  # per-switch path markers
            "acked": frozenset(),             # path ids fully acked
        })

    # -- operator: issues nondeterministic drain/undrain requests --------------
    def operator(ctx):
        budget = ctx.get("drain_budget")
        ctx.block_unless(budget > 0)
        ctx.set("drain_budget", budget - 1)
        target = ctx.choose_from(_MIDDLE)
        kind = "drain" if ctx.maybe() else "undrain"
        fifo_put(ctx, "request_q", (kind, target))
        ctx.goto("issue")

    operator_proc = SpecProcess("operator", [Step("issue", operator)],
                                fair=False, daemon=True)

    # -- AbstractCore: flips switches, delivers events --------------------------
    def core_events(ctx):
        budget = ctx.get("event_budget")
        ctx.block_unless(budget > 0)
        ctx.set("event_budget", budget - 1)
        target = ctx.choose_from(_MIDDLE)
        ups = ctx.get("switch_up")
        updated = list(ups)
        updated[target] = not updated[target]
        ctx.set("switch_up", tuple(updated))
        kind = "down" if not updated[target] else "up"
        fifo_put(ctx, "event_q", (kind, target))
        ctx.goto("gen")

    core_proc = SpecProcess("abstractCore", [Step("gen", core_events)],
                            fair=False, daemon=True)

    # -- the drain application ----------------------------------------------------
    def app_submit(ctx, new_dag: int) -> None:
        ctx.set("dag", new_dag)
        if full:
            fifo_put(ctx, "dag_q", new_dag)

    def app_step(ctx):
        requests = ctx.get("request_q")
        events_pending = ctx.get("event_q")
        ctx.block_unless(len(requests) > 0 or len(events_pending) > 0)
        drained = ctx.get("drained")
        ups = ctx.get("switch_up")
        if len(requests) > 0:
            kind, target = fifo_get(ctx, "request_q")
            if kind == "drain":
                proposed = drained | {target}
                other = 1 if target == 2 else 2
                viable = other not in proposed and ups[other]
                if len(proposed) > 1 or not viable:
                    # §4 app invariants: budget (25% of 4 switches = 1)
                    # and endpoint connectivity — refuse the drain.
                    ctx.set("rejected", ctx.get("rejected") + 1)
                    ctx.goto("react")
                    return
                ctx.set("drained", proposed)
                drained = proposed
            else:
                ctx.set("drained", drained - {target})
                drained = drained - {target}
        else:
            fifo_get(ctx, "event_q")  # topology changed; recompute below
        new_dag = 0
        for pid, path in sorted(DIAMOND_PATHS.items()):
            middle = path[1]
            if middle not in drained and ups[middle]:
                new_dag = pid
                break
        app_submit(ctx, new_dag)
        ctx.goto("react")

    app_proc = SpecProcess("drainApp", [Step("react", app_step)],
                           daemon=True)

    processes = [operator_proc, core_proc, app_proc]

    # -- the full-core pipeline (only for core="full") --------------------------------
    if full:
        def sequencer(ctx):
            dag = fifo_get(ctx, "dag_q")
            if dag != 0:
                for hop in DIAMOND_PATHS[dag]:
                    fifo_put(ctx, "op_q", (dag, hop))
            ctx.goto("seq")

        def worker(ctx):
            dag, hop = fifo_get(ctx, "op_q")
            inq = ctx.get("sw_in")
            updated = list(inq)
            updated[hop] = updated[hop] + ((dag, hop),)
            ctx.set("sw_in", tuple(updated))
            ctx.goto("work")

        def make_switch(sid: int) -> SpecProcess:
            def sw(ctx):
                inq = ctx.get("sw_in")[sid]
                ctx.block_unless(len(inq) > 0)
                dag, hop = inq[0]
                updated = list(ctx.get("sw_in"))
                updated[sid] = inq[1:]
                ctx.set("sw_in", tuple(updated))
                tables = list(ctx.get("installed"))
                tables[sid] = tables[sid] | {dag}
                ctx.set("installed", tuple(tables))
                outq = list(ctx.get("sw_out"))
                outq[sid] = outq[sid] + ((dag, hop),)
                ctx.set("sw_out", tuple(outq))
                ctx.goto("sw")

            return SpecProcess(f"switch{sid}", [Step("sw", sw)], daemon=True)

        def monitor(ctx):
            outs = ctx.get("sw_out")
            ready = [s for s in _SWITCHES if outs[s]]
            ctx.block_unless(bool(ready))
            sid = ctx.choose_from(ready)
            dag, _hop = outs[sid][0]
            updated = list(outs)
            updated[sid] = outs[sid][1:]
            ctx.set("sw_out", tuple(updated))
            installed = ctx.get("installed")
            if all(dag in installed[hop] for hop in DIAMOND_PATHS[dag]):
                ctx.set("acked", ctx.get("acked") | {dag})
            ctx.goto("mon")

        processes += [
            SpecProcess("sequencer", [Step("seq", sequencer)], daemon=True),
            SpecProcess("worker", [Step("work", worker)], daemon=True),
            *[make_switch(s) for s in _SWITCHES],
            SpecProcess("monitor", [Step("mon", monitor)], daemon=True),
        ]

    # -- properties --------------------------------------------------------------------
    def budget_invariant(view) -> bool:
        return len(view["drained"]) <= 1

    def dag_avoids_drained(view) -> bool:
        dag = view["dag"]
        if dag == 0:
            return True
        return all(hop not in view["drained"] for hop in DIAMOND_PATHS[dag])

    def endpoints_connected(view) -> bool:
        """A submitted DAG must route the demand end to end."""
        dag = view["dag"]
        if dag == 0:
            # No viable path may exist; only acceptable when both
            # middles are unusable.
            usable = [m for m in _MIDDLE
                      if m not in view["drained"] and view["switch_up"][m]]
            return not usable
        return True

    def dag_consistent(view) -> bool:
        """◇□: standing DAG avoids down and drained switches."""
        dag = view["dag"]
        if dag == 0:
            usable = [m for m in _MIDDLE
                      if m not in view["drained"] and view["switch_up"][m]]
            return not usable
        middle = DIAMOND_PATHS[dag][1]
        return view["switch_up"][middle] and middle not in view["drained"]

    return Spec(
        name=f"drain-app-{core}-core-{events}ev-{drains}req",
        globals_=globals_,
        processes=processes,
        invariants={
            "DrainBudget": budget_invariant,
            "DagAvoidsDrained": dag_avoids_drained,
            "EndpointsConnected": endpoints_connected,
        },
        eventually_always={"DagConsistent": dag_consistent},
    )


def te_app_spec(flows: int = 2) -> Spec:
    """The TE application against AbstractCore (verified in ~seconds).

    Two unit-demand flows over the diamond's two unit-capacity paths:
    the app must keep the flows on disjoint paths (no link over
    capacity) while the checker flips switches.
    """
    globals_: dict = {
        "switch_up": (True,) * 4,
        "placement": (1, 2),      # path id per flow (0 = unplaced)
        "event_q": (),
        "event_budget": 2,
    }

    def core_events(ctx):
        budget = ctx.get("event_budget")
        ctx.block_unless(budget > 0)
        ctx.set("event_budget", budget - 1)
        target = ctx.choose_from(_MIDDLE)
        ups = list(ctx.get("switch_up"))
        ups[target] = not ups[target]
        ctx.set("switch_up", tuple(ups))
        fifo_put(ctx, "event_q", ("toggle", target))
        ctx.goto("gen")

    def app(ctx):
        fifo_get(ctx, "event_q")
        ups = ctx.get("switch_up")
        usable = [pid for pid, path in sorted(DIAMOND_PATHS.items())
                  if ups[path[1]]]
        if len(usable) >= 2:
            placement = (usable[0], usable[1])
        elif len(usable) == 1:
            # Capacity 1: only one flow fits; the other is parked.
            placement = (usable[0], 0)
        else:
            placement = (0, 0)
        ctx.set("placement", placement)
        ctx.goto("react")

    def no_overload(view) -> bool:
        placed = [p for p in view["placement"] if p != 0]
        return len(placed) == len(set(placed))

    def placed_on_up(view) -> bool:
        """◇□: flows only ride healthy paths, fully placed if possible."""
        ups = view["switch_up"]
        usable = [pid for pid, path in sorted(DIAMOND_PATHS.items())
                  if ups[path[1]]]
        placed = [p for p in view["placement"] if p != 0]
        if any(not ups[DIAMOND_PATHS[p][1]] for p in placed):
            return False
        return len(placed) == min(len(usable), 2)

    return Spec(
        name=f"te-app-abstract-core-{flows}flows",
        globals_=globals_,
        processes=[
            SpecProcess("abstractCore", [Step("gen", core_events)],
                        fair=False, daemon=True),
            SpecProcess("teApp", [Step("react", app)], daemon=True),
        ],
        invariants={"NoLinkOverload": no_overload},
        eventually_always={"PlacedOnHealthyPaths": placed_on_up},
    )


def failover_app_spec(failovers: int = 2) -> Spec:
    """Planned OFC failover against AbstractCore.

    The app moves mastership from the active OFC instance to a fresh
    one: quiesce → role change → activate.  Invariants: never two
    active masters (split brain) and ◇□ exactly one active master.
    """
    globals_: dict = {
        "active": (True, False),   # instance i active?
        "master": 0,               # switches' current master instance
        "request_q": (),
        "failover_budget": failovers,
    }

    def operator(ctx):
        budget = ctx.get("failover_budget")
        ctx.block_unless(budget > 0)
        ctx.set("failover_budget", budget - 1)
        fifo_put(ctx, "request_q", "failover")
        ctx.goto("issue")

    def quiesce(ctx):
        fifo_get(ctx, "request_q")
        active = ctx.get("active")
        current = active.index(True)
        ctx.lset("new", 1 - current)
        # Deactivate the old instance *first* (no dual mastership).
        ctx.set("active", (False, False))

    def role_change(ctx):
        ctx.set("master", ctx.lget("new"))

    def activate(ctx):
        updated = [False, False]
        updated[ctx.lget("new")] = True
        ctx.set("active", tuple(updated))
        ctx.goto("quiesce")

    def no_split_brain(view) -> bool:
        return sum(view["active"]) <= 1

    def master_is_active(view) -> bool:
        """◇□: the switches' master is the (only) active instance."""
        return (sum(view["active"]) == 1
                and view["active"][view["master"]])

    return Spec(
        name=f"failover-app-abstract-core-{failovers}fo",
        globals_=globals_,
        processes=[
            SpecProcess("operator", [Step("issue", operator)],
                        fair=False, daemon=True),
            SpecProcess("failoverApp", [
                Step("quiesce", quiesce),
                Step("role_change", role_change),
                Step("activate", activate),
            ], locals_={"new": 0}, daemon=True),
        ],
        invariants={"NoSplitBrain": no_split_brain},
        eventually_always={"MasterIsActive": master_is_active},
    )
