"""A PlusCal-like specification language embedded in Python.

The paper specifies ZENITH-core in PlusCal: processes made of *labeled
atomic steps* over global and process-local variables, explored by the
TLC model checker under weak fairness.  This module provides the same
semantic model:

* a :class:`SpecProcess` declares local variables and an ordered list
  of labeled steps; each step is a Python function over a :class:`Ctx`;
* steps express **await** via :meth:`Ctx.block_unless`, **goto** via
  :meth:`Ctx.goto`, and **nondeterministic choice** via
  :meth:`Ctx.choose` (the checker enumerates every choice);
* a :class:`Spec` bundles processes, global variables, safety
  invariants and ◇□ liveness properties.

States are immutable tuples, so the checker can hash, dedupe and
canonicalize them (symmetry reduction).  Queues are modeled as tuples;
:func:`fifo_put` / :func:`fifo_get` mirror the paper's FIFOPut/FIFOGet
macros, and :func:`ack_read` / :func:`ack_pop` the read/pop discipline
of the final specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "Blocked",
    "NeedChoice",
    "QueueDisciplineError",
    "Ctx",
    "Step",
    "SpecProcess",
    "Spec",
    "SpecView",
    "State",
    "ack_pop",
    "ack_read",
    "changed_slots",
    "fifo_put",
    "fifo_get",
    "NULL",
]

#: The NADIR_NULL placeholder of the paper's specifications.
NULL = "<null>"


def _freeze(value):
    """Recursively convert a value into a hashable equivalent."""
    if isinstance(value, FrozenRecord):
        return value
    if isinstance(value, dict):
        return FrozenRecord(value)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze(item) for item in value)
    return value


class FrozenRecord(dict):
    """A hashable, immutable record (struct) usable inside states.

    Nested dicts/lists/sets are frozen recursively at construction so
    the record is hashable all the way down (states must be hashable
    for the checker to dedupe them).  Leaves must themselves be
    hashable; anything else raises a :class:`TypeError` at hash time.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        for key, value in list(dict.items(self)):
            dict.__setitem__(self, key, _freeze(value))

    def __hash__(self):  # type: ignore[override]
        try:
            return hash(frozenset(self.items()))
        except TypeError as exc:
            raise TypeError(
                "FrozenRecord values must be hashable leaves "
                f"(dict/list/set values are frozen automatically): {exc}"
            ) from None

    def __reduce__(self):
        # dict subclasses normally pickle via SETITEMS, which our
        # immutability hooks reject; rebuild through the constructor
        # instead (re-freezing already-frozen values is a no-op), so
        # records inside states survive the parallel checker's
        # process-boundary crossings.
        return (self.__class__, (dict(self),))

    def _immutable(self, *args, **kwargs):
        raise TypeError("FrozenRecord is immutable")

    __setitem__ = _immutable
    __delitem__ = _immutable
    clear = _immutable
    pop = _immutable
    popitem = _immutable
    setdefault = _immutable
    update = _immutable


class Blocked(Exception):
    """Raised by a step whose guard (await) is not satisfied."""


class NeedChoice(Exception):
    """Internal: the choice oracle ran out; the checker must fork."""

    def __init__(self, arity: int):
        super().__init__(arity)
        self.arity = arity


class QueueDisciplineError(Exception):
    """A queue macro was used against its discipline (e.g. popping an
    empty ack queue, which means no preceding peek claimed the head)."""


@dataclass(frozen=True)
class State:
    """An immutable global state: global vars + per-process (pc, locals)."""

    globals_: tuple
    procs: tuple  # tuple of (pc:str|None, locals:tuple)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"State(g={self.globals_}, p={self.procs})"


def changed_slots(parent: State, successor: State) -> tuple[list, list]:
    """Slot indices where ``successor`` differs from ``parent``.

    This is the per-transition write footprint, made exact by object
    identity: :class:`Ctx` copies the parent's slot tuples and only
    replaces what the step wrote (``_successor`` rebuilds the executing
    process's slot and ``reset_peer`` the crashed peers'), so a slot
    holding a *different object* is exactly a slot the step may have
    changed.  Identity is an over-approximation of inequality — a step
    rewriting an equal value yields a fresh object — which is safe for
    the incremental fingerprinter (it just re-digests an unchanged
    value).  Only valid for a raw successor against the very state its
    Ctx was built from; unrelated states share no slot objects.
    """
    dirty_globals = [index for index, (a, b)
                     in enumerate(zip(parent.globals_, successor.globals_))
                     if a is not b]
    dirty_procs = [index for index, (a, b)
                   in enumerate(zip(parent.procs, successor.procs))
                   if a is not b]
    return dirty_globals, dirty_procs


class Ctx:
    """Mutable view of one state, passed to step functions.

    Reads and writes go through :meth:`get`/:meth:`set` (globals) and
    :meth:`lget`/:meth:`lset` (locals of the executing process).  The
    step runs atomically: all mutations appear in the successor state.
    """

    def __init__(self, spec: "Spec", state: State, proc_index: int,
                 oracle: Sequence[int]):
        self.spec = spec
        self.proc_index = proc_index
        self._globals = list(state.globals_)
        pc, locals_ = state.procs[proc_index]
        self._locals = list(locals_)
        self._pc = pc
        self._state = state
        self._procs = list(state.procs)
        self._oracle = list(oracle)
        self._used = 0
        self._next_pc: Optional[str] = None
        self._jumped = False

    # -- variables ---------------------------------------------------------------
    def get(self, name: str) -> Any:
        """Read a global variable."""
        return self._globals[self.spec.global_index[name]]

    def set(self, name: str, value: Any) -> None:
        """Write a global variable."""
        self._globals[self.spec.global_index[name]] = value

    def lget(self, name: str) -> Any:
        """Read a local variable of the executing process."""
        process = self.spec.processes[self.proc_index]
        return self._locals[process.local_index[name]]

    def lset(self, name: str, value: Any) -> None:
        """Write a local variable of the executing process."""
        process = self.spec.processes[self.proc_index]
        self._locals[process.local_index[name]] = value

    def peer_pc(self, process_name: str) -> Optional[str]:
        """The pc of another process (for modeling shared knowledge)."""
        index = self.spec.process_index[process_name]
        return self._procs[index][0]

    def reset_peer(self, process_name: str, pc: Optional[str] = None) -> None:
        """Crash another process: wipe its locals, restart at ``pc``.

        Models the paper's component-failure semantics: the failed
        component loses all of its (local) state and restarts at its
        recovery label (or its start label when ``pc`` is omitted).
        """
        index = self.spec.process_index[process_name]
        process = self.spec.processes[index]
        fresh_locals = tuple(process.locals_[k] for k in process.locals_)
        target_pc = pc if pc is not None else process.start
        if index == self.proc_index:
            # Self-crash: the successor rebuilds this process's slot
            # from ``_locals``/``_next_pc``, so writing ``_procs`` here
            # would be silently overwritten — reset those directly.
            self._locals = list(fresh_locals)
            self._next_pc = target_pc
            self._jumped = True
            return
        self._procs[index] = (target_pc, fresh_locals)

    # -- control flow ----------------------------------------------------------------
    def goto(self, label: str) -> None:
        """Jump to ``label`` after this step."""
        self._next_pc = label
        self._jumped = True

    def done(self) -> None:
        """Terminate this process."""
        self._next_pc = None
        self._jumped = True

    def block_unless(self, condition: bool) -> None:
        """The PlusCal ``await``: abort the step if not ``condition``."""
        if not condition:
            raise Blocked()

    # -- nondeterminism --------------------------------------------------------------
    def choose(self, arity: int) -> int:
        """Nondeterministic choice among ``arity`` alternatives.

        The checker re-executes the step once per alternative, so every
        branch is explored.
        """
        if arity <= 0:
            raise Blocked()
        if self._used < len(self._oracle):
            value = self._oracle[self._used]
            self._used += 1
            return value
        raise NeedChoice(arity)

    def choose_from(self, items: Sequence) -> Any:
        """Choose one element of a non-empty sequence."""
        return items[self.choose(len(items))]

    def maybe(self) -> bool:
        """Binary nondeterministic choice."""
        return self.choose(2) == 1

    # -- effect hooks ----------------------------------------------------------------
    def _on_queue_op(self, kind: str, queue: str) -> None:
        """Hook: a queue macro touched ``queue``.

        No-op here; :class:`repro.analysis.effects.EffectCtx` overrides
        it to record per-step queue disciplines for the static analyzer.
        """

    def _macro_get(self, queue: str) -> Any:
        """``get`` on behalf of a queue macro.

        Plain delegation here; :class:`EffectCtx` overrides it so
        recorders can tell macro-internal queue-global accesses apart
        from raw ones (the race detector exempts only the former).
        """
        return self.get(queue)

    def _macro_set(self, queue: str, value: Any) -> None:
        """``set`` on behalf of a queue macro (see :meth:`_macro_get`)."""
        self.set(queue, value)

    # -- result assembly ----------------------------------------------------------------
    def _successor(self, default_next: Optional[str]) -> State:
        pc = self._next_pc if self._jumped else default_next
        procs = list(self._procs)
        procs[self.proc_index] = (pc, tuple(self._locals))
        return State(tuple(self._globals), tuple(procs))


@dataclass
class Step:
    """One labeled atomic step."""

    label: str
    run: Callable[[Ctx], None]
    #: Steps touching only the process's own locals commute with every
    #: step of every other process — the partial-order-reduction hint.
    local: bool = False


class SpecProcess:
    """A PlusCal process: local variables plus labeled atomic steps."""

    def __init__(self, name: str, steps: Sequence[Step],
                 locals_: Optional[dict[str, Any]] = None,
                 fair: bool = True,
                 daemon: bool = False,
                 start: Optional[str] = None):
        if not steps:
            raise ValueError(f"process {name} has no steps")
        self.name = name
        self.steps = list(steps)
        self.step_by_label = {step.label: step for step in self.steps}
        if len(self.step_by_label) != len(self.steps):
            raise ValueError(f"duplicate labels in process {name}")
        self.locals_ = dict(locals_ or {})
        self.local_index = {k: i for i, k in enumerate(self.locals_)}
        self.fair = fair
        #: Daemon processes may idle forever waiting for input; a state
        #: where only daemons remain (blocked) is not a deadlock.
        self.daemon = daemon
        self.start = start if start is not None else self.steps[0].label
        self._next_label = {}
        for i, step in enumerate(self.steps):
            nxt = self.steps[i + 1].label if i + 1 < len(self.steps) else None
            self._next_label[step.label] = nxt

    def default_next(self, label: str) -> Optional[str]:
        """The label following ``label`` in program order."""
        return self._next_label[label]


class Spec:
    """A complete specification: processes + properties."""

    def __init__(self, name: str,
                 globals_: dict[str, Any],
                 processes: Sequence[SpecProcess],
                 invariants: Optional[dict[str, Callable[["SpecView"], bool]]] = None,
                 eventually_always: Optional[dict[str, Callable[["SpecView"], bool]]] = None,
                 symmetry: Optional[Callable[[State], State]] = None,
                 ack_queues: Optional[Iterable[str]] = None):
        self.name = name
        self.global_names = list(globals_)
        self.global_index = {k: i for i, k in enumerate(self.global_names)}
        self.initial_globals = tuple(globals_[k] for k in self.global_names)
        self.processes = list(processes)
        self.process_index = {p.name: i for i, p in enumerate(self.processes)}
        if len(self.process_index) != len(self.processes):
            raise ValueError("duplicate process names")
        #: Safety: must hold in every reachable state.
        self.invariants = dict(invariants or {})
        #: Liveness ◇□P: must hold throughout every terminal SCC.
        self.eventually_always = dict(eventually_always or {})
        #: Optional state canonicalization (symmetry reduction).
        self.symmetry = symmetry
        #: Queues declared to follow the peek/pop (ack) discipline —
        #: the contract behind properties P1/P3.  The static analyzer
        #: enforces it; queues observed under ``ack_read`` are treated
        #: as ack queues even without a declaration.
        self.ack_queues = frozenset(ack_queues or ())

    def initial_state(self) -> State:
        """The unique initial state."""
        procs = tuple(
            (process.start, tuple(process.locals_[k] for k in process.locals_))
            for process in self.processes
        )
        return State(self.initial_globals, procs)

    def view(self, state: State) -> "SpecView":
        """A read-only accessor for property evaluation."""
        return SpecView(self, state)


class SpecView:
    """Read-only access to a state's variables (for properties)."""

    def __init__(self, spec: Spec, state: State):
        self.spec = spec
        self.state = state

    def __getitem__(self, name: str) -> Any:
        return self.state.globals_[self.spec.global_index[name]]

    def local(self, process: str, name: str) -> Any:
        """A process-local variable's value."""
        index = self.spec.process_index[process]
        proc = self.spec.processes[index]
        return self.state.procs[index][1][proc.local_index[name]]

    def pc(self, process: str) -> Optional[str]:
        """A process's program counter (None = terminated)."""
        return self.state.procs[self.spec.process_index[process]][0]


# -- queue helpers (FIFOPut / FIFOGet / peek-pop macros) -----------------------
def fifo_put(ctx: Ctx, queue: str, item: Any) -> None:
    """Append ``item`` to the tuple-valued global ``queue``."""
    ctx._on_queue_op("fifo_put", queue)
    ctx._macro_set(queue, ctx._macro_get(queue) + (item,))


def fifo_get(ctx: Ctx, queue: str) -> Any:
    """Destructively dequeue; blocks (awaits) when empty."""
    ctx._on_queue_op("fifo_get", queue)
    value = ctx._macro_get(queue)
    ctx.block_unless(len(value) > 0)
    ctx._macro_set(queue, value[1:])
    return value[0]


def ack_read(ctx: Ctx, queue: str) -> Any:
    """Peek the head without removing it (AckQueueRead of Listing 3)."""
    ctx._on_queue_op("ack_read", queue)
    value = ctx._macro_get(queue)
    ctx.block_unless(len(value) > 0)
    return value[0]


def ack_pop(ctx: Ctx, queue: str) -> None:
    """Remove the head previously peeked (AckQueuePop of Listing 3).

    Popping an empty queue is a discipline violation — it means no
    preceding peek claimed the head this pop balances — and raises
    instead of silently doing nothing (which masked pop-without-peek
    bugs the static analyzer now also catches).
    """
    ctx._on_queue_op("ack_pop", queue)
    value = ctx._macro_get(queue)
    if not value:
        raise QueueDisciplineError(
            f"ack_pop on empty queue {queue!r}: no peeked head to remove "
            "(pop-without-peek)")
    ctx._macro_set(queue, value[1:])
