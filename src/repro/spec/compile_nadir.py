"""NADIR AST → specialized fill closures (the compiled engine's codegen tier).

:class:`~repro.spec.compile._LabelEntry` normally *learns* a label by
running it once under a read-recording ``Ctx`` (the memo tier).  When
the spec was built by :func:`repro.nadir.interp.program_to_spec` it
carries the annotated :class:`~repro.nadir.ast_nodes.Program` — the
same AST :mod:`repro.analysis.deps` walks for footprints — and each
labeled block can instead be translated once into a straight-line
Python function over the flat slot vector:

* guard tests (``await``, empty-queue blocks) come first on their
  paths and abort with ``blocked`` before any write is published;
* every read is a direct ``values[vec[slot]]`` load and every write a
  local variable assignment — no ``Ctx``, no name→index dict lookups;
* the queue macros (FIFOPut/FIFOGet and the peek/pop ack discipline of
  Listing 3) are inlined as tuple slicing, including the
  pop-without-peek :class:`~repro.spec.lang.QueueDisciplineError`;
* primitives and helpers call the *same* callables the interpreter
  uses (``_PRIMS`` entries, ``Program.helpers`` functions), so value
  semantics — including the eager, non-short-circuiting ``and``/``or``
  the interpreter implements — cannot drift.

The generated function's read set is the static all-paths footprint of
the block (reads ∪ writes: a slot assigned on one branch is re-emitted
from its parent value on the other, so it must be loaded), which means
the memo key is complete up front and never grows.  Write masks are
the static assigned-slot superset — sound for delta reuse and
invariant skipping exactly like the interp tier's assigned ⊇ changed
over-approximation, and byte-identical in every ``to_json`` field.

Anything outside this vocabulary — an unknown statement or primitive,
a helper the program does not define, a label the process does not
declare — makes :func:`compile_label` return ``None`` and the label
stays on the memo tier: degraded coverage, never a miscompile.
"""

from __future__ import annotations

from typing import Optional

from ..nadir.ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LocalVar,
    Prim,
    SetGlobal,
    SetLocal,
    SkipStmt,
    _PRIMS,
)
from .lang import FrozenRecord, QueueDisciplineError

__all__ = ["compile_label"]


class _Unsupported(Exception):
    """The block uses vocabulary the generator does not cover."""


class _Emitter:
    """Accumulates generated lines plus the slots they read and write."""

    def __init__(self, cs, proc_index: int, program):
        self.cs = cs
        self.proc_index = proc_index
        self.program = program
        self.local_index = cs.spec.processes[proc_index].local_index
        self.lines: list[str] = []
        self.reads: set[int] = set()
        self.writes: set[int] = set()
        self.consts: list = []

    # -- slot resolution -----------------------------------------------------
    def global_slot(self, name: str) -> int:
        slot = self.cs.global_slot.get(name)
        if slot is None:
            raise _Unsupported(f"unknown global {name!r}")
        return slot

    def local_slot(self, name: str) -> int:
        index = self.local_index.get(name)
        if index is None:
            raise _Unsupported(f"unknown local {name!r}")
        return self.cs.local_slots[self.proc_index][index]

    def _const(self, value) -> str:
        if isinstance(value, (bool, int, str, type(None))):
            return repr(value)
        self.consts.append(value)
        return f"C[{len(self.consts) - 1}]"

    # -- expressions ---------------------------------------------------------
    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return self._const(node.value)
        if isinstance(node, Global):
            slot = self.global_slot(node.name)
            self.reads.add(slot)
            return f"g{slot}"
        if isinstance(node, LocalVar):
            slot = self.local_slot(node.name)
            self.reads.add(slot)
            return f"g{slot}"
        if isinstance(node, Prim):
            if node.op not in _PRIMS:
                raise _Unsupported(f"unknown primitive {node.op!r}")
            args = ", ".join(self.expr(a) for a in node.args)
            call = f"P[{node.op!r}]({args})"
            if node.op in ("record", "set_field"):
                # States must be hashable: structs become frozen
                # records, exactly as the interpreter wraps them.
                return f"FR({call})"
            return call
        if isinstance(node, HelperCall):
            if node.name not in self.program.helpers:
                raise _Unsupported(f"unknown helper {node.name!r}")
            args = ", ".join(self.expr(a) for a in node.args)
            return f"H[{node.name!r}]({args})"
        raise _Unsupported(f"unknown expression {type(node).__name__}")

    # -- statements ----------------------------------------------------------
    def emit(self, stmt, indent: str) -> None:
        if isinstance(stmt, SkipStmt):
            self.lines.append(f"{indent}pass")
            return
        if isinstance(stmt, CallStmt):
            self.lines.append(f"{indent}{self.expr(stmt.call)}")
            return
        if isinstance(stmt, SetGlobal):
            value = self.expr(stmt.value)
            slot = self.global_slot(stmt.name)
            self.reads.add(slot)  # re-emitted on non-assigning paths
            self.writes.add(slot)
            self.lines.append(f"{indent}g{slot} = {value}")
            return
        if isinstance(stmt, SetLocal):
            value = self.expr(stmt.value)
            slot = self.local_slot(stmt.name)
            self.reads.add(slot)
            self.writes.add(slot)
            self.lines.append(f"{indent}g{slot} = {value}")
            return
        if isinstance(stmt, FifoGetStmt):
            q = self.global_slot(stmt.queue)
            t = self.local_slot(stmt.target)
            self.reads.update((q, t))
            self.writes.update((q, t))
            self.lines.append(f"{indent}if not g{q}: return True")
            self.lines.append(f"{indent}g{t} = g{q}[0]")
            self.lines.append(f"{indent}g{q} = g{q}[1:]")
            return
        if isinstance(stmt, FifoPutStmt):
            value = self.expr(stmt.value)
            q = self.global_slot(stmt.queue)
            self.reads.add(q)
            self.writes.add(q)
            self.lines.append(f"{indent}g{q} = g{q} + ({value},)")
            return
        if isinstance(stmt, AckReadStmt):
            q = self.global_slot(stmt.queue)
            t = self.local_slot(stmt.target)
            self.reads.update((q, t))
            self.writes.add(t)
            self.lines.append(f"{indent}if not g{q}: return True")
            self.lines.append(f"{indent}g{t} = g{q}[0]")
            return
        if isinstance(stmt, AckPopStmt):
            q = self.global_slot(stmt.queue)
            self.reads.add(q)
            self.writes.add(q)
            message = (f"ack_pop on empty queue {stmt.queue!r}: no peeked "
                       "head to remove (pop-without-peek)")
            self.lines.append(f"{indent}if not g{q}: raise QDE({message!r})")
            self.lines.append(f"{indent}g{q} = g{q}[1:]")
            return
        if isinstance(stmt, AwaitStmt):
            self.lines.append(
                f"{indent}if not ({self.expr(stmt.condition)}): return True")
            return
        if isinstance(stmt, IfStmt):
            self.lines.append(f"{indent}if {self.expr(stmt.condition)}:")
            self._branch(stmt.then, indent + "    ")
            if stmt.orelse:
                self.lines.append(f"{indent}else:")
                self._branch(stmt.orelse, indent + "    ")
            return
        if isinstance(stmt, GotoStmt):
            self.lines.append(f"{indent}_npc = {stmt.label!r}")
            return
        if isinstance(stmt, DoneStmt):
            self.lines.append(f"{indent}_npc = None")
            return
        raise _Unsupported(f"unknown statement {type(stmt).__name__}")

    def _branch(self, body, indent: str) -> None:
        if not body:
            self.lines.append(f"{indent}pass")
            return
        for inner in body:
            self.emit(inner, indent)


def _find_block(cs, entry, program):
    for definition in program.processes:
        if definition.name != entry.process.name:
            continue
        for block in definition.blocks:
            if block.label == entry.label:
                return block
    return None


def compile_label(cs, entry, program) -> Optional[tuple]:
    """Translate one labeled block into a fill executor.

    Returns ``(fn, read_slots)`` where ``fn(cs, vec, state, succs)``
    appends at most one ``(writes, wmask)`` pair (NADIR blocks are
    deterministic — no ``choose``) and returns True iff the step
    blocked, or ``None`` when the block is outside the supported
    vocabulary (the caller keeps the memo tier).
    """
    block = _find_block(cs, entry, program)
    if block is None:
        return None
    emitter = _Emitter(cs, entry.proc_index, program)
    try:
        for stmt in block.body:
            emitter.emit(stmt, "        ")
    except _Unsupported:
        return None

    pc_slot = cs.pc_slots[entry.proc_index]
    write_slots = sorted(emitter.writes | {pc_slot})
    wmask = 0
    for slot in write_slots:
        wmask |= 1 << slot
    read_slots = (emitter.reads | emitter.writes) - {pc_slot}

    lines = ["def _make(cs, C, H, P, FR, QDE):",
             "    values = cs._values",
             "    def _step(_cs, vec, state, succs):",
             "        intern = cs.intern"]
    for slot in sorted(read_slots):
        lines.append(f"        g{slot} = values[vec[{slot}]]")
    lines.append(f"        _npc = {entry.default_next!r}")
    lines.extend(emitter.lines)
    pairs = ", ".join(
        f"({slot}, intern(_npc))" if slot == pc_slot
        else f"({slot}, intern(g{slot}))"
        for slot in write_slots)
    lines.append(f"        succs.append((({pairs},), {wmask}))")
    lines.append("        return False")
    lines.append("    return _step")
    namespace: dict = {}
    exec(compile("\n".join(lines),                      # noqa: S102
                 f"<nadir-codegen {entry.action}>", "exec"), namespace)
    helpers = {name: fn for name, (_p, _s, fn) in program.helpers.items()}
    fn = namespace["_make"](cs, tuple(emitter.consts), helpers, _PRIMS,
                            FrozenRecord, QueueDisciplineError)
    return fn, read_slots
