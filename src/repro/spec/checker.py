"""Explicit-state model checker (the TLC analog).

Breadth-first exploration of a :class:`~repro.spec.lang.Spec`'s state
space with:

* **safety** — every invariant evaluated on every distinct state; a
  violation yields a counterexample trace (the shortest path from the
  initial state, as TLC produces);
* **liveness** — ◇□P properties checked by requiring every *terminal*
  strongly connected component of the reachable graph to satisfy P in
  all of its states (sound for weakly fair schedulers on finite models
  whose failure processes are budget-bounded, as the paper's are);
* **deadlock** — states with no enabled step where not all processes
  have terminated.

The three scaling techniques of §3.7 are implemented exactly as
described and are individually switchable for the Table 4 ablation:

* **symmetry reduction** — states are canonicalized by the spec's
  symmetry function before deduplication;
* **partial-order reduction** — when some process's next step is
  declared *local* (commutes with everything), only the first such
  process is expanded (an ample set of size one);
* **compositional abstraction** — not a checker switch but a spec
  construction switch: specs offer abstract over-approximations of
  components (e.g. AbstractSW) that collapse internal detail.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs.prof import CheckerTraceBuilder, CheckProfiler, Progress
from .fingerprint import fingerprint_state
from .lang import Blocked, Ctx, NeedChoice, Spec, State

__all__ = ["CheckResult", "Violation", "ModelChecker", "check",
           "UnsoundPORHintError", "resolve_auto_workers",
           "AUTO_WORKERS_MIN_CPUS", "AUTO_WORKERS"]

#: ``workers="auto"``: below this core count the parallel engine is a
#: slowdown (BENCH_checker.json records 0.21x on a 1-CPU host — the
#: workers timeshare one core and pay spawn + routing on top), so auto
#: picks the serial engine; at or above it, this many workers.
AUTO_WORKERS_MIN_CPUS = 4
AUTO_WORKERS = 4


def resolve_auto_workers(cpus: Optional[int] = None,
                         has_spec_source: bool = True) -> Optional[int]:
    """The worker count ``workers="auto"`` resolves to (None = serial).

    Serial on hosts below :data:`AUTO_WORKERS_MIN_CPUS` cores, or when
    no ``spec_source`` was provided (worker processes cannot rebuild
    the spec without one); :data:`AUTO_WORKERS` workers otherwise.
    """
    if cpus is None:
        cpus = os.cpu_count() or 1
    if cpus < AUTO_WORKERS_MIN_CPUS or not has_spec_source:
        return None
    return AUTO_WORKERS


class UnsoundPORHintError(Exception):
    """A ``Step.local=True`` ample-set hint contradicts the step's effects.

    POR with an unsound hint silently removes interleavings and can
    certify buggy specs, so the checker refuses to explore rather than
    return an untrustworthy verdict.  Carries the analyzer findings.
    """

    def __init__(self, findings):
        self.findings = list(findings)
        sites = ", ".join(f.site for f in self.findings)
        super().__init__(
            f"unsound local=True ample-set hint(s) at {sites}; "
            "run `zenith-repro lint` for details, or pass por=False")


@dataclass
class Violation:
    """A property violation with its counterexample trace."""

    kind: str          # "invariant" | "liveness" | "deadlock"
    property_name: str
    trace: list[tuple[str, State]]  # (action label, state) pairs

    @property
    def length(self) -> int:
        """Number of steps in the counterexample."""
        return len(self.trace)

    def describe(self) -> str:
        """Human-readable counterexample."""
        lines = [f"{self.kind} violation of {self.property_name!r} "
                 f"({self.length} steps):"]
        for index, (action, _state) in enumerate(self.trace):
            lines.append(f"  {index:3d}. {action}")
        return "\n".join(lines)

    def to_json_obj(self) -> dict:
        """Canonical JSON form (states as stable 64-bit fingerprints)."""
        return {
            "kind": self.kind,
            "property": self.property_name,
            "length": self.length,
            "trace": [{"action": action,
                       "state": f"{fingerprint_state(state):016x}"}
                      for action, state in self.trace],
        }


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    ok: bool
    distinct_states: int
    transitions: int
    diameter: int
    elapsed: float
    violations: list[Violation] = field(default_factory=list)
    #: Engine-specific extras (worker count, spawn/explore split, dedup
    #: hit rate).  Wall-clock and machine facts only — deliberately
    #: excluded from :meth:`to_json`.
    stats: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line TLC-style summary."""
        status = "OK" if self.ok else "VIOLATION"
        return (f"{status}: {self.distinct_states} distinct states, "
                f"{self.transitions} transitions, diameter {self.diameter}, "
                f"{self.elapsed:.3f}s")

    def to_json(self) -> str:
        """Canonical serialization of the *deterministic* outcome.

        Contains everything that is a pure function of (spec, checker
        options) — verdict, counts, diameter, violations with their
        traces as stable state fingerprints — and nothing that varies
        between runs (elapsed time, worker placement).  Two runs of the
        same configuration must produce byte-identical output; the
        differential suite enforces this across worker counts.
        """
        doc = {
            "ok": self.ok,
            "distinct_states": self.distinct_states,
            "transitions": self.transitions,
            "diameter": self.diameter,
            "violations": [v.to_json_obj() for v in self.violations],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class ModelChecker:
    """Explores a spec's state space.

    ``workers=None`` (the default) runs the single-process BFS below.
    ``workers=N`` for N >= 1 runs the TLC-style parallel engine of
    :mod:`repro.spec.parallel`: spawned worker processes own fingerprint
    shards and exchange discovered states in batches; it requires
    ``spec_source`` (a picklable :class:`~repro.spec.parallel.SpecSource`)
    so each worker can rebuild the spec, and accepts
    ``exact_fingerprints=True`` to detect hash collisions on small
    specs.  ``registry`` (a :class:`repro.obs.MetricsRegistry`) receives
    frontier-depth / states-per-second / per-shard dedup gauges.
    """

    def __init__(self, spec: Spec, symmetry: bool = True, por: bool = True,
                 max_states: int = 2_000_000,
                 stop_at_first_violation: bool = True,
                 check_deadlock: bool = True,
                 validate_por_hints: bool = True,
                 workers=None,
                 spec_source=None,
                 exact_fingerprints: bool = False,
                 registry=None,
                 por_deps: bool = False,
                 fingerprint_mode: Optional[str] = None,
                 profile: bool = False,
                 progress=None,
                 trace_out: Optional[str] = None,
                 compiled: bool = False,
                 store_dir: Optional[str] = None,
                 uncompiled_labels=()):
        self.spec = spec
        self.use_symmetry = symmetry and spec.symmetry is not None
        self.use_por = por
        self.max_states = max_states
        self.stop_at_first = stop_at_first_violation
        self.check_deadlock = check_deadlock
        self.validate_por_hints = validate_por_hints
        self.workers_requested = workers
        self.auto_host_cpus: Optional[int] = None
        if workers == "auto":
            self.auto_host_cpus = os.cpu_count() or 1
            workers = resolve_auto_workers(
                self.auto_host_cpus, has_spec_source=spec_source is not None)
        elif workers is not None and (not isinstance(workers, int)
                                      or isinstance(workers, bool)
                                      or workers < 1):
            raise ValueError(
                "workers must be >= 1, 'auto', or None for serial")
        self.workers = workers
        self.spec_source = spec_source
        self.exact_fingerprints = exact_fingerprints
        self.registry = registry
        #: Derive ample sets from footprint independence
        #: (repro.analysis.deps) instead of only Step.local hints.
        self.use_por_deps = por_deps
        self._deps_ample_keys = None
        if fingerprint_mode not in (None, "full", "incremental"):
            raise ValueError(
                "fingerprint_mode must be None, 'full' or 'incremental'")
        if fingerprint_mode is not None and self.workers is not None:
            raise ValueError(
                "fingerprint_mode is a serial-engine option; the parallel "
                "engine already dedupes through its sharded fingerprint "
                "store (drop workers=N)")
        if fingerprint_mode is not None and exact_fingerprints:
            raise ValueError(
                "exact_fingerprints keeps full canonical encodings, which "
                "defeats fingerprint_mode; use the default engine for "
                "exact collision detection")
        self.fingerprint_mode = fingerprint_mode
        #: Compiled-step execution (repro.spec.compile): per-label
        #: closures over flat interned state vectors.  Serially it runs
        #: :func:`repro.spec.compile.run_compiled`; with workers each
        #: worker swaps its ``_successors`` for a CompiledStepper.
        self.compiled = bool(compiled)
        #: ``"process.label"`` names forced back to per-visit
        #: interpretation inside the compiled engine (fallback lever).
        self.uncompiled_labels = tuple(uncompiled_labels)
        if self.compiled and fingerprint_mode is not None:
            raise ValueError(
                "compiled and fingerprint_mode are alternative serial "
                "engines; pick one (the compiled engine dedups exact "
                "interned vectors, not fingerprints)")
        if self.compiled and profile and workers is not None:
            raise ValueError(
                "profile the compiled engine serially: compiled workers "
                "run an uninstrumented stepper (drop workers=N or "
                "profile=True)")
        #: Directory for the fingerprint store's mmap spill tier
        #: (parallel/swarm engines only — the serial engines keep
        #: states, not fingerprints, as their seen-set).
        if store_dir is not None and self.workers is None:
            raise ValueError(
                "store_dir spills the sharded fingerprint store, which "
                "only the parallel engine (workers=N) and the swarm "
                "driver use; serial engines dedup in memory")
        if store_dir is not None and exact_fingerprints:
            raise ValueError(
                "exact_fingerprints keeps full canonical payloads, which "
                "do not fit the spill tier's fixed-width slots; drop "
                "--exact or --store-dir")
        self.store_dir = store_dir
        #: Phase/label profiling (repro.obs.prof).  All timing lands in
        #: ``CheckResult.stats["profile"]`` — never in ``to_json`` — so
        #: profiled runs stay byte-identical to unprofiled ones.
        self.profile = bool(profile)
        self.profiler = CheckProfiler() if self.profile else None
        if progress is True:
            progress = Progress(label=getattr(spec, "name", "check"))
        self.progress = progress or None
        self.trace_out = trace_out

    # -- successor computation ---------------------------------------------------
    def _expand_step(self, state: State, proc_index: int) -> list[tuple[str, State]]:
        """All successors of running one process's current step."""
        process = self.spec.processes[proc_index]
        pc = state.procs[proc_index][0]
        if pc is None:
            return []
        step = process.step_by_label[pc]
        default_next = process.default_next(pc)
        successors = []
        stack: list[list[int]] = [[]]
        while stack:
            oracle = stack.pop()
            ctx = Ctx(self.spec, state, proc_index, oracle)
            try:
                step.run(ctx)
            except Blocked:
                continue
            except NeedChoice as need:
                for i in range(need.arity):
                    stack.append(oracle + [i])
                continue
            successors.append((f"{process.name}.{pc}",
                               ctx._successor(default_next)))
        return successors

    def _deps_ample(self) -> frozenset:
        """(process, label) keys expandable alone, from footprints.

        The footprint-derived ample labels unioned with the (validated)
        ``Step.local=True`` hints: a sound footprint proves a label
        independent of everything else from first principles, and an
        unsound one simply defers to the hint — so deps-POR reduces at
        least as much as hint-POR and never trusts unproven absence.
        Computed once per checker from the spec alone (a pure function
        of the spec), so parallel workers all derive the same set and
        the ample choice stays worker-count independent.
        """
        if self._deps_ample_keys is None:
            # Local import: repro.analysis drives Ctx/Spec (circular at
            # module level), same as _reject_unsound_hints.
            from ..analysis.deps import spec_footprints

            hinted = {(process.name, step.label)
                      for process in self.spec.processes
                      for step in process.steps if step.local}
            derived = spec_footprints(self.spec).ample_labels()
            self._deps_ample_keys = frozenset(derived | hinted)
        return self._deps_ample_keys

    _compiled_stepper = None

    def _successors(self, state: State) -> list[tuple[str, State]]:
        """Successors under the (optionally ample-set reduced) relation."""
        if self.compiled and self.profiler is None:
            # Parallel workers call this entry point directly; under
            # --compiled they step through the per-label closure tables
            # (state-boundary adapter, byte-identical successor lists).
            stepper = self._compiled_stepper
            if stepper is None:
                from .compile import CompiledStepper

                stepper = self._compiled_stepper = CompiledStepper(
                    self.spec, use_por=self.use_por,
                    ample_keys=(self._deps_ample()
                                if self.use_por_deps else None),
                    uncompiled_labels=self.uncompiled_labels)
            return stepper.successors(state)
        if self.profiler is not None:
            return self._successors_profiled(state)
        if self.use_por:
            # Ample set: a process whose current step is declared local
            # commutes with every other step; expanding it alone is a
            # sound reduction (it is also deterministic & non-blocking
            # by convention, preserving enabledness elsewhere).  With
            # por_deps the same property is derived from footprint
            # independence instead of trusted from the hint.
            ample = self._deps_ample() if self.use_por_deps else None
            for proc_index, process in enumerate(self.spec.processes):
                pc = state.procs[proc_index][0]
                if pc is None:
                    continue
                if ample is None:
                    is_ample = process.step_by_label[pc].local
                else:
                    is_ample = (process.name, pc) in ample
                if is_ample:
                    expanded = self._expand_step(state, proc_index)
                    if expanded:
                        return expanded
        result = []
        for proc_index in range(len(self.spec.processes)):
            result.extend(self._expand_step(state, proc_index))
        return result

    def _successors_profiled(self, state: State) -> list[tuple[str, State]]:
        """:meth:`_successors` with phase/label timing.

        Identical exploration semantics.  Timestamps are *chained* —
        each ``perf_counter`` read closes one region and opens the next
        — so the profiler's own bookkeeping cost is attributed to a
        phase instead of leaking out of the breakdown (which is what
        lets the phase sum cover ≥90% of exploration wall time).  The
        ample-eligibility scan is charged to ``por_ample``; each
        ``_expand_step`` (plus its label bookkeeping) to its (process,
        label) pair, which also feeds the ``successor_gen`` phase.
        """
        prof = self.profiler
        phase_s = prof.phase_s
        phase_calls = prof.phase_calls
        labels = prof.labels
        perf = time.perf_counter
        procs = self.spec.processes
        t = perf()
        if self.use_por:
            ample = self._deps_ample() if self.use_por_deps else None
            for proc_index, process in enumerate(procs):
                pc = state.procs[proc_index][0]
                if pc is None:
                    continue
                if ample is None:
                    is_ample = process.step_by_label[pc].local
                else:
                    is_ample = (process.name, pc) in ample
                if is_ample:
                    now = perf()
                    phase_s["por_ample"] += now - t
                    phase_calls["por_ample"] += 1
                    t = now
                    expanded = self._expand_step(state, proc_index)
                    now = perf()
                    dt = now - t
                    t = now
                    entry = labels.get((process.name, pc))
                    if entry is None:
                        entry = labels[(process.name, pc)] = [0, 0, 0.0]
                    entry[0] += 1
                    entry[1] += len(expanded)
                    entry[2] += dt
                    phase_s["successor_gen"] += dt
                    phase_calls["successor_gen"] += 1
                    if expanded:
                        return expanded
            now = perf()
            phase_s["por_ample"] += now - t
            phase_calls["por_ample"] += 1
            t = now
        result = []
        for proc_index, process in enumerate(procs):
            pc = state.procs[proc_index][0]
            if pc is None:
                continue
            expanded = self._expand_step(state, proc_index)
            now = perf()
            dt = now - t
            t = now
            entry = labels.get((process.name, pc))
            if entry is None:
                entry = labels[(process.name, pc)] = [0, 0, 0.0]
            entry[0] += 1
            entry[1] += len(expanded)
            entry[2] += dt
            phase_s["successor_gen"] += dt
            phase_calls["successor_gen"] += 1
            result.extend(expanded)
        return result

    def _profile_options(self) -> dict:
        """The deterministic option fields of the profile artifact."""
        return {
            "symmetry": self.use_symmetry,
            "por": self.use_por,
            "por_deps": self.use_por_deps,
            "fingerprint_mode": self.fingerprint_mode,
            "exact_fingerprints": self.exact_fingerprints,
        }

    def _profile_artifact(self, prof: CheckProfiler, engine: str,
                          total_s: float, exploration_s: float, counts: dict,
                          workers=None, busy_s=None) -> dict:
        """The ``repro.prof/v1`` document for ``stats["profile"]``."""
        return prof.artifact(
            spec=getattr(self.spec, "name", "spec"), engine=engine,
            workers=workers, options=self._profile_options(),
            total_s=total_s, exploration_s=exploration_s, busy_s=busy_s,
            counts=counts)

    def _progress_round(self, bfs_round: int, n_states: int,
                        frontier_len: int, prev_len: int, transitions: int,
                        start_time: float) -> None:
        """One heartbeat line per BFS round (stderr only).

        The ETA assumes geometric frontier decay once the frontier
        shrinks round-over-round (sum of the remaining geometric series
        over the current states/s); while the frontier still grows no
        honest estimate exists and the field is omitted.
        """
        elapsed = time.perf_counter() - start_time
        rate = n_states / elapsed if elapsed > 0 else 0.0
        hit = 1.0 - n_states / transitions if transitions else 0.0
        eta = None
        if rate > 0 and 0 < frontier_len < prev_len:
            ratio = frontier_len / prev_len
            eta = frontier_len / (1.0 - ratio) / rate
        self.progress.update(round=bfs_round, states=n_states,
                             frontier=frontier_len,
                             states_per_s=round(rate, 1),
                             dedup_hit=round(hit, 3), eta_s=eta)

    def _canonical(self, state: State) -> State:
        if self.use_symmetry:
            return self.spec.symmetry(state)
        return state

    # -- main loop ---------------------------------------------------------------
    def _reject_unsound_hints(self) -> None:
        """Validate ample-set hints before trusting them (speclint)."""
        # Local import: repro.analysis drives Ctx/Spec, so importing it
        # at module level would be circular.
        from ..analysis import verify_por_hints

        findings = verify_por_hints(self.spec)
        if findings:
            raise UnsoundPORHintError(findings)

    def run(self) -> CheckResult:
        """Explore the full reachable state space and check properties."""
        if self.workers is not None:
            from .parallel import run_parallel

            return run_parallel(self)
        if self.compiled:
            from .compile import run_compiled

            return run_compiled(self)
        if self.fingerprint_mode is not None:
            return self._run_serial_fp()
        start_time = time.perf_counter()
        prof = self.profiler
        perf = time.perf_counter
        tracer = (CheckerTraceBuilder(
                      label=f"check {getattr(self.spec, 'name', 'spec')}")
                  if self.trace_out else None)
        spec = self.spec
        if self.use_por and self.validate_por_hints:
            self._reject_unsound_hints()
        init = self._canonical(spec.initial_state())
        seen: dict[State, int] = {init: 0}
        #: raw successor → canonical index; avoids re-canonicalizing the
        #: same raw state reached along multiple paths.
        raw_memo: dict[State, int] = {}
        states: list[State] = [init]
        parent: list[tuple[int, str]] = [(-1, "<init>")]
        depth: list[int] = [0]
        edges: dict[int, list[int]] = {}
        violations: list[Violation] = []
        diameter = 0
        transitions = 0

        def trace_to(index: int) -> list[tuple[str, State]]:
            path = []
            while index >= 0:
                pred, action = parent[index]
                path.append((action, states[index]))
                index = pred
            return list(reversed(path))

        def check_invariants(index: int) -> bool:
            view = spec.view(states[index])
            for name, predicate in spec.invariants.items():
                if not predicate(view):
                    violations.append(
                        Violation("invariant", name, trace_to(index)))
                    return False
            return True

        if prof is not None:
            _plain_invariants = check_invariants

            def check_invariants(index: int) -> bool:
                t0 = perf()
                ok = _plain_invariants(index)
                prof.add("property_eval", perf() - t0)
                return ok

        explore_t0 = perf()
        if not check_invariants(0) and self.stop_at_first:
            elapsed = time.perf_counter() - start_time
            stats = {"engine": "serial"}
            if prof is not None:
                prof.busy_s = perf() - explore_t0
                stats["profile"] = self._profile_artifact(
                    prof, engine="serial", total_s=elapsed,
                    exploration_s=prof.busy_s,
                    counts={"states": 1, "transitions": 0, "diameter": 0})
            return CheckResult(False, 1, 0, 0, elapsed, violations,
                               stats=stats)

        if prof is not None:
            phase_s = prof.phase_s
            phase_calls = prof.phase_calls
        frontier = [0]
        stop = False
        bfs_round = 0
        while frontier and not stop:
            round_t0 = perf()
            next_frontier = []
            for index in frontier:
                successors = self._successors(states[index])
                edges[index] = []
                if (self.check_deadlock and not successors
                        and any(pc is not None and not process.daemon
                                for process, (pc, _) in zip(
                                    spec.processes, states[index].procs))):
                    violations.append(
                        Violation("deadlock", "no-enabled-step",
                                  trace_to(index)))
                    if self.stop_at_first:
                        stop = True
                        break
                for action, succ in successors:
                    transitions += 1
                    if prof is None:
                        cached = raw_memo.get(succ)
                    else:
                        t0 = perf()
                        cached = raw_memo.get(succ)
                        t1 = perf()
                        phase_s["dedup"] += t1 - t0
                        phase_calls["dedup"] += 1
                    if cached is not None:
                        edges[index].append(cached)
                        continue
                    if prof is None:
                        canon = self._canonical(succ)
                        existing = seen.get(canon)
                    else:
                        canon = self._canonical(succ)
                        t2 = perf()
                        phase_s["canonicalize"] += t2 - t1
                        phase_calls["canonicalize"] += 1
                        existing = seen.get(canon)
                        t3 = perf()
                        phase_s["dedup"] += t3 - t2
                        phase_calls["dedup"] += 1
                    if existing is not None:
                        raw_memo[succ] = existing
                        edges[index].append(existing)
                        continue
                    new_index = len(states)
                    seen[canon] = new_index
                    raw_memo[succ] = new_index
                    states.append(canon)
                    parent.append((index, action))
                    depth.append(depth[index] + 1)
                    diameter = max(diameter, depth[new_index])
                    edges[index].append(new_index)
                    if prof is not None:
                        # Seen-store insertion rides with the lookup:
                        # chained continuation of the dedup region.
                        t4 = perf()
                        phase_s["dedup"] += t4 - t3
                    if not check_invariants(new_index) and self.stop_at_first:
                        stop = True
                        break
                    next_frontier.append(new_index)
                    if len(states) > self.max_states:
                        raise MemoryError(
                            f"state space exceeds {self.max_states} states")
                if stop:
                    break
            prev_len = len(frontier)
            frontier = next_frontier
            bfs_round += 1
            if tracer is not None:
                now = perf() - start_time
                tracer.round_span("serial", bfs_round - 1,
                                  round_t0 - start_time, now,
                                  frontier=prev_len)
                tracer.counter("frontier depth", now,
                               {"states": len(frontier)})
                if transitions:
                    tracer.counter("dedup", now, {
                        "hit_rate": round(1 - len(states) / transitions, 4)})
            if self.progress is not None:
                self._progress_round(bfs_round, len(states), len(frontier),
                                     prev_len, transitions, start_time)

        explore_end = perf()
        if not stop and spec.eventually_always:
            if prof is None:
                violations.extend(
                    self._check_liveness(states, edges, depth, trace_to))
            else:
                t0 = perf()
                violations.extend(
                    self._check_liveness(states, edges, depth, trace_to))
                prof.add("liveness", perf() - t0)

        elapsed = time.perf_counter() - start_time
        stats = {"engine": "serial"}
        self._record_auto_choice(stats)
        if prof is not None:
            exploration_s = explore_end - explore_t0
            prof.busy_s = exploration_s
            stats["profile"] = self._profile_artifact(
                prof, engine="serial", total_s=elapsed,
                exploration_s=exploration_s,
                counts={"states": len(states), "transitions": transitions,
                        "diameter": diameter})
        if tracer is not None:
            tracer.write(self.trace_out)
        if self.progress is not None:
            self.progress.done(states=len(states), transitions=transitions,
                               diameter=diameter,
                               elapsed_s=round(elapsed, 2))
        result = CheckResult(not violations, len(states), transitions,
                             diameter, elapsed, violations, stats=stats)
        if self.registry is not None:
            self._report_metrics(result)
        return result

    def _record_auto_choice(self, stats: dict) -> None:
        """Record what ``workers="auto"`` resolved to (satellite of §3.7).

        The choice is machine-dependent, so it lives in ``stats`` (which
        :meth:`CheckResult.to_json` excludes) rather than the canonical
        outcome.
        """
        if self.workers_requested == "auto":
            stats["workers_requested"] = "auto"
            stats["host_cpus"] = self.auto_host_cpus
            stats["workers"] = self.workers

    def _run_serial_fp(self) -> CheckResult:
        """Serial BFS deduplicating by 64-bit fingerprint only.

        The TLC-style memory regime: ``seen`` maps fingerprint ints to
        state indices instead of keeping every canonical state hashable
        in a dict (and no raw-successor memo — every successor is
        re-fingerprinted, which is exactly the cost the incremental mode
        attacks).  ``fingerprint_mode="full"`` re-encodes the entire
        canonical state per successor; ``"incremental"`` re-digests only
        the slots the step wrote (per :func:`~repro.spec.lang.changed_slots`)
        against the parent's cached digest vector, falling back to a full
        vector when symmetry canonicalization replaced the state.  Both
        produce the same fingerprints as :func:`fingerprint_state`, so
        the :meth:`CheckResult.to_json` outcome is byte-identical to the
        default engine's (the differential tests enforce this).
        """
        from .fingerprint import IncrementalFingerprinter

        start_time = time.perf_counter()
        prof = self.profiler
        perf = time.perf_counter
        tracer = (CheckerTraceBuilder(
                      label=f"check {getattr(self.spec, 'name', 'spec')}")
                  if self.trace_out else None)
        spec = self.spec
        if self.use_por and self.validate_por_hints:
            self._reject_unsound_hints()
        incremental = self.fingerprint_mode == "incremental"
        fper = IncrementalFingerprinter(spec) if incremental else None
        init = self._canonical(spec.initial_state())
        if incremental:
            init_vec = fper.vector(init)
            init_fp = fper.fingerprint(init_vec)
        else:
            init_vec = None
            init_fp = fingerprint_state(init)
        seen: dict[int, int] = {init_fp: 0}
        states: list[State] = [init]
        #: Per-state digest vectors (incremental mode only), parallel to
        #: ``states`` — the cache the update path diffs against.
        vectors: list = [init_vec]
        parent: list[tuple[int, str]] = [(-1, "<init>")]
        depth: list[int] = [0]
        edges: dict[int, list[int]] = {}
        violations: list[Violation] = []
        diameter = 0
        transitions = 0

        def trace_to(index: int) -> list[tuple[str, State]]:
            path = []
            while index >= 0:
                pred, action = parent[index]
                path.append((action, states[index]))
                index = pred
            return list(reversed(path))

        def check_invariants(index: int) -> bool:
            view = spec.view(states[index])
            for name, predicate in spec.invariants.items():
                if not predicate(view):
                    violations.append(
                        Violation("invariant", name, trace_to(index)))
                    return False
            return True

        if prof is not None:
            _plain_invariants = check_invariants

            def check_invariants(index: int) -> bool:
                t0 = perf()
                ok = _plain_invariants(index)
                prof.add("property_eval", perf() - t0)
                return ok

        explore_t0 = perf()
        if not check_invariants(0) and self.stop_at_first:
            elapsed = time.perf_counter() - start_time
            stats = {"engine": "serial",
                     "fingerprint_mode": self.fingerprint_mode}
            if prof is not None:
                prof.busy_s = perf() - explore_t0
                stats["profile"] = self._profile_artifact(
                    prof, engine="serial-fp", total_s=elapsed,
                    exploration_s=prof.busy_s,
                    counts={"states": 1, "transitions": 0, "diameter": 0})
            return CheckResult(False, 1, 0, 0, elapsed, violations,
                               stats=stats)

        if prof is not None:
            phase_s = prof.phase_s
            phase_calls = prof.phase_calls
        frontier = [0]
        stop = False
        bfs_round = 0
        while frontier and not stop:
            round_t0 = perf()
            next_frontier = []
            for index in frontier:
                state = states[index]
                successors = self._successors(state)
                edges[index] = []
                if (self.check_deadlock and not successors
                        and any(pc is not None and not process.daemon
                                for process, (pc, _) in zip(
                                    spec.processes, state.procs))):
                    violations.append(
                        Violation("deadlock", "no-enabled-step",
                                  trace_to(index)))
                    if self.stop_at_first:
                        stop = True
                        break
                for action, succ in successors:
                    transitions += 1
                    if prof is None:
                        canon = self._canonical(succ)
                    else:
                        t0 = perf()
                        canon = self._canonical(succ)
                        t1 = perf()
                        phase_s["canonicalize"] += t1 - t0
                        phase_calls["canonicalize"] += 1
                    if incremental:
                        if canon is succ:
                            # Step semantics copy the parent's slot tuples
                            # and replace only written slots, so the
                            # identity diff against the parent's cached
                            # vector touches just the write footprint.
                            vec = fper.update(vectors[index], state, succ)
                        else:
                            vec = fper.vector(canon)
                        fp = fper.fingerprint(vec)
                    else:
                        vec = None
                        fp = fingerprint_state(canon)
                    if prof is None:
                        existing = seen.get(fp)
                    else:
                        t2 = perf()
                        phase_s["fingerprint"] += t2 - t1
                        phase_calls["fingerprint"] += 1
                        existing = seen.get(fp)
                        t3 = perf()
                        phase_s["dedup"] += t3 - t2
                        phase_calls["dedup"] += 1
                    if existing is not None:
                        edges[index].append(existing)
                        continue
                    new_index = len(states)
                    seen[fp] = new_index
                    states.append(canon)
                    vectors.append(vec)
                    parent.append((index, action))
                    depth.append(depth[index] + 1)
                    diameter = max(diameter, depth[new_index])
                    edges[index].append(new_index)
                    if prof is not None:
                        # Seen-store insertion rides with the lookup:
                        # chained continuation of the dedup region.
                        t4 = perf()
                        phase_s["dedup"] += t4 - t3
                    if not check_invariants(new_index) and self.stop_at_first:
                        stop = True
                        break
                    next_frontier.append(new_index)
                    if len(states) > self.max_states:
                        raise MemoryError(
                            f"state space exceeds {self.max_states} states")
                if stop:
                    break
            prev_len = len(frontier)
            frontier = next_frontier
            bfs_round += 1
            if tracer is not None:
                now = perf() - start_time
                tracer.round_span("serial", bfs_round - 1,
                                  round_t0 - start_time, now,
                                  frontier=prev_len)
                tracer.counter("frontier depth", now,
                               {"states": len(frontier)})
                if transitions:
                    tracer.counter("dedup", now, {
                        "hit_rate": round(1 - len(states) / transitions, 4)})
            if self.progress is not None:
                self._progress_round(bfs_round, len(states), len(frontier),
                                     prev_len, transitions, start_time)

        explore_end = perf()
        if not stop and spec.eventually_always:
            if prof is None:
                violations.extend(
                    self._check_liveness(states, edges, depth, trace_to))
            else:
                t0 = perf()
                violations.extend(
                    self._check_liveness(states, edges, depth, trace_to))
                prof.add("liveness", perf() - t0)

        elapsed = time.perf_counter() - start_time
        stats = {"engine": "serial",
                 "fingerprint_mode": self.fingerprint_mode}
        # Deterministic hashing-work counter (slot digests consulted):
        # the full-encoding mode re-digests every slot of every
        # successor (plus the initial state); incremental mode pays
        # only for written slots.  Lives in stats — never to_json —
        # so the canonical outcome stays byte-identical.
        slot_count = len(spec.global_names) + len(spec.processes)
        stats["fp_slots_digested"] = (
            fper.slots_digested if incremental
            else (transitions + 1) * slot_count)
        self._record_auto_choice(stats)
        if prof is not None:
            exploration_s = explore_end - explore_t0
            prof.busy_s = exploration_s
            stats["profile"] = self._profile_artifact(
                prof, engine="serial-fp", total_s=elapsed,
                exploration_s=exploration_s,
                counts={"states": len(states), "transitions": transitions,
                        "diameter": diameter})
        if tracer is not None:
            tracer.write(self.trace_out)
        if self.progress is not None:
            self.progress.done(states=len(states), transitions=transitions,
                               diameter=diameter,
                               elapsed_s=round(elapsed, 2))
        result = CheckResult(not violations, len(states), transitions,
                             diameter, elapsed, violations, stats=stats)
        if self.registry is not None:
            self._report_metrics(result)
        return result

    def _report_metrics(self, result: CheckResult) -> None:
        registry = self.registry
        # Per-run "checker<N>" namespacing (the env-style registry
        # pattern): two checker runs against one registry must not
        # silently overwrite each other's gauges.
        prefix = registry.checker_prefix(self)
        registry.counter(f"{prefix}.states").inc(result.distinct_states)
        registry.counter(f"{prefix}.transitions").inc(result.transitions)
        registry.gauge(f"{prefix}.frontier_depth").set(result.diameter)
        if result.elapsed > 0:
            registry.gauge(f"{prefix}.states_per_s").set(
                round(result.distinct_states / result.elapsed, 1))

    # -- liveness -----------------------------------------------------------------
    def _check_liveness(self, states, edges, depth, trace_to) -> list[Violation]:
        """◇□P: every terminal SCC must satisfy P everywhere.

        The reported witness for a violated property is *canonical*: the
        failing state with the smallest (BFS depth, state fingerprint)
        over all terminal SCCs.  Any order-dependent choice here (e.g.
        "first failing node in Tarjan order") would make counterexample
        traces depend on exploration order, which the parallel engine
        does not reproduce; the canonical witness makes serial and
        parallel runs — and repeated runs — byte-identical.
        """
        sccs = _tarjan(len(states), edges)
        scc_of = {}
        for scc_id, members in enumerate(sccs):
            for node in members:
                scc_of[node] = scc_id
        terminal = [True] * len(sccs)
        for node, outs in edges.items():
            for out in outs:
                if scc_of[out] != scc_of[node]:
                    terminal[scc_of[node]] = False
        violations = []
        for name, predicate in self.spec.eventually_always.items():
            best = None  # ((depth, fingerprint), node)
            for scc_id, members in enumerate(sccs):
                if not terminal[scc_id]:
                    continue
                for node in members:
                    if not predicate(self.spec.view(states[node])):
                        key = (depth[node], fingerprint_state(states[node]))
                        if best is None or key < best[0]:
                            best = (key, node)
            if best is not None:
                violations.append(
                    Violation("liveness", name, trace_to(best[1])))
        return violations


def _tarjan(n: int, edges: dict[int, list[int]]) -> list[list[int]]:
    """Iterative Tarjan SCC over nodes 0..n-1."""
    index_counter = [0]
    stack: list[int] = []
    lowlink = [0] * n
    index = [-1] * n
    on_stack = [False] * n
    result: list[list[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            out = edges.get(node, [])
            advanced = False
            while edge_pos < len(out):
                succ = out[edge_pos]
                edge_pos += 1
                if index[succ] == -1:
                    work[-1] = (node, edge_pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work[-1] = (node, edge_pos)
            if edge_pos >= len(out):
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    lowlink[parent_node] = min(lowlink[parent_node],
                                               lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component.append(w)
                        if w == node:
                            break
                    result.append(component)
    return result


def check(spec: Spec, **kwargs) -> CheckResult:
    """Convenience: model-check ``spec`` with default settings."""
    return ModelChecker(spec, **kwargs).run()
