"""Explicit-state model checker (the TLC analog).

Breadth-first exploration of a :class:`~repro.spec.lang.Spec`'s state
space with:

* **safety** — every invariant evaluated on every distinct state; a
  violation yields a counterexample trace (the shortest path from the
  initial state, as TLC produces);
* **liveness** — ◇□P properties checked by requiring every *terminal*
  strongly connected component of the reachable graph to satisfy P in
  all of its states (sound for weakly fair schedulers on finite models
  whose failure processes are budget-bounded, as the paper's are);
* **deadlock** — states with no enabled step where not all processes
  have terminated.

The three scaling techniques of §3.7 are implemented exactly as
described and are individually switchable for the Table 4 ablation:

* **symmetry reduction** — states are canonicalized by the spec's
  symmetry function before deduplication;
* **partial-order reduction** — when some process's next step is
  declared *local* (commutes with everything), only the first such
  process is expanded (an ample set of size one);
* **compositional abstraction** — not a checker switch but a spec
  construction switch: specs offer abstract over-approximations of
  components (e.g. AbstractSW) that collapse internal detail.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .lang import Blocked, Ctx, NeedChoice, Spec, State

__all__ = ["CheckResult", "Violation", "ModelChecker", "check",
           "UnsoundPORHintError"]


class UnsoundPORHintError(Exception):
    """A ``Step.local=True`` ample-set hint contradicts the step's effects.

    POR with an unsound hint silently removes interleavings and can
    certify buggy specs, so the checker refuses to explore rather than
    return an untrustworthy verdict.  Carries the analyzer findings.
    """

    def __init__(self, findings):
        self.findings = list(findings)
        sites = ", ".join(f.site for f in self.findings)
        super().__init__(
            f"unsound local=True ample-set hint(s) at {sites}; "
            "run `zenith-repro lint` for details, or pass por=False")


@dataclass
class Violation:
    """A property violation with its counterexample trace."""

    kind: str          # "invariant" | "liveness" | "deadlock"
    property_name: str
    trace: list[tuple[str, State]]  # (action label, state) pairs

    @property
    def length(self) -> int:
        """Number of steps in the counterexample."""
        return len(self.trace)

    def describe(self) -> str:
        """Human-readable counterexample."""
        lines = [f"{self.kind} violation of {self.property_name!r} "
                 f"({self.length} steps):"]
        for index, (action, _state) in enumerate(self.trace):
            lines.append(f"  {index:3d}. {action}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    ok: bool
    distinct_states: int
    transitions: int
    diameter: int
    elapsed: float
    violations: list[Violation] = field(default_factory=list)

    def summary(self) -> str:
        """One-line TLC-style summary."""
        status = "OK" if self.ok else "VIOLATION"
        return (f"{status}: {self.distinct_states} distinct states, "
                f"{self.transitions} transitions, diameter {self.diameter}, "
                f"{self.elapsed:.3f}s")


class ModelChecker:
    """Explores a spec's state space."""

    def __init__(self, spec: Spec, symmetry: bool = True, por: bool = True,
                 max_states: int = 2_000_000,
                 stop_at_first_violation: bool = True,
                 check_deadlock: bool = True,
                 validate_por_hints: bool = True):
        self.spec = spec
        self.use_symmetry = symmetry and spec.symmetry is not None
        self.use_por = por
        self.max_states = max_states
        self.stop_at_first = stop_at_first_violation
        self.check_deadlock = check_deadlock
        self.validate_por_hints = validate_por_hints

    # -- successor computation ---------------------------------------------------
    def _expand_step(self, state: State, proc_index: int) -> list[tuple[str, State]]:
        """All successors of running one process's current step."""
        process = self.spec.processes[proc_index]
        pc = state.procs[proc_index][0]
        if pc is None:
            return []
        step = process.step_by_label[pc]
        default_next = process.default_next(pc)
        successors = []
        stack: list[list[int]] = [[]]
        while stack:
            oracle = stack.pop()
            ctx = Ctx(self.spec, state, proc_index, oracle)
            try:
                step.run(ctx)
            except Blocked:
                continue
            except NeedChoice as need:
                for i in range(need.arity):
                    stack.append(oracle + [i])
                continue
            successors.append((f"{process.name}.{pc}",
                               ctx._successor(default_next)))
        return successors

    def _successors(self, state: State) -> list[tuple[str, State]]:
        """Successors under the (optionally ample-set reduced) relation."""
        if self.use_por:
            # Ample set: a process whose current step is declared local
            # commutes with every other step; expanding it alone is a
            # sound reduction (it is also deterministic & non-blocking
            # by convention, preserving enabledness elsewhere).
            for proc_index, process in enumerate(self.spec.processes):
                pc = state.procs[proc_index][0]
                if pc is None:
                    continue
                step = process.step_by_label[pc]
                if step.local:
                    expanded = self._expand_step(state, proc_index)
                    if expanded:
                        return expanded
        result = []
        for proc_index in range(len(self.spec.processes)):
            result.extend(self._expand_step(state, proc_index))
        return result

    def _canonical(self, state: State) -> State:
        if self.use_symmetry:
            return self.spec.symmetry(state)
        return state

    # -- main loop ---------------------------------------------------------------
    def _reject_unsound_hints(self) -> None:
        """Validate ample-set hints before trusting them (speclint)."""
        # Local import: repro.analysis drives Ctx/Spec, so importing it
        # at module level would be circular.
        from ..analysis import verify_por_hints

        findings = verify_por_hints(self.spec)
        if findings:
            raise UnsoundPORHintError(findings)

    def run(self) -> CheckResult:
        """Explore the full reachable state space and check properties."""
        start_time = time.perf_counter()
        spec = self.spec
        if self.use_por and self.validate_por_hints:
            self._reject_unsound_hints()
        init = self._canonical(spec.initial_state())
        seen: dict[State, int] = {init: 0}
        #: raw successor → canonical index; avoids re-canonicalizing the
        #: same raw state reached along multiple paths.
        raw_memo: dict[State, int] = {}
        states: list[State] = [init]
        parent: list[tuple[int, str]] = [(-1, "<init>")]
        depth: list[int] = [0]
        edges: dict[int, list[int]] = {}
        violations: list[Violation] = []
        diameter = 0
        transitions = 0

        def trace_to(index: int) -> list[tuple[str, State]]:
            path = []
            while index >= 0:
                pred, action = parent[index]
                path.append((action, states[index]))
                index = pred
            return list(reversed(path))

        def check_invariants(index: int) -> bool:
            view = spec.view(states[index])
            for name, predicate in spec.invariants.items():
                if not predicate(view):
                    violations.append(
                        Violation("invariant", name, trace_to(index)))
                    return False
            return True

        if not check_invariants(0) and self.stop_at_first:
            return CheckResult(False, 1, 0, 0,
                               time.perf_counter() - start_time, violations)

        frontier = [0]
        stop = False
        while frontier and not stop:
            next_frontier = []
            for index in frontier:
                successors = self._successors(states[index])
                edges[index] = []
                if (self.check_deadlock and not successors
                        and any(pc is not None and not process.daemon
                                for process, (pc, _) in zip(
                                    spec.processes, states[index].procs))):
                    violations.append(
                        Violation("deadlock", "no-enabled-step",
                                  trace_to(index)))
                    if self.stop_at_first:
                        stop = True
                        break
                for action, succ in successors:
                    transitions += 1
                    cached = raw_memo.get(succ)
                    if cached is not None:
                        edges[index].append(cached)
                        continue
                    canon = self._canonical(succ)
                    existing = seen.get(canon)
                    if existing is not None:
                        raw_memo[succ] = existing
                        edges[index].append(existing)
                        continue
                    new_index = len(states)
                    seen[canon] = new_index
                    raw_memo[succ] = new_index
                    states.append(canon)
                    parent.append((index, action))
                    depth.append(depth[index] + 1)
                    diameter = max(diameter, depth[new_index])
                    edges[index].append(new_index)
                    if not check_invariants(new_index) and self.stop_at_first:
                        stop = True
                        break
                    next_frontier.append(new_index)
                    if len(states) > self.max_states:
                        raise MemoryError(
                            f"state space exceeds {self.max_states} states")
                if stop:
                    break
            frontier = next_frontier

        if not stop and spec.eventually_always:
            violations.extend(self._check_liveness(states, edges, trace_to))

        elapsed = time.perf_counter() - start_time
        return CheckResult(not violations, len(states), transitions,
                           diameter, elapsed, violations)

    # -- liveness -----------------------------------------------------------------
    def _check_liveness(self, states, edges, trace_to) -> list[Violation]:
        """◇□P: every terminal SCC must satisfy P everywhere."""
        sccs = _tarjan(len(states), edges)
        scc_of = {}
        for scc_id, members in enumerate(sccs):
            for node in members:
                scc_of[node] = scc_id
        terminal = [True] * len(sccs)
        for node, outs in edges.items():
            for out in outs:
                if scc_of[out] != scc_of[node]:
                    terminal[scc_of[node]] = False
        violations = []
        for name, predicate in self.spec.eventually_always.items():
            for scc_id, members in enumerate(sccs):
                if not terminal[scc_id]:
                    continue
                for node in members:
                    if not predicate(self.spec.view(states[node])):
                        violations.append(
                            Violation("liveness", name, trace_to(node)))
                        break
                else:
                    continue
                break
        return violations


def _tarjan(n: int, edges: dict[int, list[int]]) -> list[list[int]]:
    """Iterative Tarjan SCC over nodes 0..n-1."""
    index_counter = [0]
    stack: list[int] = []
    lowlink = [0] * n
    index = [-1] * n
    on_stack = [False] * n
    result: list[list[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            out = edges.get(node, [])
            advanced = False
            while edge_pos < len(out):
                succ = out[edge_pos]
                edge_pos += 1
                if index[succ] == -1:
                    work[-1] = (node, edge_pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work[-1] = (node, edge_pos)
            if edge_pos >= len(out):
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    lowlink[parent_node] = min(lowlink[parent_node],
                                               lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component.append(w)
                        if w == node:
                            break
                    result.append(component)
    return result


def check(spec: Spec, **kwargs) -> CheckResult:
    """Convenience: model-check ``spec`` with default settings."""
    return ModelChecker(spec, **kwargs).run()
