"""Artifact schema validation (CI gate for ``BENCH_checker.json``).

Usage::

    python -m repro.spec.validate BENCH_checker.json

Checks structure, types and cross-references for the ``repro.spec/v1``
checker-scaling artifact emitted by ``benchmarks/checker_scale.py``:
every benched spec is a registered bundled spec, the parallel run
matched the serial state count, and the speedup gate section is
coherent (enforced only on hosts with enough cores, pass/fail recorded
whenever enforced).  Exits non-zero with one line per problem,
mirroring ``repro.campaign.validate``.
"""

from __future__ import annotations

import json
import sys
from typing import Any

__all__ = ["ARTIFACT_SCHEMA", "validate_artifact", "main"]

ARTIFACT_SCHEMA = "repro.spec/v1"

_RUN_FIELDS = (
    ("ok", bool),
    ("states", int),
    ("transitions", int),
    ("diameter", int),
    ("elapsed_s", (int, float)),
    ("states_per_s", (int, float)),
)
_PARALLEL_EXTRA = (
    ("workers", int),
    ("spawn_s", (int, float)),
    ("explore_s", (int, float)),
    ("speedup", (int, float)),
    ("store_bytes", int),
    ("match", bool),
)
_FP_EXTRA = (("match", bool),)
_FP_INCREMENTAL_EXTRA = _FP_EXTRA + (("speedup_vs_full", (int, float)),)
_COMPILED_EXTRA = (
    ("interpreted_elapsed_s", (int, float)),
    ("repeat", int),
    ("speedup_vs_interpreted", (int, float)),
    ("coverage", (int, float)),
    ("labels_codegen", int),
    ("labels_memo", int),
    ("labels_interp", int),
    ("match", bool),
    ("byte_identical", bool),
)


def _check_run(run: Any, where: str, fields, problems: list[str]) -> None:
    if not isinstance(run, dict):
        problems.append(f"{where}: must be an object")
        return
    for key, kind in fields:
        value = run.get(key)
        if not isinstance(value, kind) or isinstance(value, bool) != (
                kind is bool):
            want = kind.__name__ if isinstance(kind, type) else "number"
            problems.append(f"{where}.{key} must be {want}")


def validate_artifact(artifact: Any) -> list[str]:
    """Schema problems found ([] when the artifact is valid)."""
    problems: list[str] = []
    if not isinstance(artifact, dict):
        return [f"artifact must be an object, got {type(artifact).__name__}"]
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        problems.append(
            f"schema is {artifact.get('schema')!r}, want {ARTIFACT_SCHEMA!r}")
    host = artifact.get("host")
    if not isinstance(host, dict):
        problems.append("missing host section")
        host = {}
    if not isinstance(host.get("cpus"), int) or host.get("cpus", 0) < 1:
        problems.append("host.cpus must be a positive int")
    if not isinstance(host.get("python"), str):
        problems.append("host.python must be a string")

    try:
        from .specs import SPEC_SOURCES
    except ImportError:  # pragma: no cover
        SPEC_SOURCES = None
    specs = artifact.get("specs")
    if not isinstance(specs, dict) or not specs:
        problems.append("specs section must be a non-empty object")
        specs = {}
    for name, entry in specs.items():
        where = f"specs.{name}"
        if SPEC_SOURCES is not None and name not in SPEC_SOURCES:
            problems.append(f"{where}: not a bundled spec")
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        _check_run(entry.get("serial"), f"{where}.serial",
                   _RUN_FIELDS, problems)
        _check_run(entry.get("parallel"), f"{where}.parallel",
                   _RUN_FIELDS + _PARALLEL_EXTRA, problems)
        serial, parallel = entry.get("serial"), entry.get("parallel")
        if isinstance(serial, dict) and isinstance(parallel, dict):
            if parallel.get("match") is not True:
                problems.append(
                    f"{where}.parallel.match must be true (parallel and "
                    "serial disagreed on the state space)")
            for key in ("states", "transitions", "diameter", "ok"):
                if (key in serial and key in parallel
                        and serial[key] != parallel[key]):
                    problems.append(
                        f"{where}: serial.{key}={serial[key]!r} != "
                        f"parallel.{key}={parallel[key]!r}")
        serial_fp = entry.get("serial_fp")
        if not isinstance(serial_fp, dict):
            problems.append(f"{where}.serial_fp section must be an object")
            serial_fp = {}
        _check_run(serial_fp.get("full"), f"{where}.serial_fp.full",
                   _RUN_FIELDS + _FP_EXTRA, problems)
        _check_run(serial_fp.get("incremental"),
                   f"{where}.serial_fp.incremental",
                   _RUN_FIELDS + _FP_INCREMENTAL_EXTRA, problems)
        for mode in ("full", "incremental"):
            run = serial_fp.get(mode)
            if isinstance(run, dict) and run.get("match") is not True:
                problems.append(
                    f"{where}.serial_fp.{mode}.match must be true "
                    "(fingerprint-dedup run disagreed with the default "
                    "serial engine)")
        compiled = entry.get("compiled")
        _check_run(compiled, f"{where}.compiled",
                   _RUN_FIELDS + _COMPILED_EXTRA, problems)
        if isinstance(compiled, dict):
            if compiled.get("match") is not True:
                problems.append(
                    f"{where}.compiled.match must be true (compiled run "
                    "disagreed with the serial engine on the state space)")
            if compiled.get("byte_identical") is not True:
                problems.append(
                    f"{where}.compiled.byte_identical must be true "
                    "(compiled canonical output must not differ from the "
                    "interpreted engine by a single byte)")
        profile = entry.get("profile")
        if profile is None:
            problems.append(f"{where}.profile section missing (run a "
                            "profiled serial pass)")
        else:
            from ..obs.validate import validate_prof_artifact

            problems.extend(f"{where}.profile: {problem}"
                            for problem in validate_prof_artifact(profile))
        if entry.get("profile_match") is not True:
            problems.append(f"{where}.profile_match must be true (profiled "
                            "run disagreed with the unprofiled serial "
                            "engine)")

    bound = artifact.get("collision_bound")
    if not isinstance(bound, dict):
        problems.append("missing collision_bound section")
        bound = {}
    if bound.get("bits") != 64:
        problems.append("collision_bound.bits must be 64")
    if not isinstance(bound.get("p_any_collision"), float):
        problems.append("collision_bound.p_any_collision must be a float")

    gate = artifact.get("gate")
    if not isinstance(gate, dict):
        problems.append("missing gate section")
        gate = {}
    if not isinstance(gate.get("min_speedup"), (int, float)):
        problems.append("gate.min_speedup must be a number")
    enforced = gate.get("enforced")
    if not isinstance(enforced, bool):
        problems.append("gate.enforced must be a bool")
    if isinstance(gate.get("spec"), str) and specs \
            and gate["spec"] not in specs:
        problems.append(f"gate.spec {gate['spec']!r} not among benched specs")
    if enforced is True and not isinstance(gate.get("passed"), bool):
        problems.append("gate.passed must be a bool when the gate is "
                        "enforced")
    if enforced is False and gate.get("passed") is not None:
        problems.append("gate.passed must be null when the gate is not "
                        "enforced (too few cores to measure a speedup)")

    fp_gate = artifact.get("fp_gate")
    if not isinstance(fp_gate, dict):
        problems.append("missing fp_gate section")
        fp_gate = {}
    if not isinstance(fp_gate.get("min_speedup"), (int, float)):
        problems.append("fp_gate.min_speedup must be a number")
    if fp_gate.get("enforced") is not True:
        problems.append("fp_gate.enforced must be true (fingerprint-mode "
                        "runs are serial; one core measures them)")
    if not isinstance(fp_gate.get("passed"), bool):
        problems.append("fp_gate.passed must be a bool")
    if isinstance(fp_gate.get("spec"), str) and specs \
            and fp_gate["spec"] not in specs:
        problems.append(
            f"fp_gate.spec {fp_gate['spec']!r} not among benched specs")

    compiled_gate = artifact.get("compiled_gate")
    if not isinstance(compiled_gate, dict):
        problems.append("missing compiled_gate section")
        compiled_gate = {}
    for key in ("min_speedup", "target_speedup", "speedup"):
        if not isinstance(compiled_gate.get(key), (int, float)) \
                or isinstance(compiled_gate.get(key), bool):
            problems.append(f"compiled_gate.{key} must be a number")
    if compiled_gate.get("enforced") is not True:
        problems.append("compiled_gate.enforced must be true (compiled "
                        "and interpreted runs are both serial; one core "
                        "measures the ratio)")
    for key in ("passed", "target_met"):
        if not isinstance(compiled_gate.get(key), bool):
            problems.append(f"compiled_gate.{key} must be a bool")
    if (isinstance(compiled_gate.get("speedup"), (int, float))
            and isinstance(compiled_gate.get("target_speedup"), (int, float))
            and isinstance(compiled_gate.get("target_met"), bool)
            and compiled_gate["target_met"] != (
                compiled_gate["speedup"]
                >= compiled_gate["target_speedup"])):
        problems.append("compiled_gate.target_met is inconsistent with "
                        "its measured speedup and target")
    if isinstance(compiled_gate.get("spec"), str) and specs \
            and compiled_gate["spec"] not in specs:
        problems.append(f"compiled_gate.spec {compiled_gate['spec']!r} "
                        "not among benched specs")

    prof_gate = artifact.get("prof_gate")
    if not isinstance(prof_gate, dict):
        problems.append("missing prof_gate section")
        prof_gate = {}
    for key in ("min_coverage", "coverage", "max_overhead"):
        if not isinstance(prof_gate.get(key), (int, float)) \
                or isinstance(prof_gate.get(key), bool):
            problems.append(f"prof_gate.{key} must be a number")
    overhead = prof_gate.get("overhead")
    if not isinstance(overhead, dict) or not isinstance(
            overhead.get("overhead"), (int, float)):
        problems.append("prof_gate.overhead must be the measurement object "
                        "from benchmarks/prof_overhead.py")
        overhead = None
    if prof_gate.get("enforced") is not True:
        problems.append("prof_gate.enforced must be true (profiled runs "
                        "are serial; one core measures them)")
    if not isinstance(prof_gate.get("passed"), bool):
        problems.append("prof_gate.passed must be a bool")
    elif (overhead is not None
          and isinstance(prof_gate.get("coverage"), (int, float))
          and isinstance(prof_gate.get("min_coverage"), (int, float))
          and isinstance(prof_gate.get("max_overhead"), (int, float))):
        expected = (prof_gate["coverage"] >= prof_gate["min_coverage"]
                    and overhead["overhead"] <= prof_gate["max_overhead"])
        if prof_gate["passed"] != expected:
            problems.append("prof_gate.passed is inconsistent with its "
                            "coverage/overhead thresholds")
    if isinstance(prof_gate.get("spec"), str) and specs \
            and prof_gate["spec"] not in specs:
        problems.append(
            f"prof_gate.spec {prof_gate['spec']!r} not among benched specs")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.spec.validate <artifact.json>",
              file=sys.stderr)
        return 2
    try:
        artifact = json.loads(open(argv[0]).read())
    except (OSError, ValueError) as exc:
        print(f"cannot read artifact: {exc}", file=sys.stderr)
        return 1
    problems = validate_artifact(artifact)
    for problem in problems:
        print(f"INVALID: {problem}")
    if not problems:
        specs = artifact.get("specs", {})
        gate = artifact.get("gate", {})
        fp_gate = artifact.get("fp_gate", {})
        prof_gate = artifact.get("prof_gate", {})
        state = ("PASSED" if gate.get("passed")
                 else "failed" if gate.get("enforced")
                 else "not enforced (host too small)")
        fp_state = "PASSED" if fp_gate.get("passed") else "failed"
        prof_state = "PASSED" if prof_gate.get("passed") else "failed"
        compiled_gate = artifact.get("compiled_gate", {})
        compiled_state = "PASSED" if compiled_gate.get("passed") else "failed"
        target = (f" ({compiled_gate.get('speedup')}x vs "
                  f"{compiled_gate.get('target_speedup')}x target"
                  f"{'' if compiled_gate.get('target_met') else ' — unmet'})")
        print(f"ok: {len(specs)} specs benched, "
              f">= {gate.get('min_speedup')}x gate {state}, "
              f">= {fp_gate.get('min_speedup')}x fp gate {fp_state}, "
              f">= {compiled_gate.get('min_speedup')}x compiled gate "
              f"{compiled_state}{target}, "
              f">= {prof_gate.get('min_coverage')} coverage prof gate "
              f"{prof_state}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
