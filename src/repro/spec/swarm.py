"""Swarm bug-finding: randomized-DFS workers sharing the fingerprint store.

Exhaustive BFS stops paying off once a configuration outgrows memory or
patience; ROADMAP open item 2 asks for a *swarm* mode for exactly those
specs — many seeded randomized depth-first searches racing to find a
violation, the strategy of Holzmann's swarm verification adapted to the
TLC-style architecture the rest of :mod:`repro.spec` uses.

Design:

* **Workers are deterministic functions of (seed, worker id).**  Each
  worker explores its own randomized DFS — successor order shuffled by
  ``random.Random(f"{seed}:{wid}")``, which CPython seeds from the
  string digest, stable across processes and runs — and dedups against
  a worker-local seen-set.  Nothing another worker does can change a
  worker's trace, which is what makes ``--seed`` reproduce a found bug
  exactly (the determinism test pins this; each worker reports a
  64-bit trace digest).
* **Workers share only the fingerprint store.**  Newly visited state
  fingerprints stream to the coordinator in batches; the coordinator
  folds them into one global :class:`~repro.spec.fingerprint.
  FingerprintStore` — spillable to mmap shards via ``store_dir`` — so
  the swarm's *combined* coverage (distinct states, store bytes) is
  measured from one seen-set.  The store is aggregation, not pruning:
  pruning one worker's walk on another's claims would couple traces to
  scheduling and destroy seed-reproducibility.
* **Found bugs replay.**  A worker ships each violation as its
  breadcrumb chain of (parent fingerprint, action) links; the
  coordinator re-executes the chain against a fresh spec build (same
  replay as the parallel engine's trace reconstruction), so every
  reported counterexample is checked against the real transition
  relation before it reaches the caller.
* **Exhaustive fallback.**  With ``max_steps=None`` a worker's DFS
  runs until its stack empties — a full exploration of the reachable
  graph.  Verdict, distinct-state and transition counts then equal the
  serial BFS engine's (each distinct state is expanded exactly once);
  BFS diameter and shortest-counterexample traces are the only fields
  that legitimately differ.  The engine differential matrix uses this
  mode to compare swarm against every exhaustive engine; liveness
  (◇□ over terminal SCCs) is evaluated from the merged edge relation
  exactly like the parallel engine.

A worker that dies (SIGKILL, OOM) or raises surfaces as a clean
:class:`~repro.spec.parallel.ParallelCheckError` through the shared
pool plumbing — never a silent partial verdict.
"""

from __future__ import annotations

import random
import time
import traceback
from typing import Optional
from zlib import crc32

from .checker import CheckResult, ModelChecker, Violation
from .fingerprint import FingerprintStore, fingerprint_state
from .parallel import (
    ParallelCheckError,
    SpecSource,
    _check_liveness_parallel,
    _Pool,
    _reconstruct_trace,
)

__all__ = ["swarm_check"]

#: Fingerprints per coordinator batch (a pipe send every N new states).
_BATCH = 4096

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _digest_step(digest: int, action: str, fp: int) -> int:
    """Fold one (action, fingerprint) visit into a 64-bit FNV-1a digest.

    ``crc32`` of the action name, not ``hash()`` — builtin string
    hashing is salted per process and would break cross-run digests.
    """
    digest = ((digest ^ crc32(action.encode())) * _FNV_PRIME) & _MASK64
    return ((digest ^ fp) * _FNV_PRIME) & _MASK64


# -- worker side (spawned process; must stay module-level) --------------------
def _swarm_worker(conn, worker_id: int, nworkers: int, source: SpecSource,
                  options: dict) -> None:
    """One randomized DFS: explore, stream fingerprints, report."""
    try:
        spec = source.build()
        checker = ModelChecker(
            spec, symmetry=options["symmetry"], por=options["por"],
            check_deadlock=options["check_deadlock"],
            validate_por_hints=False,
            por_deps=options.get("por_deps", False),
            compiled=options.get("compiled", False),
            uncompiled_labels=options.get("uncompiled_labels", ()))
        rng = random.Random(f"{options['seed']}:{worker_id}")
        max_steps = options.get("max_steps")
        max_states = options["max_states"]
        stop_at_first = options["stop_at_first"]
        check_deadlock = options["check_deadlock"]
        exhaustive = max_steps is None
        need_liveness = exhaustive and bool(spec.eventually_always)
        live_predicates = list(spec.eventually_always.values())
        canonical = checker._canonical
        successors_of = checker._successors

        init = canonical(spec.initial_state())
        init_fp = fingerprint_state(init)
        seen = {init_fp}
        breadcrumbs = {init_fp: (None, "<init>")}
        depth_of = {init_fp: 0}
        edges: list[tuple[int, int]] = []
        live_bits: dict[int, tuple] = {}
        violations: list[tuple] = []
        batch: list[int] = [init_fp]
        digest = _digest_step(_FNV_OFFSET, "<init>", init_fp)
        trace_head = [("<init>", init_fp)]
        steps = transitions = 0
        max_depth = 0
        conn.send(("ready", worker_id))

        def note_state(action: str, fp: int, state, depth: int) -> bool:
            """Record a newly visited state; False = stop the walk."""
            nonlocal digest
            digest = _digest_step(digest, action, fp)
            if len(trace_head) < 32:
                trace_head.append((action, fp))
            batch.append(fp)
            if len(batch) >= _BATCH:
                conn.send(("fps", worker_id, batch[:]))
                del batch[:]
            view = spec.view(state)
            for name, predicate in spec.invariants.items():
                if not predicate(view):
                    violations.append(("invariant", name, depth, fp))
                    if stop_at_first:
                        return False
                    break
            if need_liveness:
                live_bits[fp] = tuple(
                    bool(p(view)) for p in live_predicates)
            return True

        ok = note_state("<init>", init_fp, init, 0)
        trace_head.pop(0)  # note_state re-appended <init>
        #: (state, fp, depth, shuffled successor list, cursor)
        stack = [[init, init_fp, 0, None, 0]]
        while stack and ok:
            frame = stack[-1]
            state, fp, depth, succ, cursor = frame
            if succ is None:
                if max_steps is not None and steps >= max_steps:
                    break
                steps += 1
                succ = [(action, canonical(child))
                        for action, child in successors_of(state)]
                transitions += len(succ)
                rng.shuffle(succ)
                frame[3] = succ
                if not succ and check_deadlock and any(
                        pc is not None and not process.daemon
                        for process, (pc, _locals)
                        in zip(spec.processes, state.procs)):
                    violations.append(
                        ("deadlock", "no-enabled-step", depth, fp))
                    if stop_at_first:
                        break
            if cursor >= len(succ):
                stack.pop()
                continue
            frame[4] = cursor + 1
            action, child = succ[cursor]
            child_fp = fingerprint_state(child)
            if need_liveness:
                edges.append((fp, child_fp))
            if child_fp in seen:
                continue
            seen.add(child_fp)
            if len(seen) > max_states:
                raise MemoryError(
                    f"swarm worker {worker_id} exceeds {max_states} states")
            breadcrumbs[child_fp] = (fp, action)
            child_depth = depth + 1
            depth_of[child_fp] = child_depth
            if child_depth > max_depth:
                max_depth = child_depth
            ok = note_state(action, child_fp, child, child_depth)
            stack.append([child, child_fp, child_depth, None, 0])

        summary = {
            "steps": steps,
            "states": len(seen),
            "transitions": transitions,
            "max_depth": max_depth,
            "violations": violations,
            "trace_digest": digest,
            "trace_head": trace_head,
            "fps": batch,
            "exhausted": not stack,
        }
        if violations or need_liveness:
            summary["breadcrumbs"] = breadcrumbs
            summary["depth_of"] = depth_of
        if need_liveness:
            summary["edges"] = edges
            summary["live_bits"] = live_bits
        conn.send(("done", worker_id, summary))
        conn.recv()  # block until the coordinator releases us
    except BaseException:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


# -- coordinator --------------------------------------------------------------
def swarm_check(source: SpecSource, *, workers: int = 2, seed: int = 0,
                max_steps: Optional[int] = None,
                store_dir: Optional[str] = None,
                compiled: bool = False,
                uncompiled_labels=(),
                symmetry: bool = True, por: bool = True,
                por_deps: bool = False,
                check_deadlock: bool = True,
                stop_at_first_violation: bool = True,
                max_states: int = 2_000_000) -> CheckResult:
    """Run ``workers`` seeded randomized-DFS workers over ``source``.

    ``max_steps`` bounds each worker's expansions (``None`` = run every
    worker's DFS to exhaustion — the differential-matrix fallback
    mode).  Returns a :class:`CheckResult` whose ``diameter`` is the
    deepest DFS depth reached (not the BFS diameter) and whose
    violation traces are replay-validated DFS paths (not shortest
    paths); all other fields match the exhaustive engines when the
    walk covered the full graph.
    """
    if workers < 1:
        raise ValueError("swarm needs workers >= 1")
    start_time = time.perf_counter()
    spec = source.build()
    # Replay/liveness helper (serial; shares the swarm's POR settings).
    replayer = ModelChecker(
        spec, symmetry=symmetry, por=por, check_deadlock=check_deadlock,
        validate_por_hints=False, por_deps=por_deps, compiled=compiled,
        uncompiled_labels=uncompiled_labels)
    exhaustive = max_steps is None
    options = {
        "symmetry": symmetry,
        "por": por,
        "por_deps": por_deps,
        "check_deadlock": check_deadlock,
        "compiled": compiled,
        "uncompiled_labels": tuple(uncompiled_labels),
        "seed": seed,
        "max_steps": max_steps,
        "max_states": max_states,
        "stop_at_first": stop_at_first_violation,
        "exact": False,
    }
    store = FingerprintStore(spill_dir=store_dir)
    pool = _Pool(workers, source, options, target=_swarm_worker)
    per_worker: list = [None] * workers
    raw_violations: list[tuple] = []  # (kind, name, depth, fp, wid)
    breadcrumbs_of: dict[int, dict] = {}
    merged_breadcrumbs: dict = {}
    merged_depth: dict = {}
    merged_edges: list = []
    merged_live_bits: dict = {}
    try:
        for wid in range(workers):
            pool.recv(wid)  # "ready"
        for wid in range(workers):
            while True:
                message = pool.recv(wid)
                if message[0] == "fps":
                    for fp in message[2]:
                        store.add(fp)
                    continue
                if message[0] == "done":
                    summary = message[2]
                    for fp in summary.pop("fps"):
                        store.add(fp)
                    per_worker[wid] = summary
                    for kind, name, depth, fp in summary["violations"]:
                        raw_violations.append((depth, kind, name, fp, wid))
                    if "breadcrumbs" in summary:
                        breadcrumbs_of[wid] = summary.pop("breadcrumbs")
                        merged_breadcrumbs.update(breadcrumbs_of[wid])
                        merged_depth.update(summary.pop("depth_of"))
                    merged_edges.extend(summary.pop("edges", ()))
                    merged_live_bits.update(summary.pop("live_bits", {}))
                    break
                raise ParallelCheckError(  # pragma: no cover - protocol guard
                    f"unexpected swarm message {message[0]!r}")
        # Deterministic order, then drop duplicate discoveries (two
        # workers can reach the same violating state).
        raw_violations.sort()
        dedup: dict[tuple, tuple] = {}
        for depth, kind, name, fp, wid in raw_violations:
            dedup.setdefault((kind, name, fp), (depth, kind, name, fp, wid))
        ordered = sorted(dedup.values())
        if stop_at_first_violation and ordered:
            ordered = ordered[:1]
        violations = [
            Violation(kind, name,
                      _reconstruct_trace(replayer, breadcrumbs_of[wid], fp))
            for _depth, kind, name, fp, wid in ordered]
        check_liveness = (
            exhaustive and bool(spec.eventually_always)
            and not (stop_at_first_violation and violations))
        if check_liveness:
            witnesses = _check_liveness_parallel(
                replayer, merged_breadcrumbs, merged_depth, merged_edges,
                merged_live_bits)
            violations.extend(
                Violation("liveness", name,
                          _reconstruct_trace(replayer, merged_breadcrumbs,
                                             fp))
                for name, fp in witnesses)
        # Snapshot before close(): closing drops the spill tiers, and
        # with them the spilled fingerprints' contribution to len().
        distinct_states = len(store)
        store_bytes = store.store_bytes()
        spilled = store.spilled()
        spills = store.spills
    finally:
        pool.shutdown()
        store.close()

    elapsed = time.perf_counter() - start_time
    if exhaustive:
        # Every worker explored the whole graph: per-worker counts are
        # the serial engine's counts, not additive work.
        transitions = max(s["transitions"] for s in per_worker)
    else:
        transitions = sum(s["transitions"] for s in per_worker)
    stats = {
        "engine": "swarm",
        "swarm": {
            "workers": workers,
            "seed": seed,
            "max_steps": max_steps,
            "exhaustive": exhaustive,
            "exhausted": all(s["exhausted"] for s in per_worker),
            "steps": sum(s["steps"] for s in per_worker),
            "compiled": compiled,
            "store_bytes": store_bytes,
            "spilled": spilled,
            "spills": spills,
            "per_worker": [
                {"worker": wid,
                 "steps": s["steps"],
                 "states": s["states"],
                 "transitions": s["transitions"],
                 "max_depth": s["max_depth"],
                 "trace_digest": f"{s['trace_digest']:016x}",
                 "trace_head": [(a, f"{fp:016x}")
                                for a, fp in s["trace_head"]]}
                for wid, s in enumerate(per_worker)],
        },
    }
    if store_dir is not None:
        stats["swarm"]["store_dir"] = store_dir
    return CheckResult(
        not violations, distinct_states, transitions,
        max(s["max_depth"] for s in per_worker), elapsed, violations,
        stats=stats)
