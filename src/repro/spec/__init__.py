"""Formal specification framework: a PlusCal-like DSL + model checker."""

from .checker import CheckResult, ModelChecker, Violation, check
from .fingerprint import (
    FingerprintCollisionError,
    FingerprintStore,
    canonical_bytes,
    fingerprint_state,
)
from .parallel import ParallelCheckError, SpecSource
from .lang import (
    NULL,
    Blocked,
    Ctx,
    NeedChoice,
    QueueDisciplineError,
    Spec,
    SpecProcess,
    SpecView,
    State,
    Step,
    ack_pop,
    ack_read,
    fifo_get,
    fifo_put,
)

__all__ = [
    "Blocked",
    "CheckResult",
    "Ctx",
    "FingerprintCollisionError",
    "FingerprintStore",
    "ModelChecker",
    "NULL",
    "NeedChoice",
    "ParallelCheckError",
    "QueueDisciplineError",
    "Spec",
    "SpecProcess",
    "SpecSource",
    "SpecView",
    "State",
    "Step",
    "Violation",
    "ack_pop",
    "ack_read",
    "canonical_bytes",
    "check",
    "fifo_get",
    "fifo_put",
    "fingerprint_state",
]
