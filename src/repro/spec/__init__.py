"""Formal specification framework: a PlusCal-like DSL + model checker."""

from .checker import CheckResult, ModelChecker, Violation, check
from .lang import (
    NULL,
    Blocked,
    Ctx,
    NeedChoice,
    QueueDisciplineError,
    Spec,
    SpecProcess,
    SpecView,
    State,
    Step,
    ack_pop,
    ack_read,
    fifo_get,
    fifo_put,
)

__all__ = [
    "Blocked",
    "CheckResult",
    "Ctx",
    "ModelChecker",
    "NULL",
    "NeedChoice",
    "QueueDisciplineError",
    "Spec",
    "SpecProcess",
    "SpecView",
    "State",
    "Step",
    "Violation",
    "ack_pop",
    "ack_read",
    "check",
    "fifo_get",
    "fifo_put",
]
