"""Effect inference for specifications.

Step functions are opaque Python callables, so their effects cannot be
read off an AST.  Instead they are *observed*: an :class:`EffectCtx`
(a recording shim over :class:`repro.spec.lang.Ctx`) is driven through
every labeled step over a bounded frontier of reachable states —
exactly the checker's successor computation, minus the reductions the
analyzer is there to validate.  Each (process, label) accumulates a
:class:`StepEffect`: globals read/written, locals touched, queue
macro operations (ordered, per queue), choice arities, blocking,
observed goto targets and successor labels.

Observed effects are *definite*: if a label was ever seen writing a
global, it writes that global on some reachable execution.  Absence is
definite only when the exploration completed (``EffectReport.complete``);
rules that reason from absence must check that flag.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from ..spec.lang import (
    Blocked,
    Ctx,
    NeedChoice,
    QueueDisciplineError,
    Spec,
    SpecView,
    State,
)

__all__ = ["EffectCtx", "StepEffect", "EffectReport", "infer_effects",
           "infer_effects_cached"]


class UndeclaredVariable(Exception):
    """A step touched a variable the spec does not declare."""

    def __init__(self, scope: str, name: str):
        super().__init__(f"undeclared {scope} variable {name!r}")
        self.scope = scope
        self.name = name


@dataclass
class StepEffect:
    """Accumulated observations for one (process, label) step."""

    process: str
    label: str
    global_reads: set = field(default_factory=set)
    global_writes: set = field(default_factory=set)
    #: Global accesses made outside queue macros — ``global_reads`` /
    #: ``global_writes`` minus the macro-internal queue traffic.  The
    #: race detector exempts macro-mediated contact with a queue global
    #: only when no raw access accompanies it.
    raw_global_reads: set = field(default_factory=set)
    raw_global_writes: set = field(default_factory=set)
    local_reads: set = field(default_factory=set)
    local_writes: set = field(default_factory=set)
    #: Distinct ordered queue-op sequences observed on completed runs,
    #: e.g. {(("ack_read", "q"), ("ack_pop", "q"))}.
    queue_sequences: set = field(default_factory=set)
    choice_arities: set = field(default_factory=set)
    resets: set = field(default_factory=set)
    goto_targets: set = field(default_factory=set)
    #: Successor labels actually taken (None = process terminated).
    next_labels: set = field(default_factory=set)
    blocked: bool = False
    executed: bool = False
    undeclared: set = field(default_factory=set)  # (scope, name)

    @property
    def queue_ops(self) -> set:
        """Flattened set of (kind, queue) pairs ever observed."""
        return {op for seq in self.queue_sequences for op in seq}

    def queues(self, *kinds: str) -> set:
        """Queues touched by any of the given op kinds."""
        return {queue for kind, queue in self.queue_ops if kind in kinds}

    @property
    def is_local(self) -> bool:
        """Does the observed behaviour satisfy the ample-set contract?

        A POR-local step must commute with every step of every other
        process *and* preserve their enabledness: no global reads or
        writes (queue macros included), no peer resets, no blocking
        guard, no nondeterministic choice.
        """
        return not (self.global_reads or self.global_writes
                    or self.queue_ops or self.resets
                    or self.blocked or self.choice_arities
                    or self.undeclared)

    def merge_run(self, ctx: "EffectCtx", completed: bool) -> None:
        """Fold one execution attempt's recording into the aggregate."""
        self.global_reads |= ctx.rec_global_reads
        self.global_writes |= ctx.rec_global_writes
        self.raw_global_reads |= ctx.rec_raw_global_reads
        self.raw_global_writes |= ctx.rec_raw_global_writes
        self.local_reads |= ctx.rec_local_reads
        self.local_writes |= ctx.rec_local_writes
        self.choice_arities |= ctx.rec_choices
        self.resets |= ctx.rec_resets
        self.goto_targets |= ctx.rec_gotos
        self.undeclared |= ctx.rec_undeclared
        if completed:
            self.executed = True
            self.queue_sequences.add(tuple(ctx.rec_queue_ops))


class EffectCtx(Ctx):
    """A Ctx that records every observable effect of a step run."""

    def __init__(self, spec: Spec, state: State, proc_index: int, oracle):
        super().__init__(spec, state, proc_index, oracle)
        self.rec_global_reads: set = set()
        self.rec_global_writes: set = set()
        self.rec_raw_global_reads: set = set()
        self.rec_raw_global_writes: set = set()
        self._macro_depth = 0
        self.rec_local_reads: set = set()
        self.rec_local_writes: set = set()
        self.rec_queue_ops: list = []
        self.rec_choices: set = set()
        self.rec_resets: set = set()
        self.rec_gotos: set = set()
        self.rec_undeclared: set = set()
        self.rec_blocked = False

    # -- variables -------------------------------------------------------------
    def get(self, name):
        if name not in self.spec.global_index:
            self.rec_undeclared.add(("global", name))
            raise UndeclaredVariable("global", name)
        self.rec_global_reads.add(name)
        if not self._macro_depth:
            self.rec_raw_global_reads.add(name)
        return super().get(name)

    def set(self, name, value):
        if name not in self.spec.global_index:
            self.rec_undeclared.add(("global", name))
            raise UndeclaredVariable("global", name)
        self.rec_global_writes.add(name)
        if not self._macro_depth:
            self.rec_raw_global_writes.add(name)
        super().set(name, value)

    def _macro_get(self, queue):
        self._macro_depth += 1
        try:
            return super()._macro_get(queue)
        finally:
            self._macro_depth -= 1

    def _macro_set(self, queue, value):
        self._macro_depth += 1
        try:
            super()._macro_set(queue, value)
        finally:
            self._macro_depth -= 1

    def lget(self, name):
        process = self.spec.processes[self.proc_index]
        if name not in process.local_index:
            self.rec_undeclared.add(("local", name))
            raise UndeclaredVariable("local", name)
        self.rec_local_reads.add(name)
        return super().lget(name)

    def lset(self, name, value):
        process = self.spec.processes[self.proc_index]
        if name not in process.local_index:
            self.rec_undeclared.add(("local", name))
            raise UndeclaredVariable("local", name)
        self.rec_local_writes.add(name)
        super().lset(name, value)

    def peer_pc(self, process_name):
        # Another process's pc is shared state for commutation purposes.
        self.rec_global_reads.add(f"<pc:{process_name}>")
        return super().peer_pc(process_name)

    def reset_peer(self, process_name, pc=None):
        index = self.spec.process_index[process_name]
        target_pc = pc if pc is not None else self.spec.processes[index].start
        self.rec_resets.add((process_name, target_pc))
        super().reset_peer(process_name, pc)

    # -- control flow ---------------------------------------------------------------
    def goto(self, label):
        self.rec_gotos.add(label)
        super().goto(label)

    def done(self):
        self.rec_gotos.add(None)
        super().done()

    def block_unless(self, condition):
        if not condition:
            self.rec_blocked = True
        super().block_unless(condition)

    # -- nondeterminism ----------------------------------------------------------------
    def choose(self, arity):
        self.rec_choices.add(arity)
        return super().choose(arity)

    # -- queue macros -----------------------------------------------------------------
    def _on_queue_op(self, kind, queue):
        self.rec_queue_ops.append((kind, queue))


class RecordingView(SpecView):
    """A SpecView that records which variables a property reads."""

    def __init__(self, spec: Spec, state: State):
        super().__init__(spec, state)
        self.rec_global_reads: set = set()
        self.rec_local_reads: set = set()
        self.rec_pc_reads: set = set()

    def __getitem__(self, name):
        self.rec_global_reads.add(name)
        return super().__getitem__(name)

    def local(self, process, name):
        self.rec_local_reads.add((process, name))
        return super().local(process, name)

    def pc(self, process):
        # A property observing a pc makes that process's control state
        # *visible*: any step of that process changes it.
        self.rec_pc_reads.add(process)
        return super().pc(process)


@dataclass
class EffectReport:
    """The result of effect inference over one spec."""

    spec: Spec
    #: (process name, label) -> StepEffect
    effects: dict
    #: process name -> {label -> set of successor labels (None = done)}
    cfg: dict
    #: process name -> labels observed as a pc in some reachable state
    reachable_labels: dict
    #: process name -> True if a reachable state had pc None
    terminates: dict
    #: Globals read by any invariant/liveness property over the sample.
    property_reads: set
    #: (process, local) pairs read by properties.
    property_local_reads: set
    complete: bool
    states_explored: int
    #: Process names whose pc some property observed.
    property_pc_reads: set = field(default_factory=set)
    #: The property read sets are *exhaustive*: every reachable state
    #: was explored AND properties were evaluated on all of them (or
    #: the spec has no properties).  Short-circuiting properties read
    #: different variables on different states, so sampled or truncated
    #: evaluation under-approximates the read sets — absence reasoning
    #: (e.g. POR invisibility, C2) must check this flag.
    property_reads_complete: bool = False

    def effect(self, process: str, label: str) -> StepEffect:
        return self.effects[(process, label)]

    def process_effects(self, process: str):
        """All StepEffects of one process, in declaration order."""
        proc = self.spec.processes[self.spec.process_index[process]]
        return [self.effects[(process, step.label)] for step in proc.steps]

    def ack_queues(self) -> frozenset:
        """Declared ack queues plus those observed under ack macros."""
        observed = set(self.spec.ack_queues)
        for effect in self.effects.values():
            observed |= effect.queues("ack_read", "ack_pop")
        return frozenset(observed)


def infer_effects(spec: Spec, max_states: int = 4000,
                  property_samples: Optional[int] = None) -> EffectReport:
    """Exhaustively execute every step over a bounded reachable frontier.

    Explores the raw interleaving semantics (no symmetry, no POR — the
    reductions are what the analyzer validates) breadth-first until the
    space is exhausted or ``max_states`` distinct states were expanded.

    ``property_samples`` bounds how many explored states properties are
    evaluated on (a strided sample).  The default ``None`` evaluates on
    *every* explored state — the only regime in which the property read
    sets are exhaustive (``property_reads_complete``) and may license
    reductions; pass a finite budget only when the read sets are used
    as presence evidence.
    """
    effects = {(process.name, step.label): StepEffect(process.name, step.label)
               for process in spec.processes for step in process.steps}
    cfg: dict = {process.name: {step.label: set() for step in process.steps}
                 for process in spec.processes}
    reachable: dict = {process.name: set() for process in spec.processes}
    terminates: dict = {process.name: False for process in spec.processes}

    init = spec.initial_state()
    seen = {init}
    frontier = [init]
    states = [init]
    complete = True

    while frontier:
        state = frontier.pop()
        for proc_index, process in enumerate(spec.processes):
            pc = state.procs[proc_index][0]
            if pc is None:
                terminates[process.name] = True
                continue
            reachable[process.name].add(pc)
            step = process.step_by_label.get(pc)
            if step is None:
                # A goto jumped to a label the process does not define;
                # recorded via goto_targets, nothing to execute.
                continue
            effect = effects[(process.name, pc)]
            default_next = process.default_next(pc)
            stack: list = [[]]
            while stack:
                oracle = stack.pop()
                ctx = EffectCtx(spec, state, proc_index, oracle)
                try:
                    step.run(ctx)
                except Blocked:
                    # Whether via block_unless or an empty choose, the
                    # step refused to run — it has a blocking guard.
                    effect.blocked = True
                    effect.merge_run(ctx, completed=False)
                    continue
                except NeedChoice as need:
                    effect.merge_run(ctx, completed=False)
                    for i in range(need.arity):
                        stack.append(oracle + [i])
                    continue
                except UndeclaredVariable:
                    effect.merge_run(ctx, completed=False)
                    continue
                except QueueDisciplineError:
                    # A strict ack_pop fired at inference time (pop on
                    # an empty queue): the run dies, but the op trace up
                    # to the fault is real evidence for the dataflow.
                    effect.merge_run(ctx, completed=False)
                    effect.queue_sequences.add(tuple(ctx.rec_queue_ops))
                    continue
                effect.merge_run(ctx, completed=True)
                successor = ctx._successor(default_next)
                next_pc = successor.procs[proc_index][0]
                effect.next_labels.add(next_pc)
                cfg[process.name][pc].add(next_pc)
                if successor not in seen:
                    if len(seen) >= max_states:
                        complete = False
                        continue
                    seen.add(successor)
                    states.append(successor)
                    frontier.append(successor)

    property_reads: set = set()
    property_local_reads: set = set()
    property_pc_reads: set = set()
    properties = list(spec.invariants.values())
    properties += list(spec.eventually_always.values())
    stride = 1
    if properties:
        if property_samples is not None:
            stride = max(1, len(states) // max(1, property_samples))
        for state in states[::stride]:
            for predicate in properties:
                view = RecordingView(spec, state)
                try:
                    predicate(view)
                except Exception:
                    # Property evaluation may legitimately fail on
                    # partially explored states; reads still count.
                    pass
                property_reads |= view.rec_global_reads
                property_local_reads |= view.rec_local_reads
                property_pc_reads |= view.rec_pc_reads

    return EffectReport(spec=spec, effects=effects, cfg=cfg,
                        reachable_labels=reachable, terminates=terminates,
                        property_reads=property_reads,
                        property_local_reads=property_local_reads,
                        complete=complete, states_explored=len(seen),
                        property_pc_reads=property_pc_reads,
                        property_reads_complete=(
                            not properties or (complete and stride == 1)))


#: Spec object -> (state budget, property-sample budget, EffectReport).
#: Weak keys: cached reports must not keep dead spec objects (and
#: their closures) alive.
_EFFECT_CACHE: "weakref.WeakKeyDictionary[Spec, tuple]" = \
    weakref.WeakKeyDictionary()


def infer_effects_cached(spec: Spec, max_states: int = 4000,
                         property_samples: Optional[int] = None
                         ) -> EffectReport:
    """:func:`infer_effects`, memoized per spec *object*.

    The checker re-validates POR hints on every ``check()`` call and
    the footprint analysis re-uses the same observations; both would
    otherwise pay the full bounded-frontier exploration each time for
    the same (immutable-by-convention) spec object.  A cached report is
    reused only when both budgets cover the request: the state budget
    was at least the requested one (or the exploration completed, which
    subsumes any budget), and the property-sample budget was at least
    the requested one (or the cached run evaluated properties on every
    reachable state, which subsumes any sampling request).
    """
    entry = _EFFECT_CACHE.get(spec)
    if entry is not None:
        budget, sample_budget, report = entry
        states_covered = report.complete or budget >= max_states
        samples_covered = (report.property_reads_complete
                           or sample_budget is None
                           or (property_samples is not None
                               and sample_budget >= property_samples))
        if states_covered and samples_covered:
            return report
    report = infer_effects(spec, max_states=max_states,
                           property_samples=property_samples)
    _EFFECT_CACHE[spec] = (max_states, property_samples, report)
    return report
