"""Static dependence analysis: per-label footprints and what they buy.

A **footprint** summarizes everything one labeled atomic step can touch
in shared state: globals read and written (queue macros included),
pseudo-resources for control state (``<pc:P>``) and whole-process local
frames (``<locals:P>``), queue operations, and crash (reset) targets.
Footprints are built by *unioning* two sources:

* the dynamic observations of :mod:`repro.analysis.effects` — exact
  for what was seen, but absence is trustworthy only when the bounded
  exploration completed (``EffectReport.complete``);
* a static AST pass over NADIR programs
  (:func:`repro.analysis.nadir_rules.block_effects`) — an
  over-approximation of every path, complete by construction.

A footprint is **sound** (its *absence* information may be trusted)
when either source certifies it: the dynamic report completed, or the
step came from a NADIR block the static pass covered.  Unsound
footprints never license a reduction — they only ever defer to the
validated ``Step.local=True`` hints.

Three consumers:

* :meth:`FootprintReport.ample_labels` derives partial-order-reduction
  ample sets from pairwise footprint **independence** (disjoint
  write/access sets), subsuming the hand-written hints;
* :class:`repro.spec.fingerprint.IncrementalFingerprinter` re-encodes
  only a transition's written slots (the write footprint made exact
  per-transition by the successor's slot-identity diff);
* :func:`cross_process_races` generalizes the §3.9 race rules to any
  conflicting cross-label W/W / R/W pair on shared globals outside the
  ack-queue discipline.

Shared-resource encoding
------------------------

Independence must account for *all* inter-process interaction, not
just named globals.  Each footprint therefore reads/writes a set of
resources:

* a global variable by its name (queue macros read and write the queue
  global they touch);
* ``<pc:P>`` — process P's program counter.  Every step writes its own
  pc (it may change it); reading a peer's pc via ``Ctx.peer_pc`` reads
  that resource; resetting P writes it.
* ``<locals:P>`` — process P's local frame.  A step reading/writing
  its own locals reads/writes its own frame; resetting P wipes P's
  frame (a write).

Two steps of different processes are **independent** when neither
writes a resource the other reads or writes — they commute and
preserve each other's enabledness, which is conditions C1 of the ample
method.  Invisibility (C2) is checked against the resources properties
were observed reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..spec.lang import Spec
from .effects import EffectReport, infer_effects_cached

__all__ = [
    "Footprint",
    "FootprintReport",
    "cross_process_races",
    "footprints_from_report",
    "independent",
    "program_footprints",
    "spec_footprints",
]


def _pc_resource(process: str) -> str:
    return f"<pc:{process}>"


def _locals_resource(process: str) -> str:
    return f"<locals:{process}>"


@dataclass(frozen=True)
class Footprint:
    """What one (process, label) step can touch in shared state."""

    process: str
    label: str
    #: Shared resources read/written: global names plus the ``<pc:P>``
    #: / ``<locals:P>`` pseudo-resources described in the module doc.
    reads: frozenset
    writes: frozenset
    #: Plain global variables only (no pseudo-resources) — the race
    #: detector's view.
    global_reads: frozenset
    global_writes: frozenset
    #: Own-process local variables by name.
    local_reads: frozenset
    local_writes: frozenset
    #: (kind, queue) pairs ever performed by this label.
    queue_ops: frozenset
    #: Peer processes this label can reset (crash).
    crash_targets: frozenset
    blocked: bool
    chooses: bool
    executed: bool
    #: Touched undeclared variables — all bets off.
    tainted: bool
    #: Absence information is trustworthy (dynamic inference completed
    #: or a static NADIR pass covered the label).
    sound: bool
    provenance: str  # "dynamic" | "static" | "dynamic+static"

    @property
    def key(self) -> tuple:
        return (self.process, self.label)

    def queues(self, *kinds: str) -> frozenset:
        return frozenset(q for kind, q in self.queue_ops if kind in kinds)


def independent(a: Footprint, b: Footprint) -> bool:
    """Do the two steps commute (disjoint write/access footprints)?

    Neither may write a resource the other reads or writes.  Sound as
    an independence verdict only when both footprints are sound —
    callers must check; the predicate itself is just disjointness.
    """
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    return True


@dataclass
class FootprintReport:
    """All footprints of one spec plus property visibility data."""

    spec: Optional[Spec]
    target: str
    #: (process, label) -> Footprint
    footprints: dict
    #: Globals (and ``<pc:P>`` pseudo-resources) properties read.
    property_reads: frozenset = frozenset()
    #: (process, local) pairs properties read.
    property_local_reads: frozenset = frozenset()
    #: Processes whose pc a property observed.
    property_pc_reads: frozenset = frozenset()
    #: Queues under the ack discipline (declared or observed).
    ack_queues: frozenset = frozenset()
    complete: bool = True
    states_explored: int = 0

    def footprint(self, process: str, label: str) -> Footprint:
        return self.footprints[(process, label)]

    def _invisible(self, fp: Footprint) -> bool:
        """C2: no property can observe this step's writes."""
        if fp.global_writes & self.property_reads:
            return False
        if fp.process in self.property_pc_reads:
            return False  # the step writes its own pc
        if any((fp.process, name) in self.property_local_reads
               for name in fp.local_writes):
            return False
        return True

    def ample_labels(self) -> frozenset:
        """(process, label) keys safe to expand alone (ample set of 1).

        A label qualifies when its footprint is sound and shows it to
        be deterministic (no choice), non-blocking, executed at least
        once, crash-free and untainted; invisible to every property
        (C2); and pairwise independent of **every** label of every
        other process — each of which must itself have a sound
        footprint, since independence is disjointness of *complete*
        access sets.  This derives the ``Step.local=True`` contract
        from first principles instead of trusting the hint.
        """
        fps = list(self.footprints.values())
        ample = set()
        for fp in fps:
            if not (fp.sound and fp.executed):
                continue
            if fp.blocked or fp.chooses or fp.crash_targets or fp.tainted:
                continue
            if not self._invisible(fp):
                continue
            ok = True
            for other in fps:
                if other.process == fp.process:
                    continue
                if not other.sound or not independent(fp, other):
                    ok = False
                    break
            if ok:
                ample.add(fp.key)
        return frozenset(ample)


def _resources(process: str, global_reads, global_writes, local_reads,
               local_writes, resets) -> tuple:
    """Map raw effect sets onto the shared-resource encoding."""
    reads = set(global_reads)
    writes = set(global_writes)
    # Every step may rewrite its own pc; own-local traffic is its own
    # frame resource (peers reach it only through reset_peer).
    writes.add(_pc_resource(process))
    if local_reads:
        reads.add(_locals_resource(process))
    if local_writes:
        writes.add(_locals_resource(process))
    for target in resets:
        writes.add(_pc_resource(target))
        writes.add(_locals_resource(target))
    return frozenset(reads), frozenset(writes)


def footprints_from_report(report: EffectReport,
                           program=None) -> FootprintReport:
    """Build footprints by unioning dynamic effects with a static pass.

    ``program`` is the NADIR :class:`~repro.nadir.ast_nodes.Program`
    the spec was interpreted from, when there is one (specs built by
    :func:`repro.nadir.interp.program_to_spec` carry it as
    ``spec.nadir_program``).  Static block effects are an
    over-approximation of every path, so a label they cover is sound
    even when the dynamic exploration was truncated.
    """
    spec = report.spec
    if program is None:
        program = getattr(spec, "nadir_program", None)
    static = program_footprints(program) if program is not None else {}

    footprints = {}
    for (process, label), effect in report.effects.items():
        s = static.get((process, label))
        global_reads = {n for n in effect.global_reads
                        if not n.startswith("<")}
        pc_reads = {n for n in effect.global_reads if n.startswith("<")}
        global_writes = set(effect.global_writes)
        local_reads = set(effect.local_reads)
        local_writes = set(effect.local_writes)
        queue_ops = set(effect.queue_ops)
        resets = {target for target, _pc in effect.resets}
        blocked = effect.blocked
        chooses = bool(effect.choice_arities)
        executed = effect.executed
        provenance = "dynamic"
        if s is not None:
            global_reads |= s.global_reads
            global_writes |= s.global_writes
            local_reads |= s.local_reads
            local_writes |= s.local_writes
            queue_ops |= s.queue_ops
            blocked = blocked or s.blocking
            # A statically covered block can always be attempted (its
            # guard may refuse, which ``blocked`` records).
            executed = True
            provenance = "dynamic+static"
        reads, writes = _resources(process, global_reads, global_writes,
                                   local_reads, local_writes, resets)
        reads |= pc_reads
        footprints[(process, label)] = Footprint(
            process=process, label=label,
            reads=reads, writes=writes,
            global_reads=frozenset(global_reads),
            global_writes=frozenset(global_writes),
            local_reads=frozenset(local_reads),
            local_writes=frozenset(local_writes),
            queue_ops=frozenset(queue_ops),
            crash_targets=frozenset(resets),
            blocked=blocked, chooses=chooses, executed=executed,
            tainted=bool(effect.undeclared),
            sound=report.complete or s is not None,
            provenance=provenance)

    return FootprintReport(
        spec=spec, target=spec.name, footprints=footprints,
        property_reads=frozenset(report.property_reads),
        property_local_reads=frozenset(report.property_local_reads),
        property_pc_reads=frozenset(report.property_pc_reads),
        ack_queues=report.ack_queues(),
        complete=report.complete,
        states_explored=report.states_explored)


def spec_footprints(spec: Spec, max_states: int = 4000,
                    program=None) -> FootprintReport:
    """Infer effects (cached per spec object) and derive footprints."""
    report = infer_effects_cached(spec, max_states=max_states)
    return footprints_from_report(report, program=program)


def program_footprints(program) -> dict:
    """(process, label) -> static :class:`BlockEffect` for a program.

    NADIR has no peer-pc reads, peer resets or nondeterministic choice
    at the AST level, so the static effects are exactly the block's
    global/local accesses and queue ops over every syntactic path.
    """
    from .nadir_rules import block_effects

    effects = {}
    for process in program.processes:
        for block, default_next in process.blocks_with_default_next():
            effects[(process.name, block.label)] = block_effects(
                process, block, default_next)
    return effects


def program_footprint_report(program) -> FootprintReport:
    """A purely static FootprintReport for a NADIR program.

    Used by the AST-level lint pipeline, where no dynamic observations
    exist; every footprint is sound (the walk covers all paths).
    """
    footprints = {}
    for (process, label), s in program_footprints(program).items():
        reads, writes = _resources(process, s.global_reads,
                                   s.global_writes, s.local_reads,
                                   s.local_writes, ())
        footprints[(process, label)] = Footprint(
            process=process, label=label, reads=reads, writes=writes,
            global_reads=frozenset(s.global_reads),
            global_writes=frozenset(s.global_writes),
            local_reads=frozenset(s.local_reads),
            local_writes=frozenset(s.local_writes),
            queue_ops=frozenset(s.queue_ops),
            crash_targets=frozenset(),
            blocked=s.blocking, chooses=False, executed=True,
            tainted=False, sound=True, provenance="static")
    return FootprintReport(
        spec=None, target=program.name, footprints=footprints,
        ack_queues=frozenset(program.ack_queues))


# -- race detection -----------------------------------------------------------------
@dataclass(frozen=True)
class Race:
    """A conflicting cross-process access pair on a shared global."""

    global_name: str
    #: The blind writer (process, label).
    writer: tuple
    #: The conflicting access (process, label, "read"|"write").
    other: tuple
    kind: str  # "write-write" | "read-write"


def _macro_mediated(fp: Footprint, name: str) -> bool:
    """Did every access of ``name`` by this label go through a queue
    macro?  Queue macros read/write the queue global internally, so a
    label whose only contact with ``name`` is via its own queue ops is
    synchronized by the queue discipline, not racing on raw state."""
    return name in {queue for _kind, queue in fp.queue_ops}


def cross_process_races(report: FootprintReport) -> list:
    """Conflicting cross-label W/W and R/W pairs on shared globals.

    Generalizes the §3.9 hand-enumerated race rules: a label that
    **blindly** writes a global (no same-label read — so the write
    cannot be a guarded read-modify-write) while some *other* process
    also reads or writes it is flagged, unless one of the recognized
    synchronization disciplines applies:

    * the global is an ack-discipline queue, or both sides only touch
      it through queue macros (the queue protocol orders them);
    * the writer re-reads the global in the same atomic step (RMW —
      the §3.9 pattern the shipped specs use);
    * the pair is *reset-synchronized*: one label crashes the other's
      process (the reset itself establishes the ordering the blind
      write relies on — e.g. a failure daemon wiping a worker's slot
      while resetting the worker).
    """
    races = []
    fps = list(report.footprints.values())
    accesses: dict = {}
    for fp in fps:
        for name in fp.global_reads | fp.global_writes:
            accesses.setdefault(name, []).append(fp)

    for name in sorted(accesses):
        if name in report.ack_queues:
            continue
        users = accesses[name]
        for fp in users:
            if name not in fp.global_writes or name in fp.global_reads:
                continue  # not a write, or an RMW — not blind
            if _macro_mediated(fp, name):
                continue
            for other in users:
                if other.process == fp.process:
                    continue
                if _macro_mediated(other, name):
                    continue
                # Reset-synchronized pairs: the crash orders them.
                if (other.process in fp.crash_targets
                        or fp.process in other.crash_targets):
                    continue
                if name in other.global_writes:
                    kind = "write-write"
                elif name in other.global_reads:
                    kind = "read-write"
                else:  # pragma: no cover - accesses index guarantees one
                    continue
                races.append(Race(
                    global_name=name,
                    writer=(fp.process, fp.label),
                    other=(other.process, other.label,
                           "write" if name in other.global_writes
                           else "read"),
                    kind=kind))
    races.sort(key=lambda r: (r.global_name, r.writer, r.other))
    return races
