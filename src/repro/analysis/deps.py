"""Static dependence analysis: per-label footprints and what they buy.

A **footprint** summarizes everything one labeled atomic step can touch
in shared state: globals read and written (queue macros included),
pseudo-resources for control state (``<pc:P>``) and whole-process local
frames (``<locals:P>``), queue operations, and crash (reset) targets.
Footprints are built by *unioning* two sources:

* the dynamic observations of :mod:`repro.analysis.effects` — exact
  for what was seen, but absence is trustworthy only when the bounded
  exploration completed (``EffectReport.complete``);
* a static AST pass over NADIR programs
  (:func:`repro.analysis.nadir_rules.block_effects`) — an
  over-approximation of every path, complete by construction.

A footprint is **sound** (its *absence* information may be trusted)
when either source certifies it: the dynamic report completed, or the
step came from a NADIR block the static pass covered.  Unsound
footprints never license a reduction — they only ever defer to the
validated ``Step.local=True`` hints.

Three consumers:

* :meth:`FootprintReport.ample_labels` derives partial-order-reduction
  ample sets from pairwise footprint **independence** (disjoint
  write/access sets), subsuming the hand-written hints;
* :class:`repro.spec.fingerprint.IncrementalFingerprinter` re-encodes
  only a transition's written slots (the write footprint made exact
  per-transition by the successor's slot-identity diff);
* :func:`cross_process_races` generalizes the §3.9 race rules to any
  conflicting cross-label W/W / R/W pair on shared globals outside the
  ack-queue discipline.

Shared-resource encoding
------------------------

Independence must account for *all* inter-process interaction, not
just named globals.  Each footprint therefore reads/writes a set of
resources:

* a global variable by its name (queue macros read and write the queue
  global they touch);
* ``<pc:P>`` — process P's program counter.  Every step writes its own
  pc (it may change it); reading a peer's pc via ``Ctx.peer_pc`` reads
  that resource; resetting P writes it.
* ``<locals:P>`` — process P's local frame.  A step reading/writing
  its own locals reads/writes its own frame; resetting P wipes P's
  frame (a write).

Two steps of different processes are **independent** when neither
writes a resource the other reads or writes — they commute and
preserve each other's enabledness, which is conditions C1 of the ample
method.  Invisibility (C2) is checked against the resources properties
were observed reading — trustworthy only when properties were
evaluated on *every* reachable state
(``FootprintReport.property_visibility_sound``); otherwise no label is
derived and POR falls back to the validated hints.  The cycle proviso
(C3) drops candidates on ample-only control-flow cycles so the reduced
search cannot ignore other processes forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..spec.lang import Spec
from .effects import EffectReport, infer_effects_cached

__all__ = [
    "Footprint",
    "FootprintReport",
    "cross_process_races",
    "footprints_from_report",
    "independent",
    "program_footprints",
    "spec_footprints",
]


def _pc_resource(process: str) -> str:
    return f"<pc:{process}>"


def _locals_resource(process: str) -> str:
    return f"<locals:{process}>"


@dataclass(frozen=True)
class Footprint:
    """What one (process, label) step can touch in shared state."""

    process: str
    label: str
    #: Shared resources read/written: global names plus the ``<pc:P>``
    #: / ``<locals:P>`` pseudo-resources described in the module doc.
    reads: frozenset
    writes: frozenset
    #: Plain global variables only (no pseudo-resources) — the race
    #: detector's view.
    global_reads: frozenset
    global_writes: frozenset
    #: Own-process local variables by name.
    local_reads: frozenset
    local_writes: frozenset
    #: (kind, queue) pairs ever performed by this label.
    queue_ops: frozenset
    #: Peer processes this label can reset (crash).
    crash_targets: frozenset
    blocked: bool
    chooses: bool
    executed: bool
    #: Touched undeclared variables — all bets off.
    tainted: bool
    #: Absence information is trustworthy (dynamic inference completed
    #: or a static NADIR pass covered the label).
    sound: bool
    provenance: str  # "dynamic" | "static" | "dynamic+static"
    #: Global accesses made *outside* queue macros — the subset of
    #: ``global_reads``/``global_writes`` the queue discipline does not
    #: mediate.  The race detector exempts a label's contact with a
    #: queue global only when these are empty for it.
    raw_global_reads: frozenset = frozenset()
    raw_global_writes: frozenset = frozenset()

    @property
    def key(self) -> tuple:
        return (self.process, self.label)

    def queues(self, *kinds: str) -> frozenset:
        return frozenset(q for kind, q in self.queue_ops if kind in kinds)


def independent(a: Footprint, b: Footprint) -> bool:
    """Do the two steps commute (disjoint write/access footprints)?

    Neither may write a resource the other reads or writes.  Sound as
    an independence verdict only when both footprints are sound —
    callers must check; the predicate itself is just disjointness.
    """
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    return True


@dataclass
class FootprintReport:
    """All footprints of one spec plus property visibility data."""

    spec: Optional[Spec]
    target: str
    #: (process, label) -> Footprint
    footprints: dict
    #: Globals (and ``<pc:P>`` pseudo-resources) properties read.
    property_reads: frozenset = frozenset()
    #: (process, local) pairs properties read.
    property_local_reads: frozenset = frozenset()
    #: Processes whose pc a property observed.
    property_pc_reads: frozenset = frozenset()
    #: Queues under the ack discipline (declared or observed).
    ack_queues: frozenset = frozenset()
    complete: bool = True
    states_explored: int = 0
    #: (process, label) -> frozenset of successor labels (None = the
    #: process terminates).  Over-approximate for sound footprints:
    #: exact from a completed dynamic exploration, all-syntactic-paths
    #: from the static pass, unioned when both exist.
    successors: dict = field(default_factory=dict)
    #: The property read sets below are exhaustive (properties were
    #: evaluated on every reachable state).  Short-circuiting
    #: properties read different variables on different states, so
    #: sampled or truncated evaluation under-approximates them — and a
    #: missed read would let :meth:`ample_labels` judge a writing step
    #: invisible (C2) and prune property-visible interleavings.  When
    #: False, no label is derived ample; POR defers to the validated
    #: ``Step.local=True`` hints.
    property_visibility_sound: bool = False

    def footprint(self, process: str, label: str) -> Footprint:
        return self.footprints[(process, label)]

    def _invisible(self, fp: Footprint) -> bool:
        """C2: no property can observe this step's writes."""
        if fp.global_writes & self.property_reads:
            return False
        if fp.process in self.property_pc_reads:
            return False  # the step writes its own pc
        if any((fp.process, name) in self.property_local_reads
               for name in fp.local_writes):
            return False
        return True

    def ample_labels(self) -> frozenset:
        """(process, label) keys safe to expand alone (ample set of 1).

        A label qualifies when its footprint is sound and shows it to
        be deterministic (no choice), non-blocking, executed at least
        once, crash-free and untainted; invisible to every property
        (C2); and pairwise independent of **every** label of every
        other process — each of which must itself have a sound
        footprint, since independence is disjointness of *complete*
        access sets.  This derives the ``Step.local=True`` contract
        from first principles instead of trusting the hint.

        Two report-level gates guard the per-label conditions:

        * C2 is checked against observed property read sets, which are
          trustworthy only when ``property_visibility_sound`` — i.e.
          properties were evaluated on every reachable state.  If not,
          *no* label is derived (POR falls back to validated hints).
        * C3 (cycle proviso): a control-flow cycle consisting solely of
          derived-ample labels would let the reduced search expand one
          process forever and ignore the others' transitions from every
          state on the cycle.  Candidates lying on an ample-only cycle
          of their process's successor graph are therefore dropped, so
          every cycle retains at least one fully expanded label.
        """
        if not self.property_visibility_sound:
            return frozenset()
        fps = list(self.footprints.values())
        ample = set()
        for fp in fps:
            if not (fp.sound and fp.executed):
                continue
            if fp.blocked or fp.chooses or fp.crash_targets or fp.tainted:
                continue
            if not self._invisible(fp):
                continue
            ok = True
            for other in fps:
                if other.process == fp.process:
                    continue
                if not other.sound or not independent(fp, other):
                    ok = False
                    break
            if ok:
                ample.add(fp.key)
        return frozenset(ample - self._ample_only_cycles(ample))

    def _ample_only_cycles(self, ample: set) -> set:
        """Candidates on a same-process cycle made only of candidates.

        Any cycle of the reduced state graph is, per participating
        process, a cycle in that process's label successor graph with
        every executed label ample — so keeping the candidate-restricted
        successor graphs acyclic guarantees every reduced-graph cycle
        contains a fully expanded state (condition C3).  A candidate
        with no recorded successor set is treated as potentially cyclic.
        """
        doomed = set()
        by_process: dict = {}
        for process, label in ample:
            by_process.setdefault(process, set()).add(label)
        for process, labels in by_process.items():
            graph = {}
            for label in labels:
                succ = self.successors.get((process, label))
                if succ is None:
                    doomed.add((process, label))
                    continue
                graph[label] = {s for s in succ if s in labels}
            for label in graph:
                # DFS: can ``label`` reach itself through candidates?
                stack = list(graph[label])
                seen = set()
                while stack:
                    node = stack.pop()
                    if node == label:
                        doomed.add((process, label))
                        break
                    if node in seen or node not in graph:
                        continue
                    seen.add(node)
                    stack.extend(graph[node])
        return doomed


def _resources(process: str, global_reads, global_writes, local_reads,
               local_writes, resets) -> tuple:
    """Map raw effect sets onto the shared-resource encoding."""
    reads = set(global_reads)
    writes = set(global_writes)
    # Every step may rewrite its own pc; own-local traffic is its own
    # frame resource (peers reach it only through reset_peer).
    writes.add(_pc_resource(process))
    if local_reads:
        reads.add(_locals_resource(process))
    if local_writes:
        writes.add(_locals_resource(process))
    for target in resets:
        writes.add(_pc_resource(target))
        writes.add(_locals_resource(target))
    return frozenset(reads), frozenset(writes)


def footprints_from_report(report: EffectReport,
                           program=None) -> FootprintReport:
    """Build footprints by unioning dynamic effects with a static pass.

    ``program`` is the NADIR :class:`~repro.nadir.ast_nodes.Program`
    the spec was interpreted from, when there is one (specs built by
    :func:`repro.nadir.interp.program_to_spec` carry it as
    ``spec.nadir_program``).  Static block effects are an
    over-approximation of every path, so a label they cover is sound
    even when the dynamic exploration was truncated.
    """
    spec = report.spec
    if program is None:
        program = getattr(spec, "nadir_program", None)
    static = program_footprints(program) if program is not None else {}

    footprints = {}
    successors: dict = {}
    for (process, label), effect in report.effects.items():
        s = static.get((process, label))
        global_reads = {n for n in effect.global_reads
                        if not n.startswith("<")}
        pc_reads = {n for n in effect.global_reads if n.startswith("<")}
        global_writes = set(effect.global_writes)
        raw_global_reads = {n for n in effect.raw_global_reads
                            if not n.startswith("<")}
        raw_global_writes = set(effect.raw_global_writes)
        local_reads = set(effect.local_reads)
        local_writes = set(effect.local_writes)
        queue_ops = set(effect.queue_ops)
        resets = {target for target, _pc in effect.resets}
        blocked = effect.blocked
        chooses = bool(effect.choice_arities)
        executed = effect.executed
        provenance = "dynamic"
        # Successor labels: observed next pcs and goto targets (exact
        # when the exploration completed), unioned with the static
        # all-paths successors when the label is statically covered.
        succ = set(effect.next_labels) | set(effect.goto_targets)
        if s is not None:
            global_reads |= s.global_reads
            global_writes |= s.global_writes
            raw_global_reads |= s.raw_global_reads
            raw_global_writes |= s.raw_global_writes
            local_reads |= s.local_reads
            local_writes |= s.local_writes
            queue_ops |= s.queue_ops
            blocked = blocked or s.blocking
            succ |= s.next_labels | s.goto_targets
            # A statically covered block can always be attempted (its
            # guard may refuse, which ``blocked`` records).
            executed = True
            provenance = "dynamic+static"
        reads, writes = _resources(process, global_reads, global_writes,
                                   local_reads, local_writes, resets)
        reads |= pc_reads
        successors[(process, label)] = frozenset(succ)
        footprints[(process, label)] = Footprint(
            process=process, label=label,
            reads=reads, writes=writes,
            global_reads=frozenset(global_reads),
            global_writes=frozenset(global_writes),
            local_reads=frozenset(local_reads),
            local_writes=frozenset(local_writes),
            queue_ops=frozenset(queue_ops),
            crash_targets=frozenset(resets),
            blocked=blocked, chooses=chooses, executed=executed,
            tainted=bool(effect.undeclared),
            sound=report.complete or s is not None,
            provenance=provenance,
            raw_global_reads=frozenset(raw_global_reads),
            raw_global_writes=frozenset(raw_global_writes))

    return FootprintReport(
        spec=spec, target=spec.name, footprints=footprints,
        property_reads=frozenset(report.property_reads),
        property_local_reads=frozenset(report.property_local_reads),
        property_pc_reads=frozenset(report.property_pc_reads),
        ack_queues=report.ack_queues(),
        complete=report.complete,
        states_explored=report.states_explored,
        successors=successors,
        property_visibility_sound=report.property_reads_complete)


def spec_footprints(spec: Spec, max_states: int = 4000,
                    program=None,
                    property_samples: Optional[int] = None
                    ) -> FootprintReport:
    """Infer effects (cached per spec object) and derive footprints.

    ``property_samples`` defaults to ``None`` — evaluate properties on
    every explored state — because a sampled property pass makes C2
    untrustworthy and disables ample-set derivation entirely.
    """
    report = infer_effects_cached(spec, max_states=max_states,
                                  property_samples=property_samples)
    return footprints_from_report(report, program=program)


def program_footprints(program) -> dict:
    """(process, label) -> static :class:`BlockEffect` for a program.

    NADIR has no peer-pc reads, peer resets or nondeterministic choice
    at the AST level, so the static effects are exactly the block's
    global/local accesses and queue ops over every syntactic path.
    """
    from .nadir_rules import block_effects

    effects = {}
    for process in program.processes:
        for block, default_next in process.blocks_with_default_next():
            effects[(process.name, block.label)] = block_effects(
                process, block, default_next)
    return effects


def program_footprint_report(program) -> FootprintReport:
    """A purely static FootprintReport for a NADIR program.

    Used by the AST-level lint pipeline, where no dynamic observations
    exist; every footprint is sound (the walk covers all paths).  No
    property was ever evaluated here, so ``property_visibility_sound``
    stays False and the report never licenses ample-set derivation —
    it only feeds the race detector.
    """
    footprints = {}
    successors = {}
    for (process, label), s in program_footprints(program).items():
        reads, writes = _resources(process, s.global_reads,
                                   s.global_writes, s.local_reads,
                                   s.local_writes, ())
        successors[(process, label)] = frozenset(s.next_labels
                                                 | s.goto_targets)
        footprints[(process, label)] = Footprint(
            process=process, label=label, reads=reads, writes=writes,
            global_reads=frozenset(s.global_reads),
            global_writes=frozenset(s.global_writes),
            local_reads=frozenset(s.local_reads),
            local_writes=frozenset(s.local_writes),
            queue_ops=frozenset(s.queue_ops),
            crash_targets=frozenset(),
            blocked=s.blocking, chooses=False, executed=True,
            tainted=False, sound=True, provenance="static",
            raw_global_reads=frozenset(s.raw_global_reads),
            raw_global_writes=frozenset(s.raw_global_writes))
    return FootprintReport(
        spec=None, target=program.name, footprints=footprints,
        ack_queues=frozenset(program.ack_queues),
        successors=successors)


# -- race detection -----------------------------------------------------------------
@dataclass(frozen=True)
class Race:
    """A conflicting cross-process access pair on a shared global."""

    global_name: str
    #: The blind writer (process, label).
    writer: tuple
    #: The conflicting access (process, label, "read"|"write").
    other: tuple
    kind: str  # "write-write" | "read-write"


def cross_process_races(report: FootprintReport) -> list:
    """Conflicting cross-label W/W and R/W pairs on shared globals.

    Generalizes the §3.9 hand-enumerated race rules: a label that
    **blindly** writes a global (no same-label read — so the write
    cannot be a guarded read-modify-write) while some *other* process
    also reads or writes it is flagged, unless one of the recognized
    synchronization disciplines applies:

    * the global is an ack-discipline queue, or the access went through
      a queue macro (the queue protocol orders macro traffic);
    * the writer re-reads the global in the same atomic step (RMW —
      the §3.9 pattern the shipped specs use);
    * the pair is *reset-synchronized*: one label crashes the other's
      process (the reset itself establishes the ordering the blind
      write relies on — e.g. a failure daemon wiping a worker's slot
      while resetting the worker).

    All checks run over the **raw** access sets — the accesses made
    outside queue macros.  For plain globals these equal the full sets;
    for queue globals they exclude the macro-internal traffic, so a
    macro-only label is never a blind writer (nor a conflicting other),
    while a label mixing a queue op with a raw unsynchronized access to
    the same queue global still participates with that raw access (the
    macro's internal read does not guard, and its discipline does not
    mediate, a raw write alongside it).
    """
    races = []
    fps = list(report.footprints.values())
    accesses: dict = {}
    for fp in fps:
        for name in fp.raw_global_reads | fp.raw_global_writes:
            accesses.setdefault(name, []).append(fp)

    for name in sorted(accesses):
        if name in report.ack_queues:
            continue
        users = accesses[name]
        for fp in users:
            if (name not in fp.raw_global_writes
                    or name in fp.raw_global_reads):
                continue  # not a raw write, or a raw RMW — not blind
            for other in users:
                if other.process == fp.process:
                    continue
                # Reset-synchronized pairs: the crash orders them.
                if (other.process in fp.crash_targets
                        or fp.process in other.crash_targets):
                    continue
                if name in other.raw_global_writes:
                    kind = "write-write"
                elif name in other.raw_global_reads:
                    kind = "read-write"
                else:  # pragma: no cover - accesses index guarantees one
                    continue
                races.append(Race(
                    global_name=name,
                    writer=(fp.process, fp.label),
                    other=(other.process, other.label,
                           "write" if name in other.raw_global_writes
                           else "read"),
                    kind=kind))
    races.sort(key=lambda r: (r.global_name, r.writer, r.other))
    return races
