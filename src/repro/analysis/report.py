"""Findings and reporters for the spec/NADIR static analyzer.

Every lint rule emits :class:`Finding`s; :func:`render_text` and
:func:`render_json` turn a batch of them into the two CLI output
formats.  Severities:

* ``error`` — the meta-level property the checker (or the P1/P3 proof
  argument) depends on is violated; a "verified" verdict over this
  artifact is untrustworthy.
* ``warning`` — suspicious but not soundness-breaking (dead labels,
  unused declarations, incomplete-exploration caveats).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


ERROR = "error"
WARNING = "warning"

#: Rule identifiers (one per check class).
POR_UNSOUND_LOCAL = "por-unsound-local"
ACK_READ_WITHOUT_POP = "ack-read-without-pop"
POP_WITHOUT_PEEK = "pop-without-peek"
DESTRUCTIVE_GET_ON_ACK_QUEUE = "destructive-get-on-ack-queue"
ATOMICITY_RACE = "cross-label-atomicity-race"
CROSS_PROCESS_RACE = "cross-process-race"
GOTO_UNDEFINED_LABEL = "goto-undefined-label"
UNREACHABLE_LABEL = "unreachable-label"
NONDAEMON_NO_TERMINATION = "nondaemon-no-termination"
UNDECLARED_VARIABLE = "undeclared-variable"
UNUSED_VARIABLE = "unused-variable"
INCOMPLETE_EFFECTS = "incomplete-effects"

ALL_RULES = (
    POR_UNSOUND_LOCAL,
    ACK_READ_WITHOUT_POP,
    POP_WITHOUT_PEEK,
    DESTRUCTIVE_GET_ON_ACK_QUEUE,
    ATOMICITY_RACE,
    CROSS_PROCESS_RACE,
    GOTO_UNDEFINED_LABEL,
    UNREACHABLE_LABEL,
    NONDAEMON_NO_TERMINATION,
    UNDECLARED_VARIABLE,
    UNUSED_VARIABLE,
    INCOMPLETE_EFFECTS,
)


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a (process, label) site."""

    rule: str
    severity: str
    target: str          # spec or program name
    process: str         # "" for spec-wide findings
    label: str           # "" for process-wide findings
    message: str

    @property
    def site(self) -> str:
        """Human-readable anchor."""
        if self.process and self.label:
            return f"{self.process}.{self.label}"
        return self.process or "<spec>"

    def render(self) -> str:
        return (f"{self.severity}[{self.rule}] {self.target} "
                f"{self.site}: {self.message}")


@dataclass
class AnalysisResult:
    """All findings for one analyzed artifact."""

    target: str
    findings: list = field(default_factory=list)
    #: False when effect inference hit its state bound, in which case
    #: absence-style rules (unreachable/unused/termination) were
    #: skipped rather than risk false positives.
    complete: bool = True
    states_explored: int = 0

    @property
    def ok(self) -> bool:
        """No error-severity findings."""
        return not self.errors

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == WARNING]

    def by_rule(self, rule: str) -> list:
        return [f for f in self.findings if f.rule == rule]


def render_text(results) -> str:
    """Human-readable report over one or more AnalysisResults."""
    lines = []
    total_errors = total_warnings = 0
    for result in results:
        coverage = ("complete" if result.complete
                    else "bounded — absence rules skipped")
        lines.append(f"== {result.target} "
                     f"({result.states_explored} states, {coverage}) ==")
        if not result.findings:
            lines.append("  clean")
        for finding in result.findings:
            lines.append("  " + finding.render())
        total_errors += len(result.errors)
        total_warnings += len(result.warnings)
    lines.append(f"{len(list(results))} artifact(s): "
                 f"{total_errors} error(s), {total_warnings} warning(s)")
    return "\n".join(lines)


def render_json(results) -> str:
    """Machine-readable report (one JSON document)."""
    payload = []
    for result in results:
        payload.append({
            "target": result.target,
            "ok": result.ok,
            "complete": result.complete,
            "states_explored": result.states_explored,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "process": f.process,
                    "label": f.label,
                    "message": f.message,
                }
                for f in result.findings
            ],
        })
    return json.dumps(payload, indent=2)
