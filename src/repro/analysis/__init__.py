"""Static analysis ("speclint") for specs and NADIR programs.

The model checker's §3.7 optimizations and the paper's P1/P3 proof
arguments rest on meta-level assumptions about the artifacts being
checked: ample-set hints must really be local, ack queues must follow
the peek-then-pop discipline, and shared state must not be acted on
across atomic-step boundaries without re-validation (§3.9).  This
package checks those assumptions *about* the specification rather than
properties *of* its executions:

* :func:`analyze_spec` — effect inference over a bounded reachable
  frontier (:mod:`repro.analysis.effects`) feeding the lint pass
  pipeline (:mod:`repro.analysis.rules`);
* :func:`analyze_program` — the same rule classes computed purely
  statically over a NADIR AST (:mod:`repro.analysis.nadir_rules`);
* :func:`verify_por_hints` — the subset the checker itself calls to
  reject unsound ``local=True`` hints before exploration.
"""

from __future__ import annotations

from ..nadir.ast_nodes import Program
from ..spec.lang import Spec
from .effects import EffectCtx, EffectReport, StepEffect, infer_effects
from .nadir_rules import analyze_program
from .report import (
    ACK_READ_WITHOUT_POP,
    ALL_RULES,
    ATOMICITY_RACE,
    DESTRUCTIVE_GET_ON_ACK_QUEUE,
    ERROR,
    GOTO_UNDEFINED_LABEL,
    NONDAEMON_NO_TERMINATION,
    POP_WITHOUT_PEEK,
    POR_UNSOUND_LOCAL,
    UNDECLARED_VARIABLE,
    UNREACHABLE_LABEL,
    UNUSED_VARIABLE,
    WARNING,
    AnalysisResult,
    Finding,
    render_json,
    render_text,
)
from .rules import SPEC_PASSES, check_por_soundness, run_spec_passes

__all__ = [
    "analyze_spec",
    "analyze_program",
    "verify_por_hints",
    "infer_effects",
    "EffectCtx",
    "EffectReport",
    "StepEffect",
    "AnalysisResult",
    "Finding",
    "render_text",
    "render_json",
    "ERROR",
    "WARNING",
    "ALL_RULES",
    "POR_UNSOUND_LOCAL",
    "ACK_READ_WITHOUT_POP",
    "POP_WITHOUT_PEEK",
    "DESTRUCTIVE_GET_ON_ACK_QUEUE",
    "ATOMICITY_RACE",
    "GOTO_UNDEFINED_LABEL",
    "UNREACHABLE_LABEL",
    "NONDAEMON_NO_TERMINATION",
    "UNDECLARED_VARIABLE",
    "UNUSED_VARIABLE",
    "SPEC_PASSES",
]


def analyze_spec(spec: Spec, max_states: int = 4000) -> AnalysisResult:
    """Infer effects for a spec and run the full lint pass pipeline."""
    report = infer_effects(spec, max_states=max_states)
    return AnalysisResult(
        target=spec.name,
        findings=run_spec_passes(report),
        complete=report.complete,
        states_explored=report.states_explored,
    )


def verify_por_hints(spec: Spec, max_states: int = 4000) -> list:
    """Findings for unsound ``local=True`` ample-set hints only.

    Called by :class:`repro.spec.checker.ModelChecker` before it trusts
    the hints: POR with an unsound hint silently drops interleavings,
    so the hints must be validated against observed effects first.
    """
    if not any(step.local for process in spec.processes
               for step in process.steps):
        return []
    report = infer_effects(spec, max_states=max_states)
    return check_por_soundness(report)
