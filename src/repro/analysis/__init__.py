"""Static analysis ("speclint") for specs and NADIR programs.

The model checker's §3.7 optimizations and the paper's P1/P3 proof
arguments rest on meta-level assumptions about the artifacts being
checked: ample-set hints must really be local, ack queues must follow
the peek-then-pop discipline, and shared state must not be acted on
across atomic-step boundaries without re-validation (§3.9).  This
package checks those assumptions *about* the specification rather than
properties *of* its executions:

* :func:`analyze_spec` — effect inference over a bounded reachable
  frontier (:mod:`repro.analysis.effects`) feeding the lint pass
  pipeline (:mod:`repro.analysis.rules`);
* :func:`analyze_program` — the same rule classes computed purely
  statically over a NADIR AST (:mod:`repro.analysis.nadir_rules`);
* :func:`verify_por_hints` — the subset the checker itself calls to
  reject unsound ``local=True`` hints before exploration.
"""

from __future__ import annotations

from ..nadir.ast_nodes import Program
from ..spec.lang import Spec
from .deps import (
    Footprint,
    FootprintReport,
    cross_process_races,
    footprints_from_report,
    independent,
    spec_footprints,
)
from .effects import (
    EffectCtx,
    EffectReport,
    StepEffect,
    infer_effects,
    infer_effects_cached,
)
from .nadir_rules import analyze_program
from .report import (
    ACK_READ_WITHOUT_POP,
    ALL_RULES,
    ATOMICITY_RACE,
    CROSS_PROCESS_RACE,
    DESTRUCTIVE_GET_ON_ACK_QUEUE,
    ERROR,
    GOTO_UNDEFINED_LABEL,
    INCOMPLETE_EFFECTS,
    NONDAEMON_NO_TERMINATION,
    POP_WITHOUT_PEEK,
    POR_UNSOUND_LOCAL,
    UNDECLARED_VARIABLE,
    UNREACHABLE_LABEL,
    UNUSED_VARIABLE,
    WARNING,
    AnalysisResult,
    Finding,
    render_json,
    render_text,
)
from .rules import SPEC_PASSES, check_por_soundness, run_spec_passes

__all__ = [
    "analyze_spec",
    "analyze_program",
    "verify_por_hints",
    "infer_effects",
    "infer_effects_cached",
    "spec_footprints",
    "footprints_from_report",
    "cross_process_races",
    "independent",
    "Footprint",
    "FootprintReport",
    "EffectCtx",
    "EffectReport",
    "StepEffect",
    "AnalysisResult",
    "Finding",
    "render_text",
    "render_json",
    "ERROR",
    "WARNING",
    "ALL_RULES",
    "POR_UNSOUND_LOCAL",
    "ACK_READ_WITHOUT_POP",
    "POP_WITHOUT_PEEK",
    "DESTRUCTIVE_GET_ON_ACK_QUEUE",
    "ATOMICITY_RACE",
    "CROSS_PROCESS_RACE",
    "GOTO_UNDEFINED_LABEL",
    "UNREACHABLE_LABEL",
    "NONDAEMON_NO_TERMINATION",
    "UNDECLARED_VARIABLE",
    "UNUSED_VARIABLE",
    "INCOMPLETE_EFFECTS",
    "SPEC_PASSES",
]


def analyze_spec(spec: Spec, max_states: int = 4000,
                 deps: bool = False, skip: tuple = ()) -> AnalysisResult:
    """Infer effects for a spec and run the full lint pass pipeline.

    ``deps=True`` adds the footprint-based cross-process race detector
    (``lint --deps``); ``skip`` drops named passes (the ablation
    registry's lint toggle surface — see ``run_spec_passes``).
    """
    report = infer_effects_cached(spec, max_states=max_states)
    return AnalysisResult(
        target=spec.name,
        findings=run_spec_passes(report, deps=deps, skip=skip),
        complete=report.complete,
        states_explored=report.states_explored,
    )


def verify_por_hints(spec: Spec, max_states: int = 4000) -> list:
    """Findings for unsound ``local=True`` ample-set hints only.

    Called by :class:`repro.spec.checker.ModelChecker` before it trusts
    the hints: POR with an unsound hint silently drops interleavings,
    so the hints must be validated against observed effects first.
    Inference is memoized per spec object, so repeated ``check()``
    calls on the same spec pay for it once.
    """
    if not any(step.local for process in spec.processes
               for step in process.steps):
        return []
    report = infer_effects_cached(spec, max_states=max_states)
    return check_por_soundness(report)
