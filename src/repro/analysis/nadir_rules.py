"""Static analysis of NADIR programs (AST-level "speclint").

NADIR :class:`~repro.nadir.ast_nodes.Program`s are real ASTs, so the
same rule classes the effect-inference passes apply to opaque Python
specs can here be computed purely statically — and run *before*
``codegen`` emits deployable components, vetting the artifact that
ships.  Block effects (reads, writes, queue-op sequences per path,
successors) are derived by walking statements; the rule logic mirrors
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nadir.ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LabeledBlock,
    LocalVar,
    Prim,
    ProcessDef,
    Program,
    SetGlobal,
    SetLocal,
    SkipStmt,
)
from . import report as R
from .rules import _inevitable, _reachability

__all__ = ["analyze_program", "block_effects"]

#: Sentinel successor for process termination.
_DONE = None


@dataclass
class BlockEffect:
    """Statically derived effects of one labeled block."""

    process: str
    label: str
    global_reads: set = field(default_factory=set)
    global_writes: set = field(default_factory=set)
    #: Accesses made by non-queue statements (expressions, SetGlobal) —
    #: ``global_reads``/``global_writes`` minus the queue-statement
    #: traffic.  Mirrors :class:`repro.analysis.effects.StepEffect`.
    raw_global_reads: set = field(default_factory=set)
    raw_global_writes: set = field(default_factory=set)
    local_reads: set = field(default_factory=set)
    local_writes: set = field(default_factory=set)
    #: One ordered queue-op tuple per static path through the block.
    queue_sequences: set = field(default_factory=set)
    blocking: bool = False
    goto_targets: set = field(default_factory=set)
    #: Successor labels: goto targets taken, None for done, or the
    #: program-order fallthrough for paths without a jump.
    next_labels: set = field(default_factory=set)
    has_done: bool = False

    @property
    def queue_ops(self) -> set:
        return {op for seq in self.queue_sequences for op in seq}

    def queues(self, *kinds: str) -> set:
        return {q for kind, q in self.queue_ops if kind in kinds}


def _expr_reads(expr: Expr, effect: BlockEffect) -> None:
    if isinstance(expr, Const):
        return
    if isinstance(expr, Global):
        effect.global_reads.add(expr.name)
        effect.raw_global_reads.add(expr.name)  # expressions never macro
        return
    if isinstance(expr, LocalVar):
        effect.local_reads.add(expr.name)
        return
    if isinstance(expr, (Prim, HelperCall)):
        for arg in expr.args:
            _expr_reads(arg, effect)
        return
    raise TypeError(f"unknown expression {expr!r}")


def _walk(stmts, effect: BlockEffect, paths: list) -> list:
    """Fold statements into ``effect``; thread per-path op sequences.

    ``paths`` is a list of (ops, jump) pairs for the statement prefix;
    a ``jump`` other than the sentinel ``"fall"`` ends the path.
    """
    for stmt in stmts:
        live = [(ops, jump) for ops, jump in paths if jump == "fall"]
        ended = [(ops, jump) for ops, jump in paths if jump != "fall"]
        if isinstance(stmt, SkipStmt):
            continue
        if isinstance(stmt, (SetGlobal, SetLocal, CallStmt, AwaitStmt,
                             FifoPutStmt)):
            if isinstance(stmt, SetGlobal):
                effect.global_writes.add(stmt.name)
                effect.raw_global_writes.add(stmt.name)
                _expr_reads(stmt.value, effect)
            elif isinstance(stmt, SetLocal):
                effect.local_writes.add(stmt.name)
                _expr_reads(stmt.value, effect)
            elif isinstance(stmt, CallStmt):
                _expr_reads(stmt.call, effect)
            elif isinstance(stmt, AwaitStmt):
                effect.blocking = True
                _expr_reads(stmt.condition, effect)
            else:  # FifoPutStmt
                effect.global_reads.add(stmt.queue)
                effect.global_writes.add(stmt.queue)
                _expr_reads(stmt.value, effect)
                live = [(ops + (("fifo_put", stmt.queue),), jump)
                        for ops, jump in live]
            paths = ended + live
            continue
        if isinstance(stmt, FifoGetStmt):
            effect.blocking = True
            effect.global_reads.add(stmt.queue)
            effect.global_writes.add(stmt.queue)
            effect.local_writes.add(stmt.target)
            paths = ended + [(ops + (("fifo_get", stmt.queue),), jump)
                             for ops, jump in live]
            continue
        if isinstance(stmt, AckReadStmt):
            effect.blocking = True
            effect.global_reads.add(stmt.queue)
            effect.local_writes.add(stmt.target)
            paths = ended + [(ops + (("ack_read", stmt.queue),), jump)
                             for ops, jump in live]
            continue
        if isinstance(stmt, AckPopStmt):
            effect.global_reads.add(stmt.queue)
            effect.global_writes.add(stmt.queue)
            paths = ended + [(ops + (("ack_pop", stmt.queue),), jump)
                             for ops, jump in live]
            continue
        if isinstance(stmt, GotoStmt):
            effect.goto_targets.add(stmt.label)
            paths = ended + [(ops, stmt.label) for ops, _ in live]
            continue
        if isinstance(stmt, DoneStmt):
            effect.has_done = True
            paths = ended + [(ops, _DONE) for ops, _ in live]
            continue
        if isinstance(stmt, IfStmt):
            _expr_reads(stmt.condition, effect)
            then_paths = _walk(stmt.then, effect, list(live))
            else_paths = _walk(stmt.orelse, effect, list(live))
            paths = ended + then_paths + else_paths
            continue
        raise TypeError(f"unknown statement {stmt!r}")
    return paths


def block_effects(process: ProcessDef, block: LabeledBlock,
                  default_next) -> BlockEffect:
    """Derive one block's static effects."""
    effect = BlockEffect(process.name, block.label)
    paths = _walk(block.body, effect, [((), "fall")])
    for ops, jump in paths:
        effect.queue_sequences.add(ops)
        effect.next_labels.add(default_next if jump == "fall" else jump)
    return effect


def _program_cfgs(program: Program):
    """Per-process: effects by label + successor graph."""
    per_process = {}
    for process in program.processes:
        effects = {}
        cfg = {}
        for block, default_next in process.blocks_with_default_next():
            effect = block_effects(process, block, default_next)
            effects[block.label] = effect
            cfg[block.label] = set(effect.next_labels)
        per_process[process.name] = (process, effects, cfg)
    return per_process


def _check_static_races(program: Program) -> list:
    """The footprint-based race detector over purely static effects."""
    from .deps import cross_process_races, program_footprint_report

    findings = []
    seen = set()
    for race in cross_process_races(program_footprint_report(program)):
        writer_process, writer_label = race.writer
        other_process, other_label, access = race.other
        key = (race.global_name, race.writer, other_process)
        if key in seen:
            continue
        seen.add(key)
        findings.append(R.Finding(
            R.CROSS_PROCESS_RACE, R.WARNING, program.name,
            writer_process, writer_label,
            f"blind write of shared global {race.global_name!r} "
            f"conflicts with {access} in {other_process}.{other_label} "
            f"({race.kind}) with no queue, RMW or reset "
            "synchronization between the two processes"))
    return findings


def analyze_program(program: Program, deps: bool = False) -> R.AnalysisResult:
    """Run every static rule class over a NADIR program.

    ``deps=True`` adds the footprint-based cross-process race detector
    computed from the same static block effects.
    """
    result = R.AnalysisResult(target=program.name)
    findings = result.findings
    per_process = _program_cfgs(program)
    ack_queues = frozenset(program.ack_queues)

    global_readers: set = set()
    writers_of: dict = {}
    for name, (process, effects, cfg) in per_process.items():
        for effect in effects.values():
            global_readers |= effect.global_reads
            for g in effect.global_writes:
                writers_of.setdefault(g, set()).add(name)

    for name, (process, effects, cfg) in per_process.items():
        labels = set(effects)
        declared_locals = set(process.locals_)
        reachable = _reachability(cfg)
        start = process.blocks[0].label
        live_labels = {start} | reachable.get(start, set())

        for label, effect in effects.items():
            # POR hints (interp honours ProcessDef.local_labels).
            if label in process.local_labels and (
                    effect.global_reads or effect.global_writes
                    or effect.queue_ops or effect.blocking):
                findings.append(R.Finding(
                    R.POR_UNSOUND_LOCAL, R.ERROR, program.name, name,
                    label,
                    "hinted local (ample-set) but touches globals "
                    f"{sorted(effect.global_reads | effect.global_writes)}"
                    " — the checker would skip real interleavings"))
            # goto targets.
            for target in sorted(t for t in effect.goto_targets
                                 if t not in labels):
                findings.append(R.Finding(
                    R.GOTO_UNDEFINED_LABEL, R.ERROR, program.name, name,
                    label, f"goto targets undefined label {target!r}"))
            # declarations.
            for g in sorted(effect.global_reads | effect.global_writes):
                if g not in program.globals_:
                    findings.append(R.Finding(
                        R.UNDECLARED_VARIABLE, R.ERROR, program.name,
                        name, label,
                        f"accesses undeclared global {g!r}"))
            for local in sorted(effect.local_reads | effect.local_writes):
                if local not in declared_locals:
                    findings.append(R.Finding(
                        R.UNDECLARED_VARIABLE, R.ERROR, program.name,
                        name, label,
                        f"accesses undeclared local {local!r}"))
            # queue discipline: destructive get on an ack queue.
            for queue in sorted(effect.queues("fifo_get") & ack_queues):
                findings.append(R.Finding(
                    R.DESTRUCTIVE_GET_ON_ACK_QUEUE, R.ERROR,
                    program.name, name, label,
                    f"destructive fifo_get on ack-discipline queue "
                    f"{queue!r}: a crash after this step loses the item "
                    "(P1/P3 rely on the head surviving until processing "
                    "completed)"))

        # unreachable labels.
        for label in labels - live_labels:
            findings.append(R.Finding(
                R.UNREACHABLE_LABEL, R.WARNING, program.name, name,
                label, "label is never reached from the start label"))

        # termination of non-daemon processes.
        if not process.daemon:
            can_stop = any(
                _DONE in effects[label].next_labels
                for label in live_labels if label in effects)
            if not can_stop:
                findings.append(R.Finding(
                    R.NONDAEMON_NO_TERMINATION, R.ERROR, program.name,
                    name, "",
                    "non-daemon process has no terminating path"))

        # unused locals.
        for local in sorted(declared_locals):
            if not any(local in e.local_reads for e in effects.values()):
                findings.append(R.Finding(
                    R.UNUSED_VARIABLE, R.WARNING, program.name, name, "",
                    f"local variable {local!r} is never read"))

        # ack queues: peek/pop balance on this process's CFG.
        touched = set()
        for effect in effects.values():
            touched |= effect.queues("ack_read", "ack_pop") & ack_queues
        for queue in sorted(touched):
            # A label discharges the peek obligation only when every
            # static path through it pops.
            pop_labels = {
                label for label, e in effects.items()
                if e.queue_sequences
                and all(("ack_pop", queue) in seq
                        for seq in e.queue_sequences)}
            read_labels = {label for label, e in effects.items()
                           if ("ack_read", queue) in e.queue_ops}
            safe = _inevitable(cfg, pop_labels)
            for label in sorted(read_labels - safe):
                findings.append(R.Finding(
                    R.ACK_READ_WITHOUT_POP, R.ERROR, program.name, name,
                    label,
                    f"ack_read on {queue!r} is not followed by ack_pop "
                    "on every path: the head is never released (or "
                    "released only on some branches)"))
            findings.extend(_pop_covered(program, name, effects, cfg,
                                         start, queue))

        # cross-label atomicity races (multi-process programs only).
        for g in sorted({g for e in effects.values()
                         for g in e.global_writes}):
            if len(writers_of.get(g, ())) < 2:
                continue
            read_labels = {label for label, e in effects.items()
                           if g in e.global_reads}
            for label, effect in effects.items():
                if g not in effect.global_writes or g in effect.global_reads:
                    continue
                stale = sorted(l for l in read_labels
                               if l != label and label in reachable[l])
                if stale:
                    findings.append(R.Finding(
                        R.ATOMICITY_RACE, R.ERROR, program.name, name,
                        label,
                        f"writes shared global {g!r} without re-reading "
                        f"it, based on a value read in label "
                        f"{'/'.join(stale)} — another process can "
                        "change it between the two atomic steps "
                        "(§3.9 check-then-act race)"))

    # unused globals.
    for g in program.globals_:
        if g not in global_readers and g not in writers_of:
            findings.append(R.Finding(
                R.UNUSED_VARIABLE, R.WARNING, program.name, "", "",
                f"global variable {g!r} is never used"))

    if deps:
        findings.extend(_check_static_races(program))
    return result


def _pop_covered(program: Program, process_name: str, effects: dict,
                 cfg: dict, start: str, queue: str) -> list:
    """pop-without-peek dataflow, mirroring the dynamic pass."""
    entry = {label: True for label in cfg}
    entry[start] = False
    bad_labels = set()
    changed = True
    while changed:
        changed = False
        for label, effect in effects.items():
            outs = set()
            for sequence in (effect.queue_sequences or {()}):
                fact = entry[label]
                for kind, q in sequence:
                    if q != queue:
                        continue
                    if kind == "ack_read":
                        fact = True
                    elif kind == "ack_pop":
                        if not fact:
                            bad_labels.add(label)
                        fact = False
                    elif kind == "fifo_get":
                        fact = False
                outs.add(fact)
            out = bool(outs) and all(outs)
            for successor in cfg[label]:
                if successor is None or successor not in entry:
                    continue
                merged = entry[successor] and out
                if merged != entry[successor]:
                    entry[successor] = merged
                    changed = True
    return [
        R.Finding(
            R.POP_WITHOUT_PEEK, R.ERROR, program.name, process_name,
            label,
            f"ack_pop on {queue!r} without a covering ack_read on every "
            "path: the pop removes a head no peek claimed")
        for label in sorted(bad_labels)
    ]
