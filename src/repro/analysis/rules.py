"""Lint rules over inferred step effects ("speclint" passes).

Each pass maps an :class:`~repro.analysis.effects.EffectReport` to
:class:`~repro.analysis.report.Finding`s.  The passes protect the
meta-level assumptions the model checker and the paper's proof
arguments rest on:

* :func:`check_por_soundness` — §3.7 partial-order reduction: a
  ``Step.local=True`` hint makes the checker expand that step alone
  (an ample set of size one); a hint on a step with global effects
  silently removes interleavings and can certify buggy specs.
* :func:`check_queue_discipline` — P1/P3: crash recovery relies on
  the peek-then-pop discipline (the head survives until processing
  completed); destructive gets, unbalanced peeks and blind pops all
  break the argument.
* :func:`check_atomicity_races` — the §3.9 bug class: state read in
  one label, acted on in a later label without re-validation, while
  another process can change it in between.
* :func:`check_control_flow` — structural sanity: goto targets,
  reachability, termination, declarations.
"""

from __future__ import annotations

from ..spec.lang import Spec
from . import report as R
from .effects import EffectReport, StepEffect

__all__ = [
    "check_por_soundness",
    "check_queue_discipline",
    "check_atomicity_races",
    "check_cross_process_races",
    "check_control_flow",
    "check_effect_completeness",
    "run_spec_passes",
]


def _proc(spec: Spec, name: str):
    return spec.processes[spec.process_index[name]]


# -- POR soundness -----------------------------------------------------------------
def check_por_soundness(report: EffectReport) -> list:
    """Reject ``local=True`` hints contradicted by observed effects."""
    findings = []
    spec = report.spec
    for process in spec.processes:
        for step in process.steps:
            if not step.local:
                continue
            effect = report.effect(process.name, step.label)
            if effect.is_local:
                continue
            reasons = []
            if effect.global_reads:
                reasons.append(
                    f"reads globals {sorted(effect.global_reads)}")
            if effect.global_writes:
                reasons.append(
                    f"writes globals {sorted(effect.global_writes)}")
            if effect.queue_ops:
                reasons.append(
                    "performs queue ops "
                    f"{sorted(set(effect.queue_ops))}")
            if effect.resets:
                reasons.append(f"resets peers {sorted(effect.resets)}")
            if effect.blocked:
                reasons.append("has a blocking guard")
            if effect.choice_arities:
                reasons.append("makes nondeterministic choices")
            if effect.undeclared:
                reasons.append("touches undeclared variables")
            findings.append(R.Finding(
                R.POR_UNSOUND_LOCAL, R.ERROR, spec.name,
                process.name, step.label,
                "declared local=True (ample-set hint) but "
                + "; ".join(reasons)
                + " — the checker would skip real interleavings"))
    return findings


# -- queue discipline --------------------------------------------------------------
def _inevitable(cfg: dict, good: set) -> set:
    """Labels from which every path eventually hits a ``good`` label.

    Greatest-fixpoint on the observed control-flow graph: a label
    qualifies when it is good itself, or when it has successors and
    every successor qualifies (termination — successor ``None`` — does
    not qualify: the obligation was dropped).
    """
    qualifying = set(good)
    changed = True
    while changed:
        changed = False
        for label, successors in cfg.items():
            if label in qualifying or not successors:
                continue
            if all(s is not None and s in qualifying for s in successors):
                qualifying.add(label)
                changed = True
    return qualifying


def check_queue_discipline(report: EffectReport) -> list:
    """P1/P3: peek-then-pop on every ack-discipline queue."""
    findings = []
    spec = report.spec
    ack_queues = report.ack_queues()
    if not ack_queues:
        return findings

    for process in spec.processes:
        effects = report.process_effects(process.name)
        cfg = report.cfg[process.name]

        # 1. Destructive get on an ack-discipline queue.
        for effect in effects:
            for queue in sorted(effect.queues("fifo_get") & ack_queues):
                findings.append(R.Finding(
                    R.DESTRUCTIVE_GET_ON_ACK_QUEUE, R.ERROR, spec.name,
                    process.name, effect.label,
                    f"destructive fifo_get on ack-discipline queue "
                    f"{queue!r}: a crash after this step loses the "
                    "item (P1/P3 rely on the head surviving until "
                    "processing completed)"))

        touched = set()
        for effect in effects:
            touched |= effect.queues("ack_read", "ack_pop") & ack_queues
        for queue in sorted(touched):
            # 2. Every peek must make the balancing pop inevitable.  A
            # label discharges the obligation only when *every* path
            # through it pops (a branch-only pop leaves paths that
            # loop back with the head still claimed).
            pop_labels = {
                e.label for e in effects
                if e.queue_sequences
                and all(("ack_pop", queue) in seq
                        for seq in e.queue_sequences)}
            read_labels = {e.label for e in effects
                           if ("ack_read", queue) in e.queue_ops}
            safe = _inevitable(cfg, pop_labels)
            for label in sorted(read_labels):
                if label not in safe:
                    findings.append(R.Finding(
                        R.ACK_READ_WITHOUT_POP, R.ERROR, spec.name,
                        process.name, label,
                        f"ack_read on {queue!r} is not followed by "
                        "ack_pop on every path: the head is never "
                        "released (or released only on some branches)"))

            # 3. No pop without a covering peek: forward dataflow of
            # the "peeked, not yet popped" fact over the CFG.
            findings.extend(_check_pop_covered(
                report, process.name, queue))
    return findings


def _check_pop_covered(report: EffectReport, process: str,
                       queue: str) -> list:
    """Flag ack_pops not preceded by an ack_read of the same queue.

    Meet-over-paths dataflow: at entry of the process's start label the
    queue is unpeeked; within a label the observed op sequences update
    the fact; at a join the fact must hold on *every* incoming path.
    """
    spec = report.spec
    process_def = _proc(spec, process)
    cfg = report.cfg[process]
    effects = {e.label: e for e in report.process_effects(process)}

    def transfer(effect: StepEffect, peeked: bool):
        """Apply each observed op sequence; returns (out-facts, bad)."""
        outs, bad = set(), False
        sequences = effect.queue_sequences or {()}
        for sequence in sequences:
            fact = peeked
            for kind, q in sequence:
                if q != queue:
                    continue
                if kind == "ack_read":
                    fact = True
                elif kind == "ack_pop":
                    if not fact:
                        bad = True
                    fact = False
                elif kind == "fifo_get":
                    fact = False
            outs.add(fact)
        return outs, bad

    # Entry fact per label: True only if *every* observed path into the
    # label has an outstanding peek. Initialize optimistically (True)
    # except the entry points, then iterate to the least fixpoint.
    # Entry points are the start label plus any label another process
    # resets this one to (crash recovery): both can be entered with no
    # outstanding peek.
    entry = {label: True for label in cfg}
    entry_points = {process_def.start}
    for (other, _label), other_effect in report.effects.items():
        if other != process:
            entry_points.update(
                pc for target, pc in other_effect.resets
                if target == process)
    for label in entry_points & set(entry):
        entry[label] = False
    changed = True
    bad_labels = set()
    while changed:
        changed = False
        for label in cfg:
            effect = effects[label]
            if not effect.executed and not effect.queue_sequences:
                continue  # never ran: no op evidence to propagate
            outs, bad = transfer(effect, entry[label])
            if bad:
                bad_labels.add(label)
            out = bool(outs) and all(outs)
            for successor in cfg[label]:
                if successor is None or successor not in entry:
                    continue
                merged = entry[successor] and out
                if merged != entry[successor]:
                    entry[successor] = merged
                    changed = True
    return [
        R.Finding(
            R.POP_WITHOUT_PEEK, R.ERROR, spec.name, process, label,
            f"ack_pop on {queue!r} without a covering ack_read on every "
            "path: the pop removes a head no peek claimed")
        for label in sorted(bad_labels)
    ]


# -- cross-label atomicity races ----------------------------------------------------
def check_atomicity_races(report: EffectReport) -> list:
    """The §3.9 bug class: check-then-act split across atomic steps.

    A label M *blindly* writes global ``g`` (no same-label re-read)
    while an earlier label L of the same process read ``g`` — and some
    other process also writes ``g``, so the value L observed can be
    stale by the time M acts on it.  Shipped specs avoid this by
    read-modify-write within one label or by re-validating guards.
    """
    findings = []
    spec = report.spec
    writers_of: dict = {}
    for (process, _label), effect in report.effects.items():
        for name in effect.global_writes:
            writers_of.setdefault(name, set()).add(process)

    for process in spec.processes:
        effects = report.process_effects(process.name)
        cfg = report.cfg[process.name]
        reachable_from = _reachability(cfg)
        for name in sorted({n for e in effects for n in e.global_writes}):
            if len(writers_of.get(name, ())) < 2:
                continue  # single-writer globals cannot race this way
            read_labels = {e.label for e in effects
                           if name in e.global_reads}
            blind_writes = [e for e in effects
                            if name in e.global_writes
                            and name not in e.global_reads]
            for effect in blind_writes:
                stale_sources = sorted(
                    label for label in read_labels
                    if label != effect.label
                    and effect.label in reachable_from[label])
                if stale_sources:
                    findings.append(R.Finding(
                        R.ATOMICITY_RACE, R.ERROR, spec.name,
                        process.name, effect.label,
                        f"writes shared global {name!r} without "
                        "re-reading it, based on a value read in label "
                        f"{'/'.join(stale_sources)!s} — another process "
                        "can change it between the two atomic steps "
                        "(§3.9 check-then-act race)"))
    return findings


def _reachability(cfg: dict) -> dict:
    """label -> set of labels reachable in one or more steps."""
    reach = {}
    for label in cfg:
        seen: set = set()
        stack = [s for s in cfg[label] if s is not None]
        while stack:
            node = stack.pop()
            if node in seen or node not in cfg:
                continue
            seen.add(node)
            stack.extend(s for s in cfg[node] if s is not None)
        reach[label] = seen
    return reach


# -- control flow -------------------------------------------------------------------
def check_control_flow(report: EffectReport) -> list:
    """Goto targets, reachability, termination and declarations."""
    findings = []
    spec = report.spec
    for process in spec.processes:
        labels = set(process.step_by_label)
        for step in process.steps:
            effect = report.effect(process.name, step.label)
            # 1. goto targets must exist.
            for target in sorted(t for t in effect.goto_targets
                                 if t is not None and t not in labels):
                findings.append(R.Finding(
                    R.GOTO_UNDEFINED_LABEL, R.ERROR, spec.name,
                    process.name, step.label,
                    f"goto targets undefined label {target!r}"))
            # 2. undeclared variable accesses.
            for scope, name in sorted(effect.undeclared):
                findings.append(R.Finding(
                    R.UNDECLARED_VARIABLE, R.ERROR, spec.name,
                    process.name, step.label,
                    f"accesses undeclared {scope} variable {name!r}"))

        if not report.complete:
            continue  # absence-style rules need the full space

        # 3. unreachable labels.
        for step in process.steps:
            if step.label not in report.reachable_labels[process.name]:
                findings.append(R.Finding(
                    R.UNREACHABLE_LABEL, R.WARNING, spec.name,
                    process.name, step.label,
                    "label is never reached from the initial state"))

        # 4. non-daemon processes must be able to terminate.
        if not process.daemon and not report.terminates[process.name]:
            findings.append(R.Finding(
                R.NONDAEMON_NO_TERMINATION, R.ERROR, spec.name,
                process.name, "",
                "non-daemon process has no terminating path: every "
                "final state will be reported as a deadlock"))

        # 5. unused locals (declared, never read anywhere).
        for local in process.locals_:
            read = any(local in report.effect(process.name, s.label).local_reads
                       for s in process.steps)
            if not read and (process.name, local) not in \
                    report.property_local_reads:
                findings.append(R.Finding(
                    R.UNUSED_VARIABLE, R.WARNING, spec.name,
                    process.name, "",
                    f"local variable {local!r} is never read"))

    # 6. unused globals (never read by any step or property).
    if report.complete:
        for name in spec.global_names:
            read = any(name in effect.global_reads
                       for effect in report.effects.values())
            if not read and name not in report.property_reads:
                findings.append(R.Finding(
                    R.UNUSED_VARIABLE, R.WARNING, spec.name, "", "",
                    f"global variable {name!r} is never read by any "
                    "step or property"))
    return findings


# -- footprint-based cross-process races --------------------------------------------
def check_cross_process_races(report: EffectReport) -> list:
    """Generalized race pass over dependence footprints (``lint --deps``).

    Conflicting cross-label W/W and R/W pairs on shared globals outside
    the ack-queue discipline — the :mod:`repro.analysis.deps` rule, a
    superset of the hand-enumerated §3.9 cases.  Warning severity: a
    flagged pair is unsynchronized shared-state traffic, which is
    suspicious but may still be correct under spec-level reasoning the
    analyzer cannot see (strict mode treats it as a failure).
    """
    from .deps import cross_process_races, footprints_from_report

    findings = []
    fr = footprints_from_report(report)
    seen = set()
    for race in cross_process_races(fr):
        writer_process, writer_label = race.writer
        other_process, other_label, access = race.other
        key = (race.global_name, race.writer, other_process)
        if key in seen:
            continue  # one finding per (global, writer, peer process)
        seen.add(key)
        findings.append(R.Finding(
            R.CROSS_PROCESS_RACE, R.WARNING, report.spec.name,
            writer_process, writer_label,
            f"blind write of shared global {race.global_name!r} "
            f"conflicts with {access} in {other_process}.{other_label} "
            f"({race.kind}) with no queue, RMW or reset "
            "synchronization between the two processes"))
    return findings


# -- inference coverage -------------------------------------------------------------
def check_effect_completeness(report: EffectReport) -> list:
    """Make truncated inference loud instead of silently weaker.

    When the bounded exploration stops early, every absence-based rule
    (unreachable/unused/termination, and soundness verdicts derived
    from *not* observing an effect) is silently skipped or weakened.
    Strict lint runs must fail in that situation rather than report a
    clean bill of health they cannot back.
    """
    if report.complete:
        return []
    return [R.Finding(
        R.INCOMPLETE_EFFECTS, R.WARNING, report.spec.name, "", "",
        f"effect inference stopped at {report.states_explored} states "
        "without exhausting the reachable space: absence-based rules "
        "were skipped and footprints are not sound — rerun with a "
        "larger --max-states for full coverage")]


#: The default pass pipeline, in reporting order.
SPEC_PASSES = (
    check_por_soundness,
    check_queue_discipline,
    check_atomicity_races,
    check_control_flow,
    check_effect_completeness,
)


def run_spec_passes(report: EffectReport, deps: bool = False,
                    skip: tuple = ()) -> list:
    """Run every pass; findings in pipeline order.

    ``deps=True`` additionally runs the footprint-based cross-process
    race detector (the ``lint --deps`` pipeline).  ``skip`` names
    passes (function ``__name__``s, e.g. ``check_queue_discipline``)
    to leave out — the toggle surface the ablation registry uses to
    measure what each pass alone contributes.
    """
    findings = []
    for pass_fn in SPEC_PASSES:
        if pass_fn.__name__ in skip:
            continue
        findings.extend(pass_fn(report))
    if deps and "check_cross_process_races" not in skip:
        findings.extend(check_cross_process_races(report))
    return findings
