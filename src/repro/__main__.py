"""Command-line entry point: ``python -m repro <experiment> [--full]``."""

from .cli import main

if __name__ == "__main__":
    main()
