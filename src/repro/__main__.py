"""Command-line entry point: ``python -m repro <experiment> [--full]``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
