"""Baseline controllers: PR, PRUp, NoRec and an ODL-like comparator."""

from .odl import OdlController, OdlDagScheduler, OdlTopoEventHandler
from .pr import (
    DeadlockSweeper,
    NoRecController,
    PrController,
    PrTopoEventHandler,
    PrUpController,
    PrUpTopoEventHandler,
    PrWorker,
    Reconciler,
    fix_switch_against_snapshot,
)

__all__ = [
    "DeadlockSweeper",
    "NoRecController",
    "OdlController",
    "OdlDagScheduler",
    "OdlTopoEventHandler",
    "PrController",
    "PrTopoEventHandler",
    "PrUpController",
    "PrUpTopoEventHandler",
    "PrWorker",
    "Reconciler",
    "fix_switch_against_snapshot",
]
