"""ODL-like baseline: PR plus the incident-report race conditions.

Models the two OpenDaylight behaviours the paper's §1.1 incidents and
Fig. A.2 experiment exercise:

* **Unordered status-event handling** — switch failure and recovery are
  handled by separate threads; each event is applied after an
  independent random processing delay, so a rapid failure→recovery pair
  can be applied in the wrong order, leaving the controller convinced a
  healthy switch is down (ODL incident 1).
* **No stale-state cleanup** — the DE app fails to clean up state when
  DAGs are replaced: DAG deletion never generates cleanup OPs, so stale
  entries persist in the dataplane (blackholing traffic) until periodic
  reconciliation deletes them (Fig. A.2's behaviour).
"""

from __future__ import annotations

from ..core.scheduler import DagScheduler
from ..core.types import DagRequest, DagRequestKind
from ..net.messages import SwitchStatusMsg
from ..sim import RandomStreams
from .pr import PrController, PrTopoEventHandler

__all__ = ["OdlTopoEventHandler", "OdlDagScheduler", "OdlController"]


class OdlTopoEventHandler(PrTopoEventHandler):
    """Status events handled by racing threads with random delays."""

    #: Maximum extra processing delay per status event (seconds).
    event_jitter = 0.4

    def __init__(self, env, state, config):
        super().__init__(env, state, config)
        self._streams = RandomStreams(17).child("odl-topo")

    def main(self):
        while True:
            event = yield self.queue.read()
            self.queue.pop()
            if isinstance(event, SwitchStatusMsg):
                # Hand the event to an independent "thread": it lands
                # after a random delay, racing other status events.
                self.env.process(self._handle_later(event),
                                 name="odl-status-thread")
            else:
                yield self.env.timeout(self.config.topo_event_cost)
                self._dispatch(event)

    def _handle_later(self, event: SwitchStatusMsg):
        yield self.env.timeout(
            self._streams.uniform(0.0, self.event_jitter))
        self._dispatch(event)

    def _dispatch(self, event) -> None:
        from ..net.messages import SwitchStatus

        if isinstance(event, SwitchStatusMsg):
            if event.status is SwitchStatus.DOWN:
                self._switch_down(event)
            else:
                self._switch_up(event)
        else:
            from ..core.events import SnapshotEvent

            if isinstance(event, SnapshotEvent):
                self._directed_reconcile(event)


class OdlDagScheduler(DagScheduler):
    """DAG deletion without cleanup: stale entries linger (Fig. A.2)."""

    def _delete(self, request: DagRequest) -> None:
        if request.cleanup:
            request = DagRequest(DagRequestKind.DELETE,
                                 dag_id=request.dag_id, cleanup=False,
                                 app=request.app)
        super()._delete(request)


class OdlController(PrController):
    """The ODL-like comparator used in Fig. 14 / Fig. A.2."""

    topo_handler_cls = OdlTopoEventHandler
    scheduler_cls = OdlDagScheduler
