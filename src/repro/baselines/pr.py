"""PR: the periodic-reconciliation baseline controller.

The paper's PR baseline is "a simplified version of ZENITH-core that is
robust to concurrency errors but relies on periodic reconciliation to be
correct under switch or component failures" (§6).  Concretely, relative
to ZENITH-core:

* **Worker Pool** uses the *initial* specification (paper Listing 1):
  destructive dequeue, no state recording, and action-before-state
  ordering — a crash between dequeue and completion loses the OP.
* **Topo Event Handler** marks a recovered switch UP without wiping it
  and without reconciling its OP state: OPs the controller *deems*
  installed may be gone (complete failures) and hidden entries may
  survive (partial failures / in-flight races).
* A **Reconciler** runs every ``config.reconciliation_period`` seconds
  (30 s in Orion): it reads every healthy switch's table in parallel,
  pushes all retrieved entries through the NIB under the write lock
  (the Fig. 4(b) bottleneck — event processing stalls behind it),
  then re-installs missing intended entries and deletes alien ones.
* A **DeadlockSweeper** implements PR's "timeout, much shorter than the
  reconciliation interval" (§6.1) that unsticks OPs lost to component
  crashes or state races.

Variants: :class:`PrUpController` additionally reconciles a switch
immediately when it comes back up (the paper's PRUp), and
:class:`NoRecController` is the same implementation with reconciliation
disabled (used in Fig. 11 to isolate reconciliation interference).
"""

from __future__ import annotations

from typing import Optional

from ..core.config import ControllerConfig
from ..core.controller import ZenithController
from ..core.events import OpFailedEvent, OpSentEvent, SnapshotEvent
from ..core.nib_handler import NibEventHandler
from ..core.scheduler import DagScheduler
from ..core.sequencer import Sequencer
from ..core.state import ControllerState
from ..core.topo_handler import TopoEventHandler
from ..core.types import OpStatus, OpType, SwitchHealth
from ..core.worker_pool import Worker
from ..net.dataplane import Network
from ..net.messages import MsgKind, SwitchRequest, SwitchStatus, SwitchStatusMsg
from ..sim import AnyOf, Component, Environment

__all__ = [
    "PrWorker",
    "PrTopoEventHandler",
    "PrUpTopoEventHandler",
    "Reconciler",
    "DeadlockSweeper",
    "PrController",
    "PrUpController",
    "NoRecController",
]


class PrWorker(Worker):
    """The initial WorkerPool specification (paper Listing 1).

    Destructively dequeues the OP before processing and performs the
    action before recording state — the two bug classes §3.9 fixes.
    """

    def recover(self):
        # No state recovery: whatever was in progress is simply lost.
        yield self.env.timeout(0)

    def main(self):
        while True:
            op_id = yield self.queue.read()
            self.queue.pop()                 # destructive get (FIFOGet)
            op = self.state.get_op(op_id)
            started = self.env.now
            if self.env._tracing:
                self.env.tracer.op_mark(self.env, op_id, "worker",
                                        track=self.name)
            yield self.env.timeout(self.config.worker_translate_time)
            if self.env._tracing:
                self.env.tracer.complete(
                    self.env, f"translate op {op_id}", track=self.name,
                    start=started, duration=self.env.now - started)
            if op.op_type is OpType.CLEAR:
                self._forward(op)
            elif self.state.is_switch_usable(op.switch):
                self._forward(op)            # action first …
                self.nib_events.put(OpSentEvent(op.op_id))  # … state second
            else:
                self.nib_events.put(OpFailedEvent(op.op_id))


class PrNibEventHandler(NibEventHandler):
    """NIB Event Handler with destructive dequeue: events lost on crash."""

    def main(self):
        while True:
            event = yield self.queue.read()
            self.queue.pop()                 # destructive get
            yield self.state.nib.acquire_write_lock(self.name)
            try:
                yield self.env.timeout(self.config.nib_event_cost)
                self._apply(event)
            finally:
                self.state.nib.release_write_lock()


class PrDagScheduler(DagScheduler):
    """DAG Scheduler with destructive dequeue: requests lost on crash."""

    def main(self):
        while True:
            request = yield self.requests.read()
            self.requests.pop()              # destructive get
            yield self.env.timeout(self.config.scheduler_step_time)
            if request.kind.name == "INSTALL":
                self._install(request)
            else:
                self._delete(request)


class PrSequencer(Sequencer):
    """Sequencer with destructive inbox: assignments lost on crash."""

    def recover(self):
        # The crashed incarnation's assignment is gone; clear the marker
        # so the deadlock sweeper can detect and resubmit the DAG.
        self.state.seq_state.put(self.index, None)
        yield self.env.timeout(0)

    def main(self):
        while True:
            dag_id = yield self.inbox.read()
            self.inbox.pop()                 # destructive get
            self.state.seq_state.put(self.index, dag_id)
            dag = self.state.get_dag(dag_id)
            status = self.state.dag_status_of(dag_id)
            from ..core.types import DagStatus

            if dag is None or status in (DagStatus.STALE, DagStatus.REMOVED,
                                         DagStatus.DONE):
                self.state.seq_state.put(self.index, None)
                continue
            if status is DagStatus.PENDING:
                self.state.set_dag_status(dag_id, DagStatus.INSTALLING)
            abandoned = yield from self._drive_dag(dag_id, dag)
            if not abandoned:
                self._announce_done(dag_id)
            self.state.seq_state.put(self.index, None)


class PrTopoEventHandler(TopoEventHandler):
    """Recovery without cleanup: mark UP and retry failed OPs.

    No CLEAR_TCAM, no OP reconciliation: OPs recorded DONE stay DONE
    even if a complete failure wiped them (blackhole until the periodic
    reconciler notices), and entries installed by lost in-flight OPs
    become hidden entries (the Fig. 2 pathology).
    """

    def _switch_up(self, event: SwitchStatusMsg) -> None:
        if self.state.health_of(event.switch) is not SwitchHealth.DOWN:
            return
        touched: set[int] = set()
        for op_id in self.state.ops_for_switch(event.switch):
            op = self.state.get_op(op_id)
            if op.op_type is OpType.CLEAR:
                continue
            status = self.state.status_of(op_id)
            if status in (OpStatus.IN_FLIGHT, OpStatus.FAILED):
                dag_id = self.state.reset_op(op_id)
                if dag_id is not None and op.op_type is OpType.INSTALL:
                    touched.add(dag_id)
        for dag_id in sorted(touched):
            self.state.reactivate_dag(dag_id)
        self.state.set_health(event.switch, SwitchHealth.UP)
        from ..core.types import AppEventKind

        self._notify_apps(AppEventKind.SWITCH_UP, event.switch)


class PrUpTopoEventHandler(PrTopoEventHandler):
    """PRUp: additionally reconcile the switch when it comes back up."""

    def _switch_up(self, event: SwitchStatusMsg) -> None:
        super()._switch_up(event)
        xid = self.state.next_xid()
        self.state.read_waiters.put(xid, "topo")
        self.state.cleanup.put(xid, event.switch)
        self.state.to_switch_queue(event.switch).put(
            SwitchRequest(MsgKind.READ_TABLE, event.switch, xid=xid,
                          sender=self.config.ofc_instance))

    def _directed_reconcile(self, event: SnapshotEvent) -> None:
        """Coarse up-reconciliation: no in-flight OP bookkeeping."""
        if self.state.cleanup.get(event.xid) != event.switch:
            return
        self.state.cleanup.delete(event.xid)
        fix_switch_against_snapshot(self.state, self.config, event)


def fix_switch_against_snapshot(state: ControllerState,
                                config: ControllerConfig,
                                event: SnapshotEvent,
                                intended: Optional[set] = None) -> int:
    """Reconcile one switch's recorded state against a table snapshot.

    Resets intended-but-missing INSTALL OPs (so their DAGs reinstall
    them), deletes entries no active DAG wants, and syncs the routing
    view.  Returns the number of inconsistencies fixed.  This is the
    shared fixing logic of the periodic reconciler, PRUp and ODL.
    """
    switch = event.switch
    present = {entry.entry_id for entry in event.entries}
    if intended is None:
        intended = state.intended_entries()
    intended_here = {entry_id for (sw, entry_id) in intended if sw == switch}
    # The believed view must be captured *before* the fixes mutate it,
    # otherwise the final sync would resurrect entries we just deleted.
    believed_before = set(state.view_of_switch(switch))
    fixes = 0
    touched: set[int] = set()
    # Missing intended entries: reset their INSTALL OPs.
    for op_id in state.ops_for_switch(switch):
        op = state.get_op(op_id)
        if op.op_type is not OpType.INSTALL or op.entry is None:
            continue
        entry_id = op.entry.entry_id
        status = state.status_of(op_id)
        if (entry_id in intended_here and entry_id not in present
                and status in (OpStatus.DONE, OpStatus.IN_FLIGHT,
                               OpStatus.FAILED)):
            state.record_removed(switch, entry_id)
            dag_id = state.reset_op(op_id)
            if dag_id is not None:
                touched.add(dag_id)
            fixes += 1
    for dag_id in sorted(touched):
        state.reactivate_dag(dag_id)
    # Alien entries: delete them directly.
    aliens = present - intended_here
    for entry_id in aliens:
        state.to_switch_queue(switch).put(
            SwitchRequest(MsgKind.DELETE, switch, xid=state.next_xid(),
                          sender=config.ofc_instance, entry_id=entry_id))
        state.record_removed(switch, entry_id)
        fixes += 1
    # Sync the routing view with the snapshot (minus what we deleted).
    for entry_id in present - aliens - believed_before:
        state.record_installed(switch, entry_id, -1)
    for entry_id in believed_before - present:
        state.record_removed(switch, entry_id)
    return fixes


class Reconciler(Component):
    """Periodic reconciliation (Orion-style, every 30 s by default)."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig, network: Network):
        super().__init__(env, name="reconciler")
        self.state = state
        self.config = config
        self.network = network
        self.cycles_completed = 0
        self.fixes_applied = 0
        #: (start, end) of every reconciliation cycle, for analysis.
        self.cycle_log: list[tuple[float, float]] = []
        registry = getattr(env, "metrics", None)
        if registry is not None:
            prefix = f"reconciler.{state.ns}"
            registry.gauge(f"{prefix}.cycles_completed",
                           lambda: self.cycles_completed)
            registry.gauge(f"{prefix}.fixes_applied",
                           lambda: self.fixes_applied)

    def main(self):
        while True:
            yield self.env.timeout(self.config.reconciliation_period)
            yield from self.reconcile_once()

    def reconcile_once(self):
        """One full reconciliation cycle (also callable from tests)."""
        start = self.env.now
        snapshots = yield from self._gather_snapshots()
        yield from self._push_through_nib(snapshots)
        intended = self.state.intended_entries()
        for event in snapshots:
            self.fixes_applied += fix_switch_against_snapshot(
                self.state, self.config, event, intended=intended)
        self.cycles_completed += 1
        self.cycle_log.append((start, self.env.now))
        if self.env._tracing:
            self.env.tracer.complete(
                self.env, f"reconcile cycle {self.cycles_completed}",
                track=self.name, start=start,
                duration=self.env.now - start,
                switches=len(snapshots))

    def _gather_snapshots(self):
        """Issue parallel READ_TABLEs; collect replies until timeout."""
        queue = self.state.snapshot_queue("reconciler")
        queue.clear()  # drop stale replies from an aborted cycle
        expected: set[int] = set()
        for switch_id in self.network.topology.switches:
            if self.state.health_of(switch_id) is not SwitchHealth.UP:
                continue
            xid = self.state.next_xid()
            self.state.read_waiters.put(xid, "reconciler")
            self.state.to_switch_queue(switch_id).put(
                SwitchRequest(MsgKind.READ_TABLE, switch_id, xid=xid,
                              sender=self.config.ofc_instance))
            expected.add(xid)
        gather_timeout = min(0.8 * self.config.reconciliation_period, 15.0)
        deadline = self.env.now + gather_timeout
        snapshots: list[SnapshotEvent] = []
        while expected and self.env.now < deadline:
            getter = queue.get()
            timer = self.env.timeout(max(0.0, deadline - self.env.now))
            yield AnyOf(self.env, [getter, timer])
            if not getter.triggered:
                queue.cancel(getter)
                break
            event = getter.value
            if isinstance(event, SnapshotEvent) and event.xid in expected:
                expected.discard(event.xid)
                snapshots.append(event)
        return snapshots

    def _push_through_nib(self, snapshots: list[SnapshotEvent]):
        """The Fig. 4(b) bottleneck: serialized per-entry NIB updates."""
        writes = []
        for event in snapshots:
            for entry in event.entries:
                writes.append(("reconciler.staging",
                               (event.switch, entry.entry_id), True))
        if writes:
            yield from self.state.nib.bulk_update(writes, owner=self.name)
        self.state.nib.table("reconciler.staging").clear()


class DeadlockSweeper(Component):
    """PR's deadlock-resolution timeout (≪ reconciliation period).

    OPs stuck in SCHEDULED/IN_FLIGHT longer than ``deadlock_timeout``
    with a healthy switch are reset so their Sequencer retries them.
    """

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig):
        super().__init__(env, name="deadlock-sweeper")
        self.state = state
        self.config = config
        self.resets = 0
        registry = getattr(env, "metrics", None)
        if registry is not None:
            registry.gauge(f"deadlock-sweeper.{state.ns}.resets",
                           lambda: self.resets)

    def main(self):
        while True:
            yield self.env.timeout(self.config.deadlock_timeout)
            now = self.env.now
            touched: set[int] = set()
            for op_id, status in list(self.state.op_status.items()):
                if status not in (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT):
                    continue
                age = now - self.state.op_status_at.get(op_id, now)
                if age < self.config.deadlock_timeout:
                    continue
                op = self.state.op_table.get(op_id)
                if op is None or op.op_type is OpType.CLEAR:
                    continue
                if self.state.health_of(op.switch) is not SwitchHealth.UP:
                    continue
                dag_id = self.state.reset_op(op_id)
                self.resets += 1
                if dag_id is not None:
                    touched.add(dag_id)
            for dag_id in sorted(touched):
                self.state.reactivate_dag(dag_id)
            self._resubmit_orphaned_dags(now)

    def _resubmit_orphaned_dags(self, now: float) -> None:
        """Unstick INSTALLING DAGs whose assignment was lost to a crash."""
        from ..core.types import DagStatus

        for dag_id, status in list(self.state.dag_status.items()):
            if status is not DagStatus.INSTALLING:
                continue
            dag = self.state.get_dag(dag_id)
            owner = self.state.dag_owner.get(dag_id)
            if dag is None or owner is None:
                continue
            if self.state.seq_state.get(owner) == dag_id:
                continue  # actively driven
            last_change = max(
                (self.state.op_status_at.get(op_id, 0.0)
                 for op_id in dag.ops), default=0.0)
            if now - last_change < self.config.deadlock_timeout:
                continue
            self.state.nib.ack_queue(
                f"{self.state.ns}.SeqInbox.{owner}").put(dag_id)
            self.resets += 1


class PrController(ZenithController):
    """The periodic-reconciliation baseline."""

    worker_cls = PrWorker
    topo_handler_cls = PrTopoEventHandler
    nib_handler_cls = PrNibEventHandler
    scheduler_cls = PrDagScheduler
    sequencer_cls = PrSequencer
    #: Subclasses toggle the reconciler (NoRec disables it).
    with_reconciliation = True

    def extra_components(self):
        components = [DeadlockSweeper(self.env, self.state, self.config)]
        if self.with_reconciliation:
            self.reconciler = Reconciler(self.env, self.state, self.config,
                                         self.network)
            components.append(self.reconciler)
        else:
            self.reconciler = None
        return components


class PrUpController(PrController):
    """PR plus reconciliation-on-switch-up (the paper's PRUp)."""

    topo_handler_cls = PrUpTopoEventHandler


class NoRecController(PrController):
    """PR's implementation with reconciliation disabled (Fig. 11)."""

    with_reconciliation = False
