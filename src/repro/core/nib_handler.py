"""NIB Event Handler: apply controller events to NIB state (DE).

Consumes the NIB event queue and drives the OP status state machine:

* ``OpSentEvent``   → SCHEDULED → IN_FLIGHT;
* ``OpDoneEvent``   → DONE, and updates the routing view (R_c);
* ``OpFailedEvent`` → FAILED (the Topo Event Handler resets these to
  NONE once the switch has recovered and been wiped).

Every event is applied under the NIB write lock, which is what couples
event processing latency with any bulk reconciliation in flight — the
scaling bottleneck of Fig. 4(b).  After applying an event it notifies
the Sequencer owning the affected DAG.

State-machine conservatism (§3.9): an ACK arriving for an OP whose
switch is mid-recovery (health RECOVERING) is *ignored* — "it is better
to be conservative and assume the OP was not installed" — the cleanup
wipe will reset it anyway.
"""

from __future__ import annotations

from ..sim import Component, Environment
from .config import ControllerConfig
from .events import OpDoneEvent, OpFailedEvent, OpSentEvent
from .state import ControllerState
from .types import OpStatus, OpType, SwitchHealth

__all__ = ["NibEventHandler"]


class NibEventHandler(Component):
    """DE component translating events into NIB state transitions."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig):
        super().__init__(env, name="nib-event-handler")
        self.state = state
        self.config = config
        self.queue = state.nib_event_queue()

    def main(self):
        while True:
            event = yield self.queue.read()
            yield self.state.nib.acquire_write_lock(self.name)
            try:
                yield self.env.timeout(self.config.nib_event_cost)
                self._apply(event)
            finally:
                self.state.nib.release_write_lock()
            self.queue.pop()

    def _apply(self, event) -> None:
        if isinstance(event, OpSentEvent):
            if self.state.status_of(event.op_id) is OpStatus.SCHEDULED:
                self.state.set_op_status(event.op_id, OpStatus.IN_FLIGHT)
        elif isinstance(event, OpDoneEvent):
            self._apply_done(event.op_id)
        elif isinstance(event, OpFailedEvent):
            op = self.state.op_table.get(event.op_id)
            if op is not None and self.state.is_switch_usable(op.switch):
                # Stale failure report: the switch recovered (and its
                # OPs were reset/re-derived) before this event was
                # processed.  A fresh dispatch drives the OP now;
                # marking it FAILED would strand it (model-checker
                # finding).
                return
            if op is not None and op.op_type is OpType.DELETE:
                # A DELETE to a dead switch is vacuously satisfied: the
                # recovery wipe (or directed reconciliation) removes the
                # entry before the switch rejoins, so cleanup DAGs never
                # deadlock on permanently failed switches.
                self.state.set_op_status(event.op_id, OpStatus.DONE)
                if op.entry_id is not None:
                    self.state.record_removed(op.switch, op.entry_id)
            else:
                self.state.set_op_status(event.op_id, OpStatus.FAILED)
            self._notify_owner(event.op_id)

    def _apply_done(self, op_id: int) -> None:
        op = self.state.op_table.get(op_id)
        if op is None:
            return
        if self.state.health_of(op.switch) is SwitchHealth.RECOVERING:
            # Conservative state machine: ambiguous ACK around a
            # failure/recovery boundary is treated as not installed.
            return
        if self.state.status_of(op_id) is not OpStatus.IN_FLIGHT:
            # Only accept ACKs for OPs deemed in flight: a stale
            # pre-wipe ACK processed after the recovery reset (which
            # travels the topo queue, unordered wrt. this one) must not
            # resurrect a wiped OP to DONE.  Found by model checking
            # the controller specification.
            return
        self.state.set_op_status(op_id, OpStatus.DONE)
        if self.env._tracing:
            self.env.tracer.op_mark(self.env, op_id, "done",
                                    track=self.name, switch=op.switch)
        if op.op_type is OpType.INSTALL and op.entry is not None:
            self.state.record_installed(op.switch, op.entry.entry_id, op_id)
        elif op.op_type is OpType.DELETE and op.entry_id is not None:
            self.state.record_removed(op.switch, op.entry_id)
        self._notify_owner(op_id)

    def _notify_owner(self, op_id: int) -> None:
        dag_id = self.state.op_dag.get(op_id)
        if dag_id is None:
            return
        owner = self.state.dag_owner.get(dag_id)
        if owner is not None:
            self.state.sequencer_notify_queue(owner).put(("op", op_id))
