"""Worker Pool: translate OPs into switch messages (OFC).

This implements the paper's *final* WorkerPool specification (Listing 3)
with the three robustness disciplines of §3.9:

* **peek/pop queue discipline** — the OP is read from the head of the
  queue and only removed after processing, so a crash in between
  re-processes the same OP instead of losing it;
* **state recording** — the in-progress OP id is written to the NIB
  (``worker_state``) before acting, enabling crash diagnosis;
* **state-before-action ordering** — the NIB learns the OP is being
  sent (``OpSentEvent`` → IN_FLIGHT) *before* the message is forwarded
  (property P3).

Each worker owns a fixed shard of switches (``config.worker_for_switch``),
which preserves per-switch FIFO order across the pool (property P4) and
satisfies the §B concurrency-violation safety condition: no two workers
can ever process OPs for the same switch.
"""

from __future__ import annotations

from ..net.messages import MsgKind, SwitchRequest
from ..sim import Component, Environment
from .config import ControllerConfig
from .events import OpFailedEvent, OpSentEvent
from .state import ControllerState
from .types import Op, OpStatus, OpType, SwitchHealth

__all__ = ["Worker", "translate_op"]


def translate_op(op: Op, sender: str) -> SwitchRequest:
    """Convert a protocol-agnostic OP into a switch request."""
    if op.op_type is OpType.INSTALL:
        return SwitchRequest(MsgKind.INSTALL, op.switch, xid=op.op_id,
                             sender=sender, entry=op.entry)
    if op.op_type is OpType.DELETE:
        return SwitchRequest(MsgKind.DELETE, op.switch, xid=op.op_id,
                             sender=sender, entry_id=op.entry_id)
    if op.op_type is OpType.CLEAR:
        return SwitchRequest(MsgKind.CLEAR_TCAM, op.switch, xid=op.op_id,
                             sender=sender)
    raise ValueError(f"cannot translate op type {op.op_type}")


class Worker(Component):
    """One worker of the OFC Worker Pool (final, verified discipline)."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig, index: int):
        super().__init__(env, name=f"worker-{index}")
        self.state = state
        self.config = config
        self.index = index
        self.queue = state.op_queue(index)
        self.nib_events = state.nib_event_queue()

    def recover(self):
        """State recovery on restart (Listing 3, ``StateRecovery``).

        The peek/pop discipline means the head of the queue is still the
        OP we were processing; re-processing it is safe because INSTALL
        and DELETE are idempotent and duplicate sends are explicitly
        permitted around failures (§B).  We only need to clear the
        recorded in-progress marker.
        """
        self.state.worker_state.put(self.index, None)
        yield self.env.timeout(0)

    def main(self):
        while True:
            op_id = yield self.queue.read()
            self.state.worker_state.put(self.index, op_id)   # record state
            op = self.state.get_op(op_id)
            started = self.env.now
            if self.env._tracing:
                self.env.tracer.op_mark(self.env, op_id, "worker",
                                        track=self.name)
            yield self.env.timeout(self.config.worker_translate_time)
            self._process(op)
            if self.env._tracing:
                self.env.tracer.complete(
                    self.env, f"translate op {op_id}", track=self.name,
                    start=started, duration=self.env.now - started)
            self.state.worker_state.put(self.index, None)    # clear state
            self.queue.pop()

    def _process(self, op: Op) -> None:
        if op.op_type is OpType.CLEAR:
            # The CLEAR_TCAM exception of property P7: forwarded even
            # while the switch is recorded DOWN/RECOVERING.
            self._forward(op)
            return
        if self.state.status_of(op.op_id) is not OpStatus.SCHEDULED:
            # This queue entry's dispatch was reset by a switch
            # recovery (or superseded); forwarding it would install
            # state the NIB no longer tracks.  The fresh dispatch
            # drives the OP instead (model-checker finding).
            return
        if self.state.is_switch_usable(op.switch):
            # State first (IN_FLIGHT via the NIB event queue), action
            # second — the ordering fix of Listing 3.
            self.nib_events.put(OpSentEvent(op.op_id))
            self._forward(op)
        else:
            self.nib_events.put(OpFailedEvent(op.op_id))

    def _forward(self, op: Op) -> None:
        request = translate_op(op, sender=self.config.ofc_instance)
        if self.env._tracing:
            self.env.tracer.op_mark(self.env, op.op_id, "to-switch",
                                    track=f"tosw-{op.switch}",
                                    switch=op.switch)
        self.state.to_switch_queue(op.switch).put(request)
