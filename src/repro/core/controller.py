"""ZENITH-core controller assembly.

Wires the DAG Engine (DAG Scheduler, Sequencer pool, NIB Event Handler),
the OpenFlow Controller (Worker Pool, Monitoring Server, Topo Event
Handler) and the Watchdog over a shared NIB and a simulated network —
the architecture of paper Fig. 6/Table 1.  Two variants:

* **ZENITH-NR** (default): recovery wipes the recovering switch's TCAM
  through the normal pipeline before rejoining it;
* **ZENITH-DR** (``ControllerConfig.directed_reconciliation``): recovery
  reads the switch table and fixes only actual inconsistencies.

This hand-written implementation plays the role of NADIR's generated
code in the large-scale experiments; :mod:`repro.nadir` demonstrates the
actual spec→code pipeline on representative components and tests verify
behavioural equivalence.
"""

from __future__ import annotations

from typing import Optional

from ..net.dataplane import Network
from ..nib import Nib
from ..sim import ComponentHost, Environment, Event, FifoQueue
from .config import ControllerConfig
from .monitoring import MonitoringServer
from .nib_handler import NibEventHandler
from .scheduler import DagScheduler
from .sequencer import Sequencer
from .state import ControllerState
from .topo_handler import TopoEventHandler
from .types import (
    Dag,
    DagRequest,
    DagRequestKind,
    DagStatus,
    SwitchHealth,
)
from .watchdog import Watchdog
from .worker_pool import Worker

__all__ = ["ZenithController"]


class ZenithController:
    """A fully wired ZENITH-core instance over a simulated network."""

    #: Component classes; baselines override these to swap disciplines.
    sequencer_cls = Sequencer
    scheduler_cls = DagScheduler
    nib_handler_cls = NibEventHandler
    worker_cls = Worker
    monitoring_cls = MonitoringServer
    topo_handler_cls = TopoEventHandler

    def __init__(self, env: Environment, network: Network,
                 nib: Optional[Nib] = None,
                 config: Optional[ControllerConfig] = None,
                 name: str = "zenith"):
        self.env = env
        self.network = network
        self.nib = nib if nib is not None else Nib(env)
        self.config = config if config is not None else ControllerConfig()
        self.name = name
        self.state = ControllerState(self.nib, namespace=name)
        for switch_id in network.topology.switches:
            self.state.set_health(switch_id, SwitchHealth.UP)

        # DAG Engine.
        self.sequencers = [
            self.sequencer_cls(env, self.state, self.config, i)
            for i in range(self.config.num_sequencers)
        ]
        self.dag_scheduler = self.scheduler_cls(env, self.state, self.config,
                                                self.sequencers)
        self.nib_handler = self.nib_handler_cls(env, self.state, self.config)

        # OpenFlow Controller.
        self.workers = [
            self.worker_cls(env, self.state, self.config, i)
            for i in range(self.config.num_workers)
        ]
        self.monitoring = self.monitoring_cls(env, self.state, self.config,
                                              network)
        self.topo_handler = self.topo_handler_cls(env, self.state, self.config)

        self.watchdog = Watchdog(env, self.config)
        self._hosts: dict[str, ComponentHost] = {}
        self._build_hosts()
        self._started = False
        self._dag_waiters: dict[int, list[Event]] = {}
        self.state.dag_status.watch(self._on_dag_status)

    # -- assembly -------------------------------------------------------------------
    def extra_components(self):
        """Hook: additional components (e.g. a reconciler) to host."""
        return []

    def _build_hosts(self) -> None:
        components = [self.dag_scheduler, self.nib_handler,
                      self.monitoring, self.topo_handler,
                      *self.sequencers, *self.workers,
                      *self.extra_components()]
        for component in components:
            self._hosts[component.name] = ComponentHost(
                self.env, component, auto_restart=False)
            self.watchdog.watch(self._hosts[component.name])
        # The watchdog is assumed reliable: it restarts itself.
        self._hosts[self.watchdog.name] = ComponentHost(
            self.env, self.watchdog, auto_restart=True)

    def start(self) -> "ZenithController":
        """Launch every component."""
        if self._started:
            raise RuntimeError("controller already started")
        self._started = True
        for host in self._hosts.values():
            host.start()
        return self

    # -- component access (failure injection) ---------------------------------------
    @property
    def hosts(self) -> dict[str, ComponentHost]:
        """Component hosts by name (for failure injection)."""
        return dict(self._hosts)

    def crash_component(self, name: str, reason: str = "injected") -> bool:
        """Crash one component by name.

        Returns ``False`` (a counted no-op) when the component is
        already down — see :meth:`ComponentHost.crash`.
        """
        return self._hosts[name].crash(reason)

    def de_component_names(self) -> list[str]:
        """DAG Engine component names."""
        return (["dag-scheduler", "nib-event-handler"]
                + [s.name for s in self.sequencers])

    def ofc_component_names(self) -> list[str]:
        """OpenFlow Controller component names."""
        return (["monitoring-server", "topo-event-handler"]
                + [w.name for w in self.workers])

    # -- application API ---------------------------------------------------------------
    def register_app(self, app: str) -> FifoQueue:
        """Register an application; returns its event queue."""
        self.topo_handler.subscribe(app)
        return self.state.app_event_queue(app)

    def submit_dag(self, dag: Dag, app: str = "") -> None:
        """Ask the controller to install ``dag``."""
        self.state.dag_request_queue().put(
            DagRequest(DagRequestKind.INSTALL, dag=dag, app=app))

    def remove_dag(self, dag_id: int, cleanup: bool = True,
                   app: str = "") -> None:
        """Ask the controller to delete DAG ``dag_id``."""
        self.state.dag_request_queue().put(
            DagRequest(DagRequestKind.DELETE, dag_id=dag_id,
                       cleanup=cleanup, app=app))

    # -- convergence certification --------------------------------------------------------
    def _on_dag_status(self, write) -> None:
        if write.new is not DagStatus.DONE:
            return
        if self.env._tracing:
            self.env.tracer.instant(self.env, f"dag {write.key} done",
                                    track=self.name, dag=write.key)
        for waiter in self._dag_waiters.pop(write.key, []):
            if not waiter.triggered:
                waiter.succeed(self.env.now)

    def wait_for_dag(self, dag_id: int) -> Event:
        """Event firing (with the time) when the NIB certifies the DAG.

        This is the paper's convergence instant: "the controller
        certifies in the NIB that the data plane has converged to the
        state corresponding to the DAG" (§6, Metrics).
        """
        event = Event(self.env)
        if self.state.dag_status_of(dag_id) is DagStatus.DONE:
            event.succeed(self.env.now)
        else:
            self._dag_waiters.setdefault(dag_id, []).append(event)
        return event

    # -- consistency ground truth -----------------------------------------------------------
    def view_matches_dataplane(self) -> bool:
        """CorrectRoutingState check: R_c equals G_d right now.

        Switches that are actually down are excluded: their state is in
        flux by definition and the ◇□ condition only binds once they
        recover (or permanently stay down).
        """
        actual = self.network.routing_state()
        believed = self.state.routing_view_snapshot()
        for switch_id, entries in actual.items():
            if not self.network[switch_id].is_healthy:
                continue
            if believed.get(switch_id, frozenset()) != entries:
                return False
        for switch_id, entries in believed.items():
            if not entries or not self.network[switch_id].is_healthy:
                continue
            if actual.get(switch_id, frozenset()) != entries:
                return False
        return True

    def hidden_entries(self) -> list[tuple[str, int]]:
        """Entries installed in the dataplane but absent from R_c.

        Non-empty only transiently for a correct controller; persistent
        hidden entries are the Fig. 2 pathology.
        """
        believed = self.state.routing_view_snapshot()
        hidden = []
        for switch_id, entries in self.network.routing_state().items():
            missing = entries - believed.get(switch_id, frozenset())
            hidden.extend((switch_id, entry_id) for entry_id in missing)
        return sorted(hidden)
