"""Topo Event Handler: switch failure/recovery processing (OFC).

Implements the verified recovery procedure of Fig. A.5 and property P8:

* on a DOWN notification the switch is *immediately* marked DOWN in the
  NIB (P8-①) and applications are notified; OP states are left alone
  (P7);
* on an UP notification the switch enters RECOVERING and a CLEAR_TCAM
  instruction is pushed *through the Worker Pool* (P6 — sending it
  directly would race with in-flight OPs); only after the wipe is
  acknowledged are the switch's OPs reset (⑦ — *before* the health
  flip, the §G ordering fix) and the switch marked UP (⑧).

With ``config.directed_reconciliation`` (ZENITH-DR, §3.9) the recovery
instead reads the switch's table and resolves only actual
inconsistencies — faster when little state was lost, at the price of a
more complex component (Fig. A.3).
"""

from __future__ import annotations

import itertools
from ..net.messages import MsgKind, SwitchRequest, SwitchStatus, SwitchStatusMsg
from ..sim import Component, Environment
from .config import ControllerConfig
from .events import CleanupAckEvent, SnapshotEvent
from .state import ControllerState
from .types import (
    AppEvent,
    AppEventKind,
    Op,
    OpStatus,
    OpType,
    SwitchHealth,
)

__all__ = ["TopoEventHandler"]


class TopoEventHandler(Component):
    """OFC component owning the controller's topology state (T_c)."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig):
        super().__init__(env, name="topo-event-handler")
        self.state = state
        self.config = config
        self.queue = state.topo_event_queue()
        #: Applications notified of switch up/down events.
        self.subscribed_apps: list[str] = []

    def subscribe(self, app: str) -> None:
        """Deliver SWITCH_UP/DOWN events to application ``app``."""
        if app not in self.subscribed_apps:
            self.subscribed_apps.append(app)

    def main(self):
        while True:
            event = yield self.queue.read()
            yield self.env.timeout(self.config.topo_event_cost)
            if isinstance(event, SwitchStatusMsg):
                if event.status is SwitchStatus.DOWN:
                    self._switch_down(event)
                else:
                    self._switch_up(event)
            elif isinstance(event, CleanupAckEvent):
                self._cleanup_done(event)
            elif isinstance(event, SnapshotEvent):
                self._directed_reconcile(event)
            self.queue.pop()

    # -- failure ---------------------------------------------------------------
    def _switch_down(self, event: SwitchStatusMsg) -> None:
        if self.state.health_of(event.switch) is SwitchHealth.DOWN:
            return
        # P8-①: record the failure immediately; P7: leave OP states be.
        self.state.set_health(event.switch, SwitchHealth.DOWN)
        if self.env._tracing:
            self.env.tracer.instant(self.env, f"switch {event.switch} down",
                                    track=self.name, switch=event.switch)
        self._notify_apps(AppEventKind.SWITCH_DOWN, event.switch)

    # -- recovery ----------------------------------------------------------------
    def _switch_up(self, event: SwitchStatusMsg) -> None:
        if self.state.health_of(event.switch) is not SwitchHealth.DOWN:
            return
        self.state.set_health(event.switch, SwitchHealth.RECOVERING)
        if self.env._tracing:
            self.env.tracer.instant(self.env, f"switch {event.switch} up",
                                    track=self.name, switch=event.switch)
        if self.config.directed_reconciliation:
            self._start_directed(event.switch)
        else:
            self._start_clear(event.switch)

    def _start_clear(self, switch: str) -> None:
        """Fig. A.5 ③: CLEAR_TCAM through the normal OP pipeline."""
        xid = self.state.next_xid()
        clear_op = Op(xid, switch, OpType.CLEAR)
        self.state.op_table.put(xid, clear_op)
        self.state.cleanup.put(xid, switch)
        worker = self.config.worker_for_switch(switch)
        self.state.op_queue(worker).put(xid)

    def _cleanup_done(self, event: CleanupAckEvent) -> None:
        if self.state.cleanup.get(event.xid) != event.switch:
            return  # stale/duplicate ack
        self.state.cleanup.delete(event.xid)
        # ⑦ reset OP states *first*, ⑧ flip health *second* (§G fix).
        self._reset_switch_ops(event.switch)
        self.state.clear_view_of_switch(event.switch)
        self.state.set_health(event.switch, SwitchHealth.UP)
        self._notify_apps(AppEventKind.SWITCH_UP, event.switch)

    def _reset_switch_ops(self, switch: str) -> None:
        """Reset the wiped switch's OPs (Fig. A.5 ⑦).

        INSTALL OPs go back to NONE so their DAGs reinstall them; DELETE
        OPs become vacuously DONE (the wipe removed the entry), which
        avoids unnecessary re-deletions (§B safety).  DAGs that had
        already been certified DONE are re-activated and re-submitted to
        their owning Sequencer — the intent is standing, and the
        CorrectDAGInstalled condition is ◇□, so the controller itself
        must restore wiped state.
        """
        touched_dags: set[int] = set()
        for op_id in self.state.ops_for_switch(switch):
            op = self.state.get_op(op_id)
            if op.op_type is OpType.CLEAR:
                continue
            status = self.state.status_of(op_id)
            # Reset OPs of *every* status, SCHEDULED included: a
            # SCHEDULED op whose send was lost to the failure would
            # otherwise deadlock if its stale OpSentEvent is applied
            # after this reset (found by model-checking this design).
            # A duplicate dispatch of a still-queued SCHEDULED op is
            # benign: sends are idempotent and per-switch ordered (§B).
            if status not in (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT,
                              OpStatus.DONE, OpStatus.FAILED):
                continue
            if op.op_type is OpType.DELETE:
                if status is not OpStatus.DONE:
                    self.state.set_op_status(op_id, OpStatus.DONE)
                    self._notify_owner(op_id)
                continue
            self.state.set_op_status(op_id, OpStatus.NONE)
            self._notify_owner(op_id)
            dag_id = self.state.op_dag.get(op_id)
            if dag_id is not None:
                touched_dags.add(dag_id)
        self._reactivate_dags(touched_dags)

    def _reactivate_dags(self, dag_ids: set[int]) -> None:
        """Re-submit completed DAGs whose OPs were reset."""
        from .types import DagStatus

        for dag_id in sorted(dag_ids):
            if self.state.dag_status_of(dag_id) is not DagStatus.DONE:
                continue
            owner = self.state.dag_owner.get(dag_id)
            if owner is None:
                continue
            self.state.set_dag_status(dag_id, DagStatus.INSTALLING)
            self.state.nib.ack_queue(
                f"{self.state.ns}.SeqInbox.{owner}").put(dag_id)

    # -- directed reconciliation (ZENITH-DR) ----------------------------------------
    def _start_directed(self, switch: str) -> None:
        xid = self.state.next_xid()
        self.state.read_waiters.put(xid, "topo")
        self.state.cleanup.put(xid, switch)
        request = SwitchRequest(MsgKind.READ_TABLE, switch, xid=xid,
                                sender=self.config.ofc_instance)
        self.state.to_switch_queue(switch).put(request)

    def _directed_reconcile(self, event: SnapshotEvent) -> None:
        """Diff the switch's actual table against recorded OP state."""
        if self.state.cleanup.get(event.xid) != event.switch:
            return
        self.state.cleanup.delete(event.xid)
        switch = event.switch
        present = {entry.entry_id for entry in event.entries}
        claimed: set[int] = set()
        touched_dags: set[int] = set()
        for op_id in self.state.ops_for_switch(switch):
            op = self.state.get_op(op_id)
            status = self.state.status_of(op_id)
            if op.op_type is OpType.INSTALL and op.entry is not None:
                entry_id = op.entry.entry_id
                if status in (OpStatus.IN_FLIGHT, OpStatus.DONE,
                              OpStatus.FAILED):
                    if entry_id in present:
                        claimed.add(entry_id)
                        self.state.set_op_status(op_id, OpStatus.DONE)
                        self.state.record_installed(switch, entry_id, op_id)
                    else:
                        self.state.set_op_status(op_id, OpStatus.NONE)
                        self.state.record_removed(switch, entry_id)
                        dag_id = self.state.op_dag.get(op_id)
                        if dag_id is not None:
                            touched_dags.add(dag_id)
                    self._notify_owner(op_id)
                elif status is OpStatus.SCHEDULED and entry_id in present:
                    claimed.add(entry_id)
            elif op.op_type is OpType.DELETE and op.entry_id is not None:
                if status in (OpStatus.IN_FLIGHT, OpStatus.FAILED):
                    if op.entry_id in present:
                        self.state.set_op_status(op_id, OpStatus.NONE)
                    else:
                        self.state.set_op_status(op_id, OpStatus.DONE)
                        self.state.record_removed(switch, op.entry_id)
                    self._notify_owner(op_id)
        # Entries nobody claims are hidden garbage: delete them directly.
        for entry_id in present - claimed:
            if not self._entry_is_intended(switch, entry_id):
                request = SwitchRequest(
                    MsgKind.DELETE, switch, xid=self.state.next_xid(),
                    sender=self.config.ofc_instance, entry_id=entry_id)
                self.state.to_switch_queue(switch).put(request)
                self.state.record_removed(switch, entry_id)
        self._reactivate_dags(touched_dags)
        self.state.set_health(switch, SwitchHealth.UP)
        self._notify_apps(AppEventKind.SWITCH_UP, switch)

    def _entry_is_intended(self, switch: str, entry_id: int) -> bool:
        """Whether an active DAG installs (switch, entry_id)."""
        for dag_id in self.state.active_dags():
            dag = self.state.get_dag(dag_id)
            if dag is not None and (switch, entry_id) in dag.install_entries():
                return True
        return False

    # -- notifications ------------------------------------------------------------
    def _notify_owner(self, op_id: int) -> None:
        dag_id = self.state.op_dag.get(op_id)
        if dag_id is None:
            return
        owner = self.state.dag_owner.get(dag_id)
        if owner is not None:
            self.state.sequencer_notify_queue(owner).put(("op", op_id))

    def _notify_apps(self, kind: AppEventKind, switch: str) -> None:
        for app in self.subscribed_apps:
            self.state.app_event_queue(app).put(
                AppEvent(kind, switch=switch, at=self.env.now))
