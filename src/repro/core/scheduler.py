"""DAG Scheduler: process application DAG requests (DE front-end).

Schedules new DAGs onto Sequencers (round-robin) and ensures stale
DAGs are deleted properly (paper Table 1): a DELETE request marks the
DAG STALE so its Sequencer abandons it, and — when cleanup is requested
— synthesizes a *cleanup DAG* of DELETE OPs for every entry of the
stale DAG still present in the controller's routing view.  Because OPs
are delivered per-switch in order (P4), cleanup OPs land after any
still-in-flight OPs of the stale DAG, guaranteeing that "the data plane
will never have a routing state corresponding to a deleted DAG" (§3.6).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..sim import Component, Environment
from .config import ControllerConfig
from .sequencer import Sequencer
from .state import ControllerState
from .types import (
    AppEvent,
    AppEventKind,
    Dag,
    DagRequest,
    DagRequestKind,
    DagStatus,
    Op,
    OpType,
)

__all__ = ["DagScheduler"]


class DagScheduler(Component):
    """The DAG Engine's request dispatcher."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig, sequencers: list[Sequencer]):
        super().__init__(env, name="dag-scheduler")
        self.state = state
        self.config = config
        self.sequencers = sequencers
        self.requests = state.dag_request_queue()
        self.dag_app = state.nib.table(f"{state.ns}.dag_app")
        self._cleanup_ids = itertools.count(9_000_000)

    def main(self):
        while True:
            request = yield self.requests.read()
            yield self.env.timeout(self.config.scheduler_step_time)
            if request.kind is DagRequestKind.INSTALL:
                self._install(request)
            else:
                self._delete(request)
            self.requests.pop()

    # -- install --------------------------------------------------------------
    def _pick_sequencer(self) -> Sequencer:
        """Round-robin assignment, persisted in the NIB for recovery."""
        table = self.state.nib.table(f"{self.state.ns}.scheduler")
        nxt = table.get("next_seq", 0)
        table.put("next_seq", (nxt + 1) % len(self.sequencers))
        return self.sequencers[nxt % len(self.sequencers)]

    def _install(self, request: DagRequest) -> None:
        dag = request.dag
        assert dag is not None
        sequencer = self._pick_sequencer()
        self.state.register_dag(dag, owner=sequencer.index)
        if self.env._tracing:
            for op_id in dag.ops:
                self.env.tracer.op_mark(self.env, op_id, "scheduler",
                                        track=self.name, dag=dag.dag_id)
        app = getattr(request, "app", "") or ""
        if app:
            self.dag_app.put(dag.dag_id, app)
        sequencer.submit(dag.dag_id)

    # -- delete ----------------------------------------------------------------
    def _delete(self, request: DagRequest) -> None:
        dag_id = request.dag_id
        assert dag_id is not None
        dag = self.state.get_dag(dag_id)
        if dag is None:
            return
        status = self.state.dag_status_of(dag_id)
        if status in (DagStatus.REMOVED,):
            return
        self.state.set_dag_status(dag_id, DagStatus.STALE)
        owner = self.state.dag_owner.get(dag_id)
        if owner is not None:
            # Nudge the owner so it notices the STALE mark promptly.
            self.state.sequencer_notify_queue(owner).put(("dag", dag_id))
        if request.cleanup:
            cleanup_dag = self._build_cleanup_dag(dag)
            if cleanup_dag is not None:
                sequencer = self._pick_sequencer()
                self.state.register_dag(cleanup_dag, owner=sequencer.index)
                sequencer.submit(cleanup_dag.dag_id)
        app = self.dag_app.get(dag_id)
        if app:
            self.state.app_event_queue(app).put(
                AppEvent(AppEventKind.DAG_REMOVED, dag_id=dag_id,
                         at=self.env.now))

    def _build_cleanup_dag(self, dag: Dag) -> Optional[Dag]:
        """DELETE OPs for the stale DAG's entries (flat: no ordering)."""
        ops = []
        for op in dag.ops.values():
            if op.op_type is not OpType.INSTALL or op.entry is None:
                continue
            op_id = next(self._cleanup_ids)
            ops.append(Op(op_id, op.switch, OpType.DELETE,
                          entry_id=op.entry.entry_id))
        if not ops:
            return None
        return Dag(next(self._cleanup_ids), ops)
