"""Controller configuration knobs shared by ZENITH and the baselines."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

__all__ = ["ControllerConfig"]


@dataclass
class ControllerConfig:
    """Timing and sizing parameters of a controller deployment.

    Defaults are chosen so that a small DAG installs within a couple of
    seconds end-to-end — matching the ZENITH-NR convergence numbers the
    paper reports on trace replay (mean ≈2.1s including failure
    detection delays).
    """

    # -- pool sizes ------------------------------------------------------------
    num_workers: int = 4
    num_sequencers: int = 2

    # -- per-step processing costs (seconds) ------------------------------------
    #: Sequencer bookkeeping per scheduling decision.
    sequencer_step_time: float = 0.5e-3
    #: Worker time to translate an OP into a switch message.
    worker_translate_time: float = 0.5e-3
    #: NIB Event Handler time per event (held under the NIB write lock,
    #: so bulk reconciliation updates delay event processing).
    nib_event_cost: float = 0.2e-3
    #: Topo Event Handler time per event.
    topo_event_cost: float = 0.5e-3
    #: DAG Scheduler time per request.
    scheduler_step_time: float = 0.5e-3

    # -- failure handling ----------------------------------------------------------
    #: Watchdog sweep period for detecting dead components.
    watchdog_period: float = 0.25
    #: Delay between detection and restart completion.
    component_restart_delay: float = 0.2

    # -- reconciliation (baselines + ZENITH-DR) ------------------------------------
    #: Periodic reconciliation interval (Orion uses 30s).
    reconciliation_period: float = 30.0
    #: PR's deadlock-resolution timeout (≪ reconciliation period).
    deadlock_timeout: float = 5.0
    #: Use directed reconciliation on switch recovery (ZENITH-DR)
    #: instead of CLEAR_TCAM + reinstall (ZENITH-NR).
    directed_reconciliation: bool = False

    # -- identifiers ------------------------------------------------------------------
    #: Name of the OFC instance (role-change messages carry it).
    ofc_instance: str = "ofc-1"

    def worker_for_switch(self, switch_id: str) -> int:
        """Consistent shard: the worker index owning ``switch_id``.

        Per the paper's proof of P4, switches are consistently sharded
        so each switch maps to exactly one worker, preserving per-switch
        FIFO order across the multi-threaded pool.
        """
        return zlib.crc32(switch_id.encode()) % self.num_workers
