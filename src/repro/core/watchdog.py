"""Watchdog: detect dead components and restart them (paper Table 1)."""

from __future__ import annotations

from ..sim import Component, ComponentHost, Environment, HostState
from .config import ControllerConfig

__all__ = ["Watchdog"]


class Watchdog(Component):
    """Sweeps component hosts, restarting any that have crashed.

    The watchdog itself is assumed reliable (it is trivially replicated
    in practice); restart latency is ``config.component_restart_delay``
    after detection, and detection happens on a
    ``config.watchdog_period`` sweep.
    """

    def __init__(self, env: Environment, config: ControllerConfig):
        super().__init__(env, name="watchdog")
        self.config = config
        self.watched: list[ComponentHost] = []
        self._restarting: set[str] = set()
        self.restarts_performed = 0

    def watch(self, host: ComponentHost) -> None:
        """Add a host to the sweep set."""
        self.watched.append(host)

    def main(self):
        while True:
            yield self.env.timeout(self.config.watchdog_period)
            for host in self.watched:
                if (host.state is HostState.DOWN
                        and host.name not in self._restarting):
                    self._restarting.add(host.name)
                    self.env.process(self._restart(host),
                                     name=f"restart-{host.name}")

    def _restart(self, host: ComponentHost):
        yield self.env.timeout(self.config.component_restart_delay)
        if host.state is HostState.DOWN:
            host.restart()
            self.restarts_performed += 1
        self._restarting.discard(host.name)
