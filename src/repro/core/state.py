"""Typed façade over the NIB tables the controller uses.

Every piece of durable controller state lives here (assumption A2: the
NIB is atomic, consistent and never fails).  Components keep no durable
local state; after a crash they recover purely from these tables.

Tables
------
``op``             op_id → Op
``op_status``      op_id → OpStatus
``op_dag``         op_id → dag_id (reverse index for notifications)
``dag``            dag_id → Dag
``dag_status``     dag_id → DagStatus
``dag_owner``      dag_id → sequencer index
``switch_health``  switch → SwitchHealth (the controller's T_c)
``routing_view``   (switch, entry_id) → op_id (the controller's R_c)
``worker_state``   worker index → op_id being processed (Listing 3)
``seq_state``      sequencer index → currently assigned dag_id
``cleanup``        xid → switch (pending CLEAR_TCAM during recovery)
``read_waiters``   xid → queue name for READ_TABLE responses
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..nib import Nib
from ..sim import AckQueue, FifoQueue
from .types import Dag, DagStatus, Op, OpStatus, OpType, SwitchHealth

__all__ = ["ControllerState"]


class ControllerState:
    """Accessors for controller state stored in the NIB."""

    def __init__(self, nib: Nib, namespace: str = "core"):
        self.nib = nib
        self.ns = namespace
        self._xids = itertools.count(1_000_000)
        self.op_table = nib.table(f"{namespace}.op")
        self.op_status = nib.table(f"{namespace}.op_status")
        self.op_dag = nib.table(f"{namespace}.op_dag")
        self.dag_table = nib.table(f"{namespace}.dag")
        self.dag_status = nib.table(f"{namespace}.dag_status")
        self.dag_owner = nib.table(f"{namespace}.dag_owner")
        self.switch_health = nib.table(f"{namespace}.switch_health")
        self.routing_view = nib.table(f"{namespace}.routing_view")
        self.worker_state = nib.table(f"{namespace}.worker_state")
        self.seq_state = nib.table(f"{namespace}.seq_state")
        self.cleanup = nib.table(f"{namespace}.cleanup")
        self.read_waiters = nib.table(f"{namespace}.read_waiters")
        #: op_id → sim time of the last status transition (used by the
        #: PR baseline's deadlock-timeout sweeper).
        self.op_status_at = nib.table(f"{namespace}.op_status_at")
        # Secondary index: switch → op ids (kept by _index_op).
        self._ops_by_switch: dict[str, set[int]] = {}
        self.op_table.watch(self._index_op)
        #: Standing intent owned by other tenants/apps, registered
        #: without per-OP bookkeeping (memory-lean background state for
        #: scale experiments): reconciliation must keep these entries.
        self.protected_entries: set[tuple[str, int]] = set()

    def _index_op(self, write) -> None:
        if write.new is not None:
            self._ops_by_switch.setdefault(write.new.switch, set()).add(write.key)
        elif write.old is not None:
            self._ops_by_switch.get(write.old.switch, set()).discard(write.key)

    # -- queues ---------------------------------------------------------------
    def dag_request_queue(self) -> AckQueue:
        """Apps → DAG Scheduler."""
        return self.nib.ack_queue(f"{self.ns}.DAGEventQueue")

    def op_queue(self, worker: int) -> AckQueue:
        """Sequencers → worker ``worker`` (consistently sharded)."""
        return self.nib.ack_queue(f"{self.ns}.OPQueue.{worker}")

    def to_switch_queue(self, switch: str) -> AckQueue:
        """Workers → Monitoring Server, per switch (preserves P4 order)."""
        return self.nib.ack_queue(f"{self.ns}.ToSW.{switch}")

    def nib_event_queue(self) -> AckQueue:
        """OFC → NIB Event Handler."""
        return self.nib.ack_queue(f"{self.ns}.NIBEventQueue")

    def topo_event_queue(self) -> AckQueue:
        """Monitoring Server → Topo Event Handler."""
        return self.nib.ack_queue(f"{self.ns}.TopoEventQueue")

    def sequencer_notify_queue(self, index: int) -> FifoQueue:
        """Status-change notifications for sequencer ``index``."""
        return self.nib.fifo(f"{self.ns}.SeqNotify.{index}")

    def app_event_queue(self, app: str) -> FifoQueue:
        """Core → application ``app`` notifications."""
        return self.nib.fifo(f"{self.ns}.AppEvents.{app}")

    def snapshot_queue(self, name: str) -> FifoQueue:
        """READ_TABLE responses for consumer ``name``."""
        return self.nib.fifo(f"{self.ns}.Snapshots.{name}")

    # -- ids -----------------------------------------------------------------
    def next_xid(self) -> int:
        """Fresh transaction id for internal requests (CLEAR/READ)."""
        return next(self._xids)

    # -- ops --------------------------------------------------------------------
    def register_op(self, op: Op, dag_id: int) -> None:
        """Record an OP and bind it to its DAG."""
        self.op_table.put(op.op_id, op)
        self.op_dag.put(op.op_id, dag_id)
        if op.op_id not in self.op_status:
            self.op_status.put(op.op_id, OpStatus.NONE)

    def get_op(self, op_id: int) -> Op:
        """Fetch an OP by id."""
        return self.op_table[op_id]

    def status_of(self, op_id: int) -> OpStatus:
        """Current status of an OP."""
        return self.op_status.get(op_id, OpStatus.NONE)

    def set_op_status(self, op_id: int, status: OpStatus) -> None:
        """Transition an OP's status (watchers fan this out)."""
        self.op_status.put(op_id, status)
        self.op_status_at.put(op_id, self.nib.env.now)

    def intended_entries(self) -> set[tuple[str, int]]:
        """(switch, entry_id) pairs the standing intent installs.

        The union of install entries over every DAG that is not stale or
        removed — what periodic reconciliation diffs switch state
        against.
        """
        from .types import DagStatus

        intended: set[tuple[str, int]] = set(self.protected_entries)
        for dag_id, status in self.dag_status.items():
            if status in (DagStatus.STALE, DagStatus.REMOVED):
                continue
            dag = self.dag_table.get(dag_id)
            if dag is not None:
                intended |= dag.install_entries()
        return intended

    def ops_for_switch(self, switch: str) -> list[int]:
        """All registered op ids addressed to ``switch``."""
        return sorted(self._ops_by_switch.get(switch, ()))

    # -- dags ----------------------------------------------------------------------
    def register_dag(self, dag: Dag, owner: Optional[int] = None) -> None:
        """Record a DAG, its ops and (optionally) its owning sequencer."""
        self.dag_table.put(dag.dag_id, dag)
        self.dag_status.put(dag.dag_id, DagStatus.PENDING)
        if owner is not None:
            self.dag_owner.put(dag.dag_id, owner)
        for op in dag.ops.values():
            self.register_op(op, dag.dag_id)

    def get_dag(self, dag_id: int) -> Optional[Dag]:
        """Fetch a DAG by id (None if unknown/removed)."""
        return self.dag_table.get(dag_id)

    def set_dag_status(self, dag_id: int, status: DagStatus) -> None:
        """Transition a DAG's status."""
        self.dag_status.put(dag_id, status)

    def dag_status_of(self, dag_id: int) -> Optional[DagStatus]:
        """Current status of a DAG."""
        return self.dag_status.get(dag_id)

    def active_dags(self) -> list[int]:
        """Ids of DAGs being installed or pending."""
        return sorted(
            dag_id for dag_id, status in self.dag_status.items()
            if status in (DagStatus.PENDING, DagStatus.INSTALLING))

    # -- switch health (T_c) ----------------------------------------------------------
    def health_of(self, switch: str) -> SwitchHealth:
        """Controller's recorded health of ``switch``."""
        return self.switch_health.get(switch, SwitchHealth.UP)

    def set_health(self, switch: str, health: SwitchHealth) -> None:
        """Record a switch health transition."""
        self.switch_health.put(switch, health)

    def is_switch_usable(self, switch: str) -> bool:
        """Whether normal OPs may be forwarded to ``switch`` (P7)."""
        return self.health_of(switch) is SwitchHealth.UP

    # -- recovery helpers (shared by core and baselines) ----------------------------
    def notify_owner(self, op_id: int) -> None:
        """Nudge the sequencer owning the OP's DAG."""
        dag_id = self.op_dag.get(op_id)
        if dag_id is None:
            return
        owner = self.dag_owner.get(dag_id)
        if owner is not None:
            self.sequencer_notify_queue(owner).put(("op", op_id))

    def reset_op(self, op_id: int) -> Optional[int]:
        """Reset an OP to NONE; returns its DAG id (for reactivation)."""
        self.set_op_status(op_id, OpStatus.NONE)
        self.notify_owner(op_id)
        return self.op_dag.get(op_id)

    def reactivate_dag(self, dag_id: int) -> None:
        """Re-submit a certified-DONE DAG to its owning sequencer."""
        if self.dag_status_of(dag_id) is not DagStatus.DONE:
            return
        owner = self.dag_owner.get(dag_id)
        if owner is None:
            return
        self.set_dag_status(dag_id, DagStatus.INSTALLING)
        self.nib.ack_queue(f"{self.ns}.SeqInbox.{owner}").put(dag_id)

    # -- routing view (R_c) -------------------------------------------------------------
    def record_installed(self, switch: str, entry_id: int, op_id: int) -> None:
        """Mark an entry as installed in the controller's view."""
        self.routing_view.put((switch, entry_id), op_id)

    def record_removed(self, switch: str, entry_id: int) -> None:
        """Remove an entry from the controller's view."""
        self.routing_view.delete((switch, entry_id))

    def view_of_switch(self, switch: str) -> dict[int, int]:
        """entry_id → op_id the controller believes is on ``switch``."""
        return {
            entry_id: op_id
            for (sw, entry_id), op_id in self.routing_view.items()
            if sw == switch
        }

    def clear_view_of_switch(self, switch: str) -> None:
        """Drop the routing view of ``switch`` (post-wipe, Fig. A.5 ⑦)."""
        for key in [k for k in self.routing_view if k[0] == switch]:
            self.routing_view.delete(key)

    def routing_view_snapshot(self) -> dict[str, frozenset[int]]:
        """switch → entry ids the controller believes installed."""
        view: dict[str, set[int]] = {}
        for (switch, entry_id), _op_id in self.routing_view.items():
            view.setdefault(switch, set()).add(entry_id)
        return {sw: frozenset(ids) for sw, ids in view.items()}
