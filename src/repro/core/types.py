"""Core data model: OPs, DAGs, status state machines, controller events.

An **OP** is a protocol-agnostic flow instruction on one switch (paper
Table 2).  A **DAG** is a directed acyclic graph of OPs whose edges
order installations so that updates are hitless (§3.1): an OP may only
be sent once all of its predecessors are installed and acknowledged.

Status enums implement the state machines of §3.9 ("state machine
design errors"): OPs move NONE → SCHEDULED → IN_FLIGHT → DONE, with
FAILED for OPs addressed to dead switches and transitions back to NONE
when a switch recovers and is wiped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..net.messages import FlowEntry

__all__ = [
    "OpType",
    "Op",
    "Dag",
    "DagValidationError",
    "OpStatus",
    "DagStatus",
    "SwitchHealth",
    "DagRequest",
    "DagRequestKind",
    "AppEvent",
    "AppEventKind",
]


class OpType(enum.Enum):
    """What an OP does to its switch."""

    INSTALL = "install"
    DELETE = "delete"
    #: Internal: wipe the switch TCAM (recovery path, Fig. A.5).
    CLEAR = "clear"


@dataclass(frozen=True, slots=True)
class Op:
    """A protocol-agnostic flow instruction bound to one switch."""

    op_id: int
    switch: str
    op_type: OpType
    entry: Optional[FlowEntry] = None
    entry_id: Optional[int] = None

    def __post_init__(self):
        if self.op_type is OpType.INSTALL and self.entry is None:
            raise ValueError(f"INSTALL op {self.op_id} needs an entry")
        if self.op_type is OpType.DELETE and self.entry_id is None:
            raise ValueError(f"DELETE op {self.op_id} needs an entry_id")

    @property
    def target_entry_id(self) -> Optional[int]:
        """The TCAM slot this OP touches (None for CLEAR)."""
        if self.op_type is OpType.INSTALL:
            assert self.entry is not None
            return self.entry.entry_id
        return self.entry_id


class DagValidationError(ValueError):
    """Raised for cyclic or dangling DAG definitions."""


class Dag:
    """A directed acyclic graph of OPs.

    ``edges`` are (predecessor, successor) OP-id pairs; an OP is
    *schedulable* once every predecessor is DONE.
    """

    def __init__(self, dag_id: int, ops: Iterable[Op],
                 edges: Iterable[tuple[int, int]] = ()):
        self.dag_id = dag_id
        self.ops: dict[int, Op] = {}
        for op in ops:
            if op.op_id in self.ops:
                raise DagValidationError(f"duplicate op id {op.op_id}")
            self.ops[op.op_id] = op
        self.edges: set[tuple[int, int]] = set()
        self._preds: dict[int, set[int]] = {op_id: set() for op_id in self.ops}
        self._succs: dict[int, set[int]] = {op_id: set() for op_id in self.ops}
        for pred, succ in edges:
            self._add_edge_unchecked(pred, succ)
        # Validate acyclicity once, not per edge (transition DAGs attach
        # every deletion to every install; O(E^2) per-edge checks hurt).
        if self.edges and self._has_cycle():
            raise DagValidationError(f"dag {dag_id} contains a cycle")

    def _add_edge_unchecked(self, pred: int, succ: int) -> None:
        if pred not in self.ops or succ not in self.ops:
            raise DagValidationError(f"edge ({pred}, {succ}) references unknown op")
        if pred == succ:
            raise DagValidationError(f"self edge on op {pred}")
        self.edges.add((pred, succ))
        self._preds[succ].add(pred)
        self._succs[pred].add(succ)

    def add_edge(self, pred: int, succ: int) -> None:
        """Add an ordering edge, rejecting cycles and unknown ids."""
        self._add_edge_unchecked(pred, succ)
        if self._has_cycle():
            raise DagValidationError(f"edge ({pred}, {succ}) creates a cycle")

    def _has_cycle(self) -> bool:
        indegree = {op_id: len(self._preds[op_id]) for op_id in self.ops}
        frontier = [op_id for op_id, d in indegree.items() if d == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            visited += 1
            for succ in self._succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        return visited != len(self.ops)

    # -- queries -----------------------------------------------------------------
    def predecessors(self, op_id: int) -> frozenset[int]:
        """Ids of OPs that must precede ``op_id``."""
        return frozenset(self._preds[op_id])

    def successors(self, op_id: int) -> frozenset[int]:
        """Ids of OPs ordered after ``op_id``."""
        return frozenset(self._succs[op_id])

    def roots(self) -> list[int]:
        """Ids with no predecessors (sorted)."""
        return sorted(op_id for op_id in self.ops if not self._preds[op_id])

    def leaves(self) -> list[int]:
        """Ids with no successors (sorted)."""
        return sorted(op_id for op_id in self.ops if not self._succs[op_id])

    def topological_order(self) -> list[int]:
        """A deterministic topological ordering of op ids."""
        indegree = {op_id: len(self._preds[op_id]) for op_id in self.ops}
        frontier = sorted(op_id for op_id, d in indegree.items() if d == 0)
        order = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            ready = []
            for succ in self._succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            frontier = sorted(frontier + ready)
        return order

    def switches(self) -> set[str]:
        """Every switch referenced by the DAG."""
        return {op.switch for op in self.ops.values()}

    def install_entries(self) -> frozenset[tuple[str, int]]:
        """(switch, entry_id) pairs that the DAG installs (cached)."""
        cached = getattr(self, "_install_entries", None)
        if cached is None:
            cached = frozenset(
                (op.switch, op.entry.entry_id)
                for op in self.ops.values()
                if op.op_type is OpType.INSTALL and op.entry is not None)
            self._install_entries = cached
        return cached

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"Dag(id={self.dag_id}, ops={len(self.ops)}, edges={len(self.edges)})"


class OpStatus(enum.Enum):
    """Lifecycle of an OP as recorded in the NIB."""

    NONE = "none"
    SCHEDULED = "scheduled"
    IN_FLIGHT = "in_flight"
    DONE = "done"
    FAILED = "failed"


class DagStatus(enum.Enum):
    """Lifecycle of a DAG as recorded in the NIB."""

    PENDING = "pending"
    INSTALLING = "installing"
    DONE = "done"
    STALE = "stale"
    REMOVED = "removed"


class SwitchHealth(enum.Enum):
    """Controller's view of a switch (the T_c topology state)."""

    UP = "up"
    DOWN = "down"
    #: Recovery in progress: CLEAR_TCAM issued, awaiting ack (Fig. A.5).
    RECOVERING = "recovering"


class DagRequestKind(enum.Enum):
    """What an application asks the DAG Scheduler to do."""

    INSTALL = "install"
    DELETE = "delete"


@dataclass(frozen=True)
class DagRequest:
    """An application request on the DAGEventQueue."""

    kind: DagRequestKind
    dag: Optional[Dag] = None
    dag_id: Optional[int] = None
    #: For DELETE: also remove the DAG's installed entries from switches.
    cleanup: bool = True
    #: Submitting application (receives DAG_DONE / DAG_REMOVED events).
    app: str = ""

    def __post_init__(self):
        if self.kind is DagRequestKind.INSTALL and self.dag is None:
            raise ValueError("INSTALL request needs a dag")
        if self.kind is DagRequestKind.DELETE and self.dag_id is None:
            raise ValueError("DELETE request needs a dag_id")


class AppEventKind(enum.Enum):
    """Events ZENITH-core delivers to applications."""

    SWITCH_DOWN = "switch_down"
    SWITCH_UP = "switch_up"
    DAG_DONE = "dag_done"
    DAG_REMOVED = "dag_removed"


@dataclass(frozen=True)
class AppEvent:
    """A notification on an application's event queue."""

    kind: AppEventKind
    switch: Optional[str] = None
    dag_id: Optional[int] = None
    at: float = 0.0
