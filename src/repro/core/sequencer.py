"""Sequencer: enforce DAG ordering when emitting OPs (DE worker pool).

A Sequencer owns one DAG at a time.  It repeatedly computes the set of
*schedulable* OPs — members of the current DAG whose status is NONE and
whose predecessors are all DONE (property P2) — marks them SCHEDULED
and pushes them onto the consistently sharded per-worker OP queues.
It finishes the DAG once every OP is DONE, and abandons it if the DAG
Scheduler marks it STALE.

Crash recovery is trivial by design: the inbox uses peek/pop semantics
and every scheduling decision is derived from NIB state, so a restarted
Sequencer recomputes where it was.  The paper calls the Sequencer the
most complex component (Fig. A.3) because it must manage transitions
between DAGs with in-flight OPs; that logic lives in the STALE path and
the OP-reset notifications from the Topo Event Handler.
"""

from __future__ import annotations

from typing import Optional

from ..sim import AnyOf, Component, Environment
from .config import ControllerConfig
from .state import ControllerState
from .types import AppEvent, AppEventKind, DagStatus, OpStatus

__all__ = ["Sequencer"]


class Sequencer(Component):
    """One sequencer worker of the DAG Engine."""

    #: Fallback rescan period: notifications are hints, the full state is
    #: always recomputed from the NIB, so a missed wakeup only costs one
    #: rescan period rather than a deadlock (supports property P1).
    rescan_period = 1.0

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig, index: int):
        super().__init__(env, name=f"sequencer-{index}")
        self.state = state
        self.config = config
        self.index = index
        self.inbox = state.nib.ack_queue(f"{state.ns}.SeqInbox.{index}")
        self.notify = state.sequencer_notify_queue(index)

    def submit(self, dag_id: int) -> None:
        """Assign a DAG to this sequencer (called by the DAG Scheduler)."""
        self.inbox.put(dag_id)

    # -- scheduling core -----------------------------------------------------------
    def _schedulable_ops(self, dag) -> list[int]:
        """OPs with status NONE whose predecessors are all DONE (P2)."""
        ready = []
        for op_id in dag.ops:
            if self.state.status_of(op_id) is not OpStatus.NONE:
                continue
            preds = dag.predecessors(op_id)
            if all(self.state.status_of(p) is OpStatus.DONE for p in preds):
                ready.append(op_id)
        return sorted(ready)

    def _dag_finished(self, dag) -> bool:
        return all(self.state.status_of(op_id) is OpStatus.DONE
                   for op_id in dag.ops)

    def _dispatch(self, op_id: int) -> None:
        """Mark SCHEDULED then enqueue for the owning worker."""
        op = self.state.get_op(op_id)
        # State first, action second (§3.9 "careful ordering").
        self.state.set_op_status(op_id, OpStatus.SCHEDULED)
        worker = self.config.worker_for_switch(op.switch)
        if self.env._tracing:
            self.env.tracer.op_mark(self.env, op_id, "sequenced",
                                    track=self.name, worker=worker)
        self.state.op_queue(worker).put(op_id)

    def _wait_for_progress(self):
        """Block until a notification or the rescan period elapses."""
        note = self.notify.get()
        timer = self.env.timeout(self.rescan_period)
        yield AnyOf(self.env, [note, timer])
        if not note.triggered:
            self.notify.cancel(note)
        # Drain any batched notifications; state is recomputed anyway.
        while len(self.notify):
            yield self.notify.get()

    def _announce_done(self, dag_id: int) -> None:
        self.state.set_dag_status(dag_id, DagStatus.DONE)
        app = self.state.nib.table(f"{self.state.ns}.dag_app").get(dag_id)
        if app:
            self.state.app_event_queue(app).put(
                AppEvent(AppEventKind.DAG_DONE, dag_id=dag_id,
                         at=self.env.now))

    # -- component API ------------------------------------------------------------
    def main(self):
        while True:
            dag_id = yield self.inbox.read()
            self.state.seq_state.put(self.index, dag_id)
            dag = self.state.get_dag(dag_id)
            status = self.state.dag_status_of(dag_id)
            if dag is None or status in (DagStatus.STALE, DagStatus.REMOVED,
                                         DagStatus.DONE):
                self._finish_assignment()
                continue
            if status is DagStatus.PENDING:
                self.state.set_dag_status(dag_id, DagStatus.INSTALLING)
            abandoned = yield from self._drive_dag(dag_id, dag)
            if not abandoned:
                self._announce_done(dag_id)
            self._finish_assignment()

    def _drive_dag(self, dag_id: int, dag):
        """Schedule the DAG to completion.  Returns True if abandoned."""
        while True:
            if self.state.dag_status_of(dag_id) in (DagStatus.STALE,
                                                    DagStatus.REMOVED):
                return True
            for op_id in self._schedulable_ops(dag):
                yield self.env.timeout(self.config.sequencer_step_time)
                self._dispatch(op_id)
            if self._dag_finished(dag):
                return False
            yield from self._wait_for_progress()

    def _finish_assignment(self) -> None:
        self.state.seq_state.put(self.index, None)
        if len(self.inbox):
            self.inbox.pop()
