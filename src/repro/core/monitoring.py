"""Monitoring Server: the OFC's interface to switches.

It owns, per switch, a *sender* (drains the per-switch ``ToSW`` queue
into the switch's control channel) and a *receiver* (classifies switch
responses).  A separate forwarder moves out-of-band liveness
notifications onto the Topo Event Handler's queue.

Classification of inbound messages:

* INSTALL/DELETE acks   → ``OpDoneEvent`` on the NIB event queue;
* CLEAR_TCAM acks       → ``CleanupAckEvent`` on the topo event queue;
* ROLE_CHANGE acks      → the ``RoleAcks`` queue (planned failover);
* table snapshots       → routed to whichever component registered the
  read xid in ``read_waiters`` (directed/periodic reconciliation).

A Monitoring Server crash interrupts all of its children; queued switch
responses survive in the switches' output queues and in the NIB-resident
``ToSW`` queues, so a restarted instance picks up where it left off —
only in-memory progress is lost, as the paper's failure model demands.
"""

from __future__ import annotations

from typing import Optional

from ..net.dataplane import Network
from ..net.messages import MsgKind, SwitchAck, SwitchStatusMsg, TableSnapshot
from ..sim import Component, Environment, Interrupt, Process
from .config import ControllerConfig
from .events import CleanupAckEvent, OpDoneEvent, SnapshotEvent
from .state import ControllerState

__all__ = ["MonitoringServer"]


class MonitoringServer(Component):
    """Pool of per-switch channel handlers (paper Table 1, OFC)."""

    def __init__(self, env: Environment, state: ControllerState,
                 config: ControllerConfig, network: Network):
        super().__init__(env, name="monitoring-server")
        self.state = state
        self.config = config
        self.network = network
        #: Out-of-band liveness messages from switches land here.
        self.status_inbox = state.nib.fifo(f"{state.ns}.SwitchStatus")
        for switch in network:
            switch.add_status_listener(self.status_inbox)
        self._children: list[Process] = []

    def setup(self):
        # Kill children from a previous incarnation: a crashed MS loses
        # its threads; queued data survives in NIB/switch queues.
        for child in self._children:
            if child.is_alive:
                child.interrupt("parent-crashed")
        self._children = []

    def main(self):
        for switch_id in self.network.switches:
            self._children.append(self.env.process(
                self._sender(switch_id), name=f"ms-send-{switch_id}"))
            self._children.append(self.env.process(
                self._receiver(switch_id), name=f"ms-recv-{switch_id}"))
        self._children.append(self.env.process(
            self._status_forwarder(), name="ms-status"))
        # Park forever; a crash interrupts us here (children die in setup).
        yield self.env.event()

    # -- children ---------------------------------------------------------------
    def _sender(self, switch_id: str):
        queue = self.state.to_switch_queue(switch_id)
        switch = self.network[switch_id]
        while True:
            try:
                request = yield queue.read()
                if self.env._tracing:
                    self.env.tracer.op_mark(self.env, request.xid, "sent",
                                            track=f"ms-send-{switch_id}",
                                            switch=switch_id)
                switch.send(request)
                queue.pop()
            except Interrupt:
                return

    def _receiver(self, switch_id: str):
        switch = self.network[switch_id]
        while True:
            try:
                message = yield switch.out_queue.get()
            except Interrupt:
                return
            self._classify(message)

    def _status_forwarder(self):
        topo_queue = self.state.topo_event_queue()
        while True:
            try:
                message = yield self.status_inbox.get()
                topo_queue.put(message)
            except Interrupt:
                return

    # -- classification ------------------------------------------------------------
    def _classify(self, message) -> None:
        if isinstance(message, SwitchAck):
            if message.kind in (MsgKind.INSTALL, MsgKind.DELETE):
                if self.env._tracing:
                    self.env.tracer.op_mark(
                        self.env, message.xid, "acked",
                        track=f"ms-recv-{message.switch}",
                        switch=message.switch)
                self.state.nib_event_queue().put(OpDoneEvent(message.xid))
            elif message.kind is MsgKind.CLEAR_TCAM:
                self.state.topo_event_queue().put(
                    CleanupAckEvent(message.switch, message.xid))
            elif message.kind is MsgKind.ROLE_CHANGE:
                self.state.nib.fifo(f"{self.state.ns}.RoleAcks").put(message)
        elif isinstance(message, TableSnapshot):
            waiter = self.state.read_waiters.get(message.xid)
            event = SnapshotEvent(message.switch, message.xid, message.entries)
            if waiter == "topo":
                self.state.topo_event_queue().put(event)
            elif waiter:
                self.state.snapshot_queue(waiter).put(event)
            self.state.read_waiters.delete(message.xid)
        elif isinstance(message, SwitchStatusMsg):
            # Liveness notification that raced onto the data channel
            # (e.g. re-registered listener); same destination as the
            # out-of-band path.
            self.state.topo_event_queue().put(message)
