"""ZENITH-core: the verified microservice-based controller."""

from .config import ControllerConfig
from .controller import ZenithController
from .events import (
    CleanupAckEvent,
    OpDoneEvent,
    OpFailedEvent,
    OpResetEvent,
    OpSentEvent,
    SnapshotEvent,
)
from .monitoring import MonitoringServer
from .nib_handler import NibEventHandler
from .scheduler import DagScheduler
from .sequencer import Sequencer
from .state import ControllerState
from .topo_handler import TopoEventHandler
from .types import (
    AppEvent,
    AppEventKind,
    Dag,
    DagRequest,
    DagRequestKind,
    DagStatus,
    DagValidationError,
    Op,
    OpStatus,
    OpType,
    SwitchHealth,
)
from .watchdog import Watchdog
from .worker_pool import Worker, translate_op

__all__ = [
    "AppEvent",
    "AppEventKind",
    "CleanupAckEvent",
    "ControllerConfig",
    "ControllerState",
    "Dag",
    "DagRequest",
    "DagRequestKind",
    "DagScheduler",
    "DagStatus",
    "DagValidationError",
    "MonitoringServer",
    "NibEventHandler",
    "Op",
    "OpDoneEvent",
    "OpFailedEvent",
    "OpResetEvent",
    "OpSentEvent",
    "OpStatus",
    "OpType",
    "Sequencer",
    "SnapshotEvent",
    "SwitchHealth",
    "TopoEventHandler",
    "Watchdog",
    "Worker",
    "ZenithController",
    "translate_op",
]
