"""Internal controller events flowing through NIB queues."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.messages import FlowEntry

__all__ = [
    "OpSentEvent",
    "OpDoneEvent",
    "OpFailedEvent",
    "OpResetEvent",
    "CleanupAckEvent",
    "SnapshotEvent",
]


@dataclass(frozen=True)
class OpSentEvent:
    """A worker forwarded the OP to its switch (it is now in flight)."""

    op_id: int


@dataclass(frozen=True)
class OpDoneEvent:
    """The switch acknowledged the OP (A3: it is installed/applied)."""

    op_id: int


@dataclass(frozen=True)
class OpFailedEvent:
    """The OP could not be delivered (its switch is recorded DOWN)."""

    op_id: int
    reason: str = "switch_down"


@dataclass(frozen=True)
class OpResetEvent:
    """An OP's status was reset to NONE (switch wiped on recovery)."""

    op_id: int


@dataclass(frozen=True)
class CleanupAckEvent:
    """A CLEAR_TCAM issued during switch recovery was acknowledged."""

    switch: str
    xid: int


@dataclass(frozen=True)
class SnapshotEvent:
    """A READ_TABLE response routed to whoever requested it."""

    switch: str
    xid: int
    entries: tuple[FlowEntry, ...]
