"""Henry–Kafura information-flow complexity (paper §6.3, Fig. A.3).

Henry & Kafura (1981) score a procedure as
``length × (fan_in × fan_out)²`` where fan-in/fan-out count the
information flows into/out of the component.  The paper applies it to
the specification of each ZENITH component under increasingly harsh
failure scenarios; we apply the identical formula to component
descriptions extracted from our executable specifications
(queue reads = fan-in, queue writes/table writes = fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["ComponentFlow", "henry_kafura", "henry_kafura_total"]


@dataclass(frozen=True)
class ComponentFlow:
    """Information-flow profile of one component."""

    name: str
    #: Number of statements/steps in the component's specification.
    length: int
    #: Distinct inbound flows (queues read, tables read, RPCs served).
    fan_in: int
    #: Distinct outbound flows (queues written, tables written).
    fan_out: int


def henry_kafura(flow: ComponentFlow) -> int:
    """HK complexity of one component: length × (fan_in × fan_out)²."""
    if flow.length < 0 or flow.fan_in < 0 or flow.fan_out < 0:
        raise ValueError("negative flow profile")
    return flow.length * (flow.fan_in * flow.fan_out) ** 2


def henry_kafura_total(flows: Iterable[ComponentFlow]) -> int:
    """Sum of HK complexities over a set of components."""
    return sum(henry_kafura(flow) for flow in flows)
