"""Convergence measurement and correctness-condition checkers.

``convergence time`` follows the paper's definition (§6 Metrics): the
time between when DAG installation commences and when the controller
certifies in the NIB that the data plane has converged to the state
corresponding to the DAG.  :func:`measure_convergence` additionally
reports *true* convergence — when the certified state also matches the
ground-truth dataplane — which a correct controller reaches at the same
time, and an inconsistent one only after reconciliation.

:func:`check_dag_order` verifies the CorrectDAGOrder safety condition
post-hoc from the switches' first-install logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.controller import ZenithController
from ..core.types import Dag, DagStatus, OpType
from ..net.dataplane import Network
from ..sim import Environment

__all__ = ["check_dag_order", "dag_installed_in_dataplane",
            "measure_convergence", "ConvergenceResult", "wait_until"]


def check_dag_order(network: Network, dag: Dag) -> list[tuple[int, int]]:
    """CorrectDAGOrder: return the list of violated DAG edges.

    An edge (r1, r2) is violated when r2's entry was first installed at
    or before r1's.  Edges whose OPs never installed (e.g. lost to a
    permanent switch failure, which the condition exempts) are skipped.
    """
    first_install: dict[tuple[str, int], float] = {}
    for switch in network:
        for entry_id, at in switch.first_install.items():
            first_install[(switch.switch_id, entry_id)] = at
    violations = []
    for pred_id, succ_id in dag.edges:
        pred, succ = dag.ops[pred_id], dag.ops[succ_id]
        if pred.op_type is not OpType.INSTALL or succ.op_type is not OpType.INSTALL:
            continue
        pred_key = (pred.switch, pred.entry.entry_id)
        succ_key = (succ.switch, succ.entry.entry_id)
        if pred_key not in first_install or succ_key not in first_install:
            continue
        if not first_install[pred_key] < first_install[succ_key]:
            violations.append((pred_id, succ_id))
    return violations


def dag_installed_in_dataplane(network: Network, dag: Dag,
                               ignore_down: bool = False) -> bool:
    """CorrectDAGInstalled (instantaneous): every entry is in G_d.

    With ``ignore_down`` entries on currently-dead switches are skipped
    (used by episode-based stability measurement, where a dead switch's
    state is unjudgeable until it recovers).
    """
    for switch, entry_id in dag.install_entries():
        sim_switch = network.switches[switch]
        if ignore_down and not sim_switch.is_healthy:
            continue
        if entry_id not in sim_switch.flow_table:
            return False
    return True


@dataclass
class ConvergenceResult:
    """Outcome of one convergence measurement."""

    dag_id: int
    submitted_at: float
    certified_at: Optional[float]
    truly_consistent_at: Optional[float]

    @property
    def certified_latency(self) -> Optional[float]:
        """Paper metric: submit → NIB certification."""
        if self.certified_at is None:
            return None
        return self.certified_at - self.submitted_at

    @property
    def true_latency(self) -> Optional[float]:
        """Submit → certified *and* ground-truth consistent."""
        if self.truly_consistent_at is None:
            return None
        return self.truly_consistent_at - self.submitted_at


def wait_until(env: Environment, predicate, poll: float = 0.05,
               deadline: Optional[float] = None):
    """Generator: advance until ``predicate()`` or the deadline."""
    while not predicate():
        if deadline is not None and env.now >= deadline:
            return False
        yield env.timeout(poll)
    return True


def measure_convergence(env: Environment, controller: ZenithController,
                        dag: Dag, app: str = "",
                        deadline: float = 120.0,
                        poll: float = 0.05) -> ConvergenceResult:
    """Submit ``dag`` and drive the sim until it truly converges.

    Runs the environment; returns certification and true-consistency
    instants (None where the deadline expired first).
    """
    submitted_at = env.now
    controller.submit_dag(dag, app=app)
    result = ConvergenceResult(dag.dag_id, submitted_at, None, None)

    def certified() -> bool:
        return controller.state.dag_status_of(dag.dag_id) is DagStatus.DONE

    def truly_consistent() -> bool:
        return (certified()
                and dag_installed_in_dataplane(controller.network, dag))

    def driver():
        ok = yield from wait_until(env, certified, poll,
                                   submitted_at + deadline)
        if ok:
            result.certified_at = env.now
            if env._tracing:
                env.tracer.instant(env, f"dag {dag.dag_id} certified",
                                   track="convergence", dag=dag.dag_id)
        ok = yield from wait_until(env, truly_consistent, poll,
                                   submitted_at + deadline)
        if ok:
            result.truly_consistent_at = env.now
            if env._tracing:
                env.tracer.instant(env, f"dag {dag.dag_id} consistent",
                                   track="convergence", dag=dag.dag_id)

    done = env.process(driver())
    env.run(until=done)
    return result
