"""Percentile and summary statistics used throughout the evaluation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["percentile", "Summary", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> str:
        """A fixed-width report row."""
        return (f"n={self.count:<5d} mean={self.mean:8.3f} "
                f"p50={self.p50:8.3f} p90={self.p90:8.3f} "
                f"p99={self.p99:8.3f} max={self.maximum:8.3f}")


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of ``values``."""
    data = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=percentile(data, 50),
        p90=percentile(data, 90),
        p99=percentile(data, 99),
        minimum=min(data),
        maximum=max(data),
    )
