"""Metrics: convergence, percentiles, complexity."""

from .complexity import ComponentFlow, henry_kafura, henry_kafura_total
from .convergence import (
    ConvergenceResult,
    check_dag_order,
    dag_installed_in_dataplane,
    measure_convergence,
    wait_until,
)
from .percentiles import Summary, percentile, summarize

__all__ = [
    "ComponentFlow",
    "ConvergenceResult",
    "Summary",
    "check_dag_order",
    "dag_installed_in_dataplane",
    "henry_kafura",
    "henry_kafura_total",
    "measure_convergence",
    "percentile",
    "summarize",
    "wait_until",
]
