"""Traffic Engineering application (paper §6.2, Fig. 14).

The TE app keeps a set of demands routed and watches link utilisation.
When the load it computes for any link exceeds capacity (e.g. after a
failure pushed traffic onto a backup path), it recomputes
capacity-aware paths and submits a transition DAG.  Path selection is
greedy CSPF: demands are placed one at a time on the currently
least-loaded feasible shortest path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.controller import ZenithController
from ..core.types import AppEvent, AppEventKind, Dag, SwitchHealth
from ..net.traffic import Flow
from ..sim import AnyOf, Environment
from ..workloads.dags import IdAllocator
from .base import TransitioningApp

__all__ = ["TeApp"]


class TeApp(TransitioningApp):
    """Congestion-reactive traffic engineering."""

    #: How often the app re-evaluates link loads (seconds).
    evaluation_period = 1.0
    #: Candidate paths considered per demand.
    k_paths = 4

    def __init__(self, env: Environment, controller: ZenithController,
                 flows: Sequence[Flow],
                 alloc: Optional[IdAllocator] = None,
                 incremental: bool = False,
                 sticky_primaries: bool = False,
                 computation_delay: float = 0.0,
                 name: str = "te-app"):
        super().__init__(env, controller, name, alloc=alloc)
        self.flows = list(flows)
        self.current_paths: dict[str, list[str]] = {}
        #: Sticky mode (implies incremental): a flow's first placement
        #: is its *primary* and stays registered as standing intent;
        #: deviations install *detours* at a higher priority, and
        #: returning to the primary merely deletes the detour — the app
        #: trusts the controller's guarantee (§3.6) that standing intent
        #: remains installed.  Sound on ZENITH (the core restores wiped
        #: state); betrayed by PR until reconciliation — the Fig. 14 gap.
        self.sticky = sticky_primaries
        if sticky_primaries:
            incremental = True
        self._primary_paths: dict[str, list[str]] = {}
        self._detour_dags: dict[str, object] = {}
        #: Incremental mode: each flow has its own standing DAG and a
        #: reroute only replaces the DAGs of flows whose path changed —
        #: flows whose paths the app believes unaffected rely on the
        #: *controller* to keep their state installed (the architectural
        #: difference Fig. 14 exercises).
        self.incremental = incremental
        #: Time the app spends computing a placement before submitting.
        self.computation_delay = computation_delay
        self._flow_dags: dict[str, object] = {}
        self._flow_carried: dict[str, list] = {}
        #: (time, reason) log of every reroute decision.
        self.reroutes: list[tuple[float, str]] = []

    # -- capacity-aware path selection ------------------------------------------------
    def _believed_down(self) -> set[str]:
        topo = self.controller.network.topology
        return {
            switch for switch in topo.switches
            if self.controller.state.health_of(switch) is not SwitchHealth.UP
        }

    def compute_paths(self) -> dict[str, list[str]]:
        """Greedy CSPF placement of every flow."""
        topo = self.controller.network.topology
        down = self._believed_down()
        load: dict[tuple[str, str], float] = {}

        def link_key(a: str, b: str) -> tuple[str, str]:
            return (a, b) if a < b else (b, a)

        placement: dict[str, list[str]] = {}
        for flow in sorted(self.flows, key=lambda f: -f.demand):
            if flow.src in down or flow.dst in down:
                continue
            candidates = topo.k_shortest_paths(
                flow.src, flow.dst, self.k_paths, excluded=down)
            if not candidates:
                continue

            def residual(path):
                worst = float("inf")
                for a, b in zip(path, path[1:]):
                    key = link_key(a, b)
                    worst = min(worst,
                                topo.capacity(*key) - load.get(key, 0.0))
                return worst

            best = max(candidates, key=residual)
            placement[flow.name] = best
            for a, b in zip(best, best[1:]):
                key = link_key(a, b)
                load[key] = load.get(key, 0.0) + flow.demand
        return placement

    def predicted_congestion(self) -> float:
        """Max predicted link utilisation under the *current* paths."""
        topo = self.controller.network.topology
        load: dict[tuple[str, str], float] = {}
        down = self._believed_down()

        def link_key(a: str, b: str) -> tuple[str, str]:
            return (a, b) if a < b else (b, a)

        for flow in self.flows:
            path = self.current_paths.get(flow.name)
            if not path:
                continue
            usable = all(hop not in down for hop in path)
            if not usable:
                continue
            for a, b in zip(path, path[1:]):
                key = link_key(a, b)
                load[key] = load.get(key, 0.0) + flow.demand
        worst = 0.0
        for key, used in load.items():
            worst = max(worst, used / topo.capacity(*key))
        return worst

    # -- DAG management -------------------------------------------------------------
    def install_initial(self) -> Optional[Dag]:
        """Place all flows and install the corresponding DAG(s)."""
        placement = self.compute_paths()
        if not placement:
            return None
        self.current_paths = placement
        if not self.incremental:
            return self.submit_fresh(list(placement.values()))
        from ..workloads.dags import multi_path_dag

        for flow_name, path in placement.items():
            dag = multi_path_dag(self.alloc, [path], priority=self.priority)
            self._flow_dags[flow_name] = dag
            self._flow_carried[flow_name] = []
            self._primary_paths[flow_name] = list(path)
            self.submit_dag(dag)
        return None

    def reroute(self, reason: str) -> Optional[Dag]:
        """Re-place flows; replace standing DAG(s) hitlessly."""
        placement = self.compute_paths()
        self.reroutes.append((self.env.now, reason))
        if not self.incremental:
            self.current_paths = placement
            return self.submit_transition(list(placement.values()))
        if self.sticky:
            self._reroute_sticky(placement)
        else:
            self._reroute_incremental(placement)
        self.current_paths = placement
        return None

    def _reroute_sticky(self, placement: dict[str, list[str]]) -> None:
        """Sticky mode: detour at higher priority or drop the detour."""
        from ..workloads.dags import multi_path_dag

        bumped = False
        for flow in self.flows:
            new_path = placement.get(flow.name)
            old_path = self.current_paths.get(flow.name)
            primary = self._primary_paths.get(flow.name)
            if new_path == old_path:
                continue
            detour = self._detour_dags.get(flow.name)
            if new_path == primary or new_path is None:
                # Return to the primary: trust the controller's view
                # that the standing intent is installed; just remove the
                # detour (the core deletes its entries).
                if detour is not None:
                    self.remove_dag(detour.dag_id, cleanup=True)
                    self._detour_dags[flow.name] = None
                continue
            if not bumped:
                self.priority += 1
                bumped = True
            dag = multi_path_dag(self.alloc, [new_path],
                                 priority=self.priority)
            if detour is not None:
                self.remove_dag(detour.dag_id, cleanup=True)
            self._detour_dags[flow.name] = dag
            self.submit_dag(dag)

    def _reroute_incremental(self, placement: dict[str, list[str]]) -> None:
        """Replace only the DAGs of flows whose path changed."""
        from ..core.types import DagStatus, OpType
        from ..workloads.dags import transition_dag

        self.priority += 1
        for flow in self.flows:
            new_path = placement.get(flow.name)
            old_path = self.current_paths.get(flow.name)
            if new_path == old_path:
                continue  # believed unaffected: the core keeps it alive
            old_dag = self._flow_dags.get(flow.name)
            old_ops = []
            if old_dag is not None:
                installs = [op for op in old_dag.ops.values()
                            if op.op_type is OpType.INSTALL]
                status = self.controller.state.dag_status_of(old_dag.dag_id)
                carried = ([] if status is DagStatus.DONE
                           else list(self._flow_carried.get(flow.name, [])))
                old_ops = installs + carried
            dag = transition_dag(self.alloc,
                                 [new_path] if new_path else [],
                                 old_ops, priority=self.priority)
            self._flow_dags[flow.name] = dag
            self._flow_carried[flow.name] = old_ops
            if old_dag is not None:
                self.remove_dag(old_dag.dag_id, cleanup=False)
            self.submit_dag(dag)

    # -- event loop ---------------------------------------------------------------------
    def main(self):
        if self.current_dag is None:
            self.install_initial()
        while True:
            event_get = self.events.get()
            timer = self.env.timeout(self.evaluation_period)
            yield AnyOf(self.env, [event_get, timer])
            if event_get.triggered:
                event = event_get.value
                if event.kind in (AppEventKind.SWITCH_DOWN,
                                  AppEventKind.SWITCH_UP):
                    if self.computation_delay:
                        yield self.env.timeout(self.computation_delay)
                    self.reroute(f"topology:{event.switch}")
                continue
            self.events.cancel(event_get)
            if self.predicted_congestion() > 1.0:
                if self.computation_delay:
                    yield self.env.timeout(self.computation_delay)
                self.reroute("congestion")
