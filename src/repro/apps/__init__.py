"""ZENITH-apps: drain/undrain, traffic engineering, planned failover."""

from .base import App, RoutingApp
from .drain import DrainApp, DrainRejected, DrainRequest
from .failover import FailoverApp
from .te import TeApp
from .update import (
    ConsistentUpdateApp,
    NaiveUpdateApp,
    RuleSpec,
    SubTransition,
    UpdateConfig,
    UpdateDemand,
    UpdatePlanError,
    UpdateTracker,
    plan_transition,
)

__all__ = [
    "App",
    "ConsistentUpdateApp",
    "DrainApp",
    "DrainRejected",
    "DrainRequest",
    "FailoverApp",
    "NaiveUpdateApp",
    "RoutingApp",
    "RuleSpec",
    "SubTransition",
    "TeApp",
    "UpdateConfig",
    "UpdateDemand",
    "UpdatePlanError",
    "UpdateTracker",
    "plan_transition",
]
