"""ZENITH-apps: drain/undrain, traffic engineering, planned failover."""

from .base import App, RoutingApp
from .drain import DrainApp, DrainRejected, DrainRequest
from .failover import FailoverApp
from .te import TeApp

__all__ = [
    "App",
    "DrainApp",
    "DrainRejected",
    "DrainRequest",
    "FailoverApp",
    "RoutingApp",
    "TeApp",
]
