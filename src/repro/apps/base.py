"""Application framework: ZENITH-apps run against the controller API.

An application is a component that submits DAGs and reacts to the
events ZENITH-core guarantees to deliver (§3.6/§4): switch up/down and
DAG done/removed.  :class:`RoutingApp` is the executable counterpart of
the paper's *AbstractApp*: it holds a set of demands, and on every
topology event recomputes shortest paths over the switches the
controller currently believes healthy, submitting a hitless transition
DAG (new paths at a higher priority, then deletion of the old ones).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence  # noqa: F401 - public API types

from ..core.controller import ZenithController
from ..core.types import AppEvent, AppEventKind, Dag, DagStatus, Op, OpType, SwitchHealth
from ..sim import Component, Environment
from ..workloads.dags import IdAllocator, multi_path_dag, transition_dag

__all__ = ["App", "TransitioningApp", "RoutingApp"]


class App(Component):
    """Base class for SDN applications using the DAG abstraction."""

    #: Re-submit an INSTALL request if the controller has not registered
    #: the DAG within this many seconds (an RPC-style retry; a lossy
    #: controller front-end — e.g. PR's scheduler crashing between
    #: dequeue and registration — would otherwise drop intent forever).
    submit_retry_timeout: float = 10.0

    def __init__(self, env: Environment, controller: ZenithController,
                 name: str):
        super().__init__(env, name=name)
        self.controller = controller
        self.events = controller.register_app(name)
        self.resubmissions = 0

    def submit_dag(self, dag: Dag) -> None:
        """Submit a DAG in this app's name (with registration retry)."""
        self.controller.submit_dag(dag, app=self.name)
        if self.submit_retry_timeout:
            self.env.process(self._ensure_registered(dag),
                             name=f"{self.name}-retry-{dag.dag_id}")

    def _ensure_registered(self, dag: Dag):
        while True:
            yield self.env.timeout(self.submit_retry_timeout)
            if self.controller.state.dag_status_of(dag.dag_id) is not None:
                return
            self.resubmissions += 1
            self.controller.submit_dag(dag, app=self.name)

    def remove_dag(self, dag_id: int, cleanup: bool = True) -> None:
        """Delete a DAG in this app's name."""
        self.controller.remove_dag(dag_id, cleanup=cleanup, app=self.name)

    def main(self):
        raise NotImplementedError


class TransitioningApp(App):
    """Shared machinery for apps that replace a standing DAG hitlessly.

    Correctness subtlety (found by replaying the §G-class traces against
    this very code): when a transition DAG is itself replaced before its
    deletion OPs ran, the entries it was responsible for removing may
    still sit in the dataplane.  The next transition must therefore
    delete the superseded DAG's installs *plus* any carried-over
    entries; carried entries are dropped only once a transition DAG is
    certified DONE (its deletions provably executed).  Without this, the
    data plane could retain routing state of a deleted DAG — exactly
    what §3.6 forbids.
    """

    def __init__(self, env: Environment, controller: ZenithController,
                 name: str, alloc: Optional[IdAllocator] = None):
        super().__init__(env, controller, name)
        self.alloc = alloc if alloc is not None else IdAllocator()
        self.priority = 0
        self.current_dag: Optional[Dag] = None
        self._carried_ops: list[Op] = []
        #: (switch, entry_id) → the current DAG's DELETE op for it.
        self._delete_op_for: dict[tuple[str, int], int] = {}
        #: (time, dag_id) log of every DAG submission, for experiments.
        self.submissions: list[tuple[float, int]] = []

    def _entry_deleted(self, op: Op) -> bool:
        """Whether the current DAG already deleted this old entry."""
        if op.entry is None:
            return True
        delete_op = self._delete_op_for.get((op.switch, op.entry.entry_id))
        if delete_op is None:
            return False
        from ..core.types import OpStatus

        return self.controller.state.status_of(delete_op) is OpStatus.DONE

    def _old_install_ops(self) -> list[Op]:
        """Install OPs possibly present from earlier generations.

        Carried entries are pruned as their deletion OPs complete, so
        back-to-back transitions do not snowball the carried set.
        """
        if self.current_dag is None:
            return list(self._carried_ops)
        installs = [op for op in self.current_dag.ops.values()
                    if op.op_type is OpType.INSTALL]
        status = self.controller.state.dag_status_of(self.current_dag.dag_id)
        if status is DagStatus.DONE:
            # The current DAG's deletions executed: carried entries gone.
            return installs
        carried = [op for op in self._carried_ops
                   if not self._entry_deleted(op)]
        return installs + carried

    def submit_transition(self, new_paths: Iterable[Sequence[str]]) -> Dag:
        """Replace the standing DAG with one installing ``new_paths``."""
        old_ops = self._old_install_ops()
        self.priority += 1
        dag = transition_dag(self.alloc, new_paths, old_ops,
                             priority=self.priority)
        old_dag, self.current_dag = self.current_dag, dag
        self._carried_ops = old_ops
        self._delete_op_for = {
            (op.switch, op.entry_id): op.op_id
            for op in dag.ops.values()
            if op.op_type is OpType.DELETE and op.entry_id is not None
        }
        self.submissions.append((self.env.now, dag.dag_id))
        if old_dag is not None:
            # The transition embeds the deletions; no core-side cleanup.
            self.remove_dag(old_dag.dag_id, cleanup=False)
        self.submit_dag(dag)
        return dag

    def submit_fresh(self, paths: Iterable[Sequence[str]]) -> Optional[Dag]:
        """Install an initial DAG (no previous generation to delete)."""
        paths = list(paths)
        if not paths:
            return None
        dag = multi_path_dag(self.alloc, paths, priority=self.priority)
        self.current_dag = dag
        self.submissions.append((self.env.now, dag.dag_id))
        self.submit_dag(dag)
        return dag


class RoutingApp(TransitioningApp):
    """Executable AbstractApp: keep demands routed over healthy switches.

    On SWITCH_DOWN/SWITCH_UP the app recomputes shortest paths over the
    controller's current topology view and replaces the standing DAG
    with a transition DAG (install-new-then-delete-old, priorities
    strictly increasing) — exactly the reactive behaviour the paper's
    AbstractApp models.
    """

    def __init__(self, env: Environment, controller: ZenithController,
                 demands: Sequence[tuple[str, str]],
                 alloc: Optional[IdAllocator] = None,
                 name: str = "routing-app"):
        super().__init__(env, controller, name, alloc=alloc)
        self.demands = list(demands)
        #: Demands that could not be routed at the last recompute.
        self.unroutable: list[tuple[str, str]] = []

    # -- path computation ----------------------------------------------------------
    def _believed_down(self) -> set[str]:
        topo = self.controller.network.topology
        return {
            switch for switch in topo.switches
            if self.controller.state.health_of(switch) is not SwitchHealth.UP
        }

    def compute_paths(self) -> list[list[str]]:
        """Shortest paths for each demand over believed-healthy switches."""
        topo = self.controller.network.topology
        down = self._believed_down()
        paths = []
        self.unroutable = []
        for src, dst in self.demands:
            if src in down or dst in down:
                self.unroutable.append((src, dst))
                continue
            path = topo.shortest_path(src, dst, excluded=down)
            if path is None:
                self.unroutable.append((src, dst))
            else:
                paths.append(path)
        return paths

    # -- DAG management -----------------------------------------------------------
    def install_initial(self) -> Optional[Dag]:
        """Install the DAG for the initial (healthy) topology."""
        return self.submit_fresh(self.compute_paths())

    def reroute(self) -> Dag:
        """Replace the standing DAG with one for the current topology."""
        return self.submit_transition(self.compute_paths())

    # -- event loop --------------------------------------------------------------------
    def main(self):
        if self.current_dag is None:
            self.install_initial()
        while True:
            event = yield self.events.get()
            if event.kind in (AppEventKind.SWITCH_DOWN,
                              AppEventKind.SWITCH_UP):
                self.on_topology_event(event)

    def on_topology_event(self, event: AppEvent) -> None:
        """Default reaction: recompute and replace the standing DAG."""
        self.reroute()
