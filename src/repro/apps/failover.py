"""Planned OFC failover application (paper §6.2, Fig. 15).

A planned failover replaces the active OFC instance: its components
(Worker Pool, Monitoring Server, Topo Event Handler) hand over to a
fresh instance which re-asserts mastership over every switch with
ROLE_CHANGE and resumes from NIB state.

In this reproduction the "new instance" is modeled by restarting the
OFC components with a new instance name: ZENITH's components recover
cleanly from the NIB (peek/pop queues, recorded worker state), so
failover barely perturbs convergence; the PR baseline's components lose
whatever was in flight and fall back to the deadlock timeout /
reconciliation — the gap Fig. 15 measures.
"""

from __future__ import annotations

from typing import Optional

from ..core.controller import ZenithController
from ..net.messages import MsgKind, SwitchRequest
from ..sim import Environment, FifoQueue
from .base import App

__all__ = ["FailoverApp"]


class FailoverApp(App):
    """Executes planned OFC failovers on request."""

    #: Time for the standby instance to take over process-wise.
    takeover_delay = 0.1

    def __init__(self, env: Environment, controller: ZenithController,
                 name: str = "failover-app"):
        super().__init__(env, controller, name)
        self.requests = FifoQueue(env, f"{name}.requests")
        #: (start, end, new_instance) per completed failover.
        self.completed: list[tuple[float, float, str]] = []
        self._instance_counter = 1

    def request_failover(self) -> str:
        """Ask for a failover to a fresh OFC instance; returns its name."""
        self._instance_counter += 1
        instance = f"ofc-{self._instance_counter}"
        self.requests.put(instance)
        return instance

    def main(self):
        while True:
            instance = yield self.requests.get()
            yield from self._failover(instance)

    def _failover(self, instance: str):
        start = self.env.now
        controller = self.controller
        # The old instance's components stop abruptly; in-memory state
        # is gone (the NIB survives per assumption A2).
        for component_name in controller.ofc_component_names():
            controller.hosts[component_name].crash(f"failover:{instance}")
        yield self.env.timeout(self.takeover_delay)
        # The new instance takes over: mastership + component restart.
        controller.config.ofc_instance = instance
        for component_name in controller.ofc_component_names():
            host = controller.hosts[component_name]
            if host.state.name == "DOWN":
                host.restart()
        for switch_id in controller.network.topology.switches:
            controller.state.to_switch_queue(switch_id).put(
                SwitchRequest(MsgKind.ROLE_CHANGE, switch_id,
                              xid=controller.state.next_xid(),
                              sender=instance, role=instance))
        self.completed.append((start, self.env.now, instance))
