"""Consistent network updates: crash-resumable round-based scheduling.

The classic SDN *update* problem (Reitblatt et al.; Foerster & Schmid):
transition each demand from an old forwarding path to a new one such
that every intermediate dataplane state preserves declared properties —
loop freedom, waypoint enforcement, and (where achievable) per-packet
consistency.  This module implements the Foerster & Schmid round-based
*local verification* discipline on ZENITH's DAG-of-operations
abstraction:

* :func:`plan_transition` decomposes a transition into a chain of
  **suffix swaps** (sub-transitions).  Each swap installs the new
  suffix's interior rules destination-backwards (one verified round
  each, at a strictly higher priority), then flips the branch switch,
  then deletes the retired rules.  When the new suffix's interior
  intersects the old path (the reversal gadget), the swap routes
  through an interior-disjoint intermediate path so no reachable state
  ever mixes generations.  Waypoint demands are planned as two
  segments, the segment *after* the waypoint first, so every
  intermediate path still traverses the waypoint.

* :class:`ConsistentUpdateApp` executes the plan round by round.  A
  round advances only once the dataplane ground truth (the aggregated
  ``table_snapshot()`` of the switches — what the paper calls G_d)
  confirms it; this is the "local verification" that turns per-round
  checks into the global guarantee.  The robustness core: every round
  is recorded durably in the NIB *before* submission, so after an app
  crash the scheduler re-derives the current round from NIB + ground
  truth and resumes — acknowledged work is never re-issued.  A stalled
  round (lost message, partitioned switch) is retried with
  timeout/backoff by re-issuing **only the unapplied OPs** as a fresh
  DAG with the *same* entry ids (switch installs are idempotent);
  while a switch stays partitioned the schedule freezes at the current
  round boundary — a consistent state by construction.

* :class:`NaiveUpdateApp` is the 2-phase-less foil: per demand it
  submits one flat DAG (all new rules plus deletions of the retired
  ones, no ordering edges) and keeps no durable round state — on
  restart it blindly rebuilds and resubmits.  Under update-window
  nemeses it exhibits exactly the transient loops / waypoint bypasses /
  mixed-generation paths the consistent scheduler provably avoids.

:class:`UpdateTracker` gives the chaos ConsistencyMonitor a read-only
view of the update window: which demands are transitioning and which
entry ids belong to the old vs. new rule generation (derived entirely
from the durable round records, so classification survives crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..core.controller import ZenithController
from ..core.types import Dag, Op, OpType
from ..net.messages import FlowEntry
from ..net.topology import Topology
from ..sim import AnyOf, Environment
from ..workloads.dags import IdAllocator
from .base import App

__all__ = [
    "RuleSpec",
    "UpdateDemand",
    "UpdatePlanError",
    "SubTransition",
    "plan_transition",
    "UpdateConfig",
    "UpdateTracker",
    "ConsistentUpdateApp",
    "NaiveUpdateApp",
]


@dataclass(frozen=True)
class RuleSpec:
    """An abstract forwarding rule: ``switch`` sends demand traffic on."""

    switch: str
    next_hop: str


@dataclass(frozen=True)
class UpdateDemand:
    """One old-path → new-path transition with declared properties.

    Every demand claims loop freedom.  A demand with a ``waypoint``
    claims waypoint enforcement (the waypoint must lie on both paths);
    a demand without one claims per-packet consistency — the planner
    must find a mixing-free schedule or fail loudly.
    """

    src: str
    dst: str
    old_path: tuple[str, ...]
    new_path: tuple[str, ...]
    waypoint: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "old_path", tuple(self.old_path))
        object.__setattr__(self, "new_path", tuple(self.new_path))
        for label, path in (("old", self.old_path), ("new", self.new_path)):
            if len(path) < 2 or path[0] != self.src or path[-1] != self.dst:
                raise ValueError(
                    f"{label} path of {self.src}->{self.dst} must run "
                    f"src..dst, got {path!r}")
            if len(set(path)) != len(path):
                raise ValueError(f"{label} path {path!r} is not simple")
        if self.waypoint is not None:
            for label, path in (("old", self.old_path),
                                ("new", self.new_path)):
                if self.waypoint not in path[1:-1]:
                    raise ValueError(
                        f"waypoint {self.waypoint!r} not interior to the "
                        f"{label} path {path!r}")

    @property
    def claims(self) -> tuple[str, ...]:
        """Invariants this demand declares (monitor condition names)."""
        claims = ["forwarding-loop"]
        if self.waypoint is not None:
            claims.append("waypoint-bypass")
        else:
            claims.append("per-packet-inconsistency")
        return tuple(claims)

    def to_json_obj(self) -> dict:
        obj = {
            "src": self.src,
            "dst": self.dst,
            "old_path": list(self.old_path),
            "new_path": list(self.new_path),
        }
        if self.waypoint is not None:
            obj["waypoint"] = self.waypoint
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "UpdateDemand":
        known = {"src", "dst", "old_path", "new_path", "waypoint"}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown update-demand fields {sorted(unknown)}")
        return cls(src=obj["src"], dst=obj["dst"],
                   old_path=tuple(obj["old_path"]),
                   new_path=tuple(obj["new_path"]),
                   waypoint=obj.get("waypoint"))


class UpdatePlanError(ValueError):
    """No consistent round schedule exists for a demand."""


@dataclass(frozen=True)
class SubTransition:
    """One suffix swap: verified install rounds, a flip, then deletes.

    ``install_rounds`` are executed in order, each as its own verified
    round (the last round is the flip at the branch switch — the only
    rule change that moves live traffic).  ``delete_rules`` are the
    retired rules removed, as one final round, once the flip is
    verified.  ``priority`` is the TCAM priority of every installed
    rule (strictly higher than everything the swap retires).
    """

    install_rounds: tuple[tuple[RuleSpec, ...], ...]
    delete_rules: tuple[RuleSpec, ...]
    priority: int

    @property
    def installed_rules(self) -> tuple[RuleSpec, ...]:
        """All rules this swap installs, round order."""
        return tuple(spec for rnd in self.install_rounds for spec in rnd)


def _direct_swap(old: Sequence[str], new: Sequence[str]) -> SubTransition:
    """Suffix swap for paths whose new-suffix interior avoids ``old``."""
    branch = _branch_index(old, new)
    old_suffix = old[branch:]
    new_suffix = new[branch:]
    rounds = []
    # Interior rules destination-backwards, one verified round each, so
    # a rule is only installed once its downstream segment exists.
    for i in range(len(new_suffix) - 2, 0, -1):
        rounds.append((RuleSpec(new_suffix[i], new_suffix[i + 1]),))
    # The flip: the branch switch joins the new suffix.
    rounds.append((RuleSpec(old[branch], new_suffix[1]),))
    deletes = tuple(RuleSpec(old_suffix[i], old_suffix[i + 1])
                    for i in range(len(old_suffix) - 1))
    return SubTransition(tuple(rounds), deletes, priority=0)


def _branch_index(old: Sequence[str], new: Sequence[str]) -> int:
    """Index of the last node of the longest common prefix."""
    limit = min(len(old), len(new))
    i = 0
    while i + 1 < limit and old[i + 1] == new[i + 1]:
        i += 1
    return i


def _plan_segment(topo: Topology, old: Sequence[str],
                  new: Sequence[str]) -> list[SubTransition]:
    """Suffix-swap chain taking ``old`` to ``new`` without mixing.

    A swap is *direct* when the new suffix's interior avoids every node
    of the old path (installing it cannot create a reachable cycle or
    a mixed path).  Otherwise — the reversal gadget — the segment
    routes through an intermediate path whose interior is disjoint
    from both, yielding two direct swaps.
    """
    old = list(old)
    new = list(new)
    if old == new:
        return []
    branch = _branch_index(old, new)
    new_interior = set(new[branch + 1:-1])
    if not new_interior & set(old):
        return [_direct_swap(old, new)]
    src_side, dst = old[branch], old[-1]
    banned = (set(old) | set(new)) - {src_side, dst}
    via = topo.shortest_path(src_side, dst, excluded=banned)
    if via is None:
        raise UpdatePlanError(
            f"no interior-disjoint intermediate path {src_side}->{dst}: "
            f"per-packet-consistent schedule impossible for old={old!r} "
            f"new={new!r}")
    mid = old[:branch] + via
    return _plan_segment(topo, old, mid) + _plan_segment(topo, mid, new)


def plan_transition(topo: Topology,
                    demand: UpdateDemand) -> tuple[SubTransition, ...]:
    """Round schedule for one demand, priorities strictly increasing.

    Waypoint demands are split at the waypoint and the downstream
    segment is updated first, so every intermediate forwarding state
    still traverses the waypoint.
    """
    for label, path in (("old", demand.old_path), ("new", demand.new_path)):
        for a, b in zip(path, path[1:]):
            if not topo.graph.has_edge(a, b):
                raise UpdatePlanError(
                    f"{label} path hop {a}->{b} is not a link of "
                    f"{topo.name}")
    if demand.waypoint is not None:
        w = demand.waypoint
        io, in_ = demand.old_path.index(w), demand.new_path.index(w)
        subs = (_plan_segment(topo, demand.old_path[io:],
                              demand.new_path[in_:]) +
                _plan_segment(topo, demand.old_path[:io + 1],
                              demand.new_path[:in_ + 1]))
    else:
        subs = _plan_segment(topo, demand.old_path, demand.new_path)
    return tuple(replace(sub, priority=k + 1) for k, sub in enumerate(subs))


@dataclass(frozen=True)
class UpdateConfig:
    """Timing knobs of the update schedulers."""

    #: Sim time at which the old→new transition begins (baselines are
    #: installed immediately at app start, well before this).
    update_at: float = 13.0
    #: Seconds to wait for a round before checking ground truth again.
    round_timeout: float = 1.5
    #: Exponential backoff factor between verification attempts.
    backoff: float = 2.0
    #: Backoff cap.
    max_timeout: float = 6.0
    #: Stalled attempts before re-issuing the round's unapplied OPs.
    reissue_after: int = 1


class UpdateTracker:
    """Read-only window/generation view for the ConsistencyMonitor.

    Everything is derived from the app's durable NIB round records, so
    classification keeps working across app crashes and re-issues: an
    entry id belongs to the *old* generation of demand ``d`` while the
    active sub-transition lists its rule among the retirees, and to the
    *new* generation while it lists it among the installs.
    """

    def __init__(self, app: "UpdateAppBase"):
        self.app = app

    @property
    def demands(self) -> list[UpdateDemand]:
        return self.app.demands

    def in_window(self, demand_index: int) -> bool:
        """Whether the demand is mid-transition right now."""
        return self.app.active_sub(demand_index) is not None

    def classify(self, demand_index: int, entry_id: int) -> Optional[str]:
        """``"old"`` / ``"new"`` generation of an entry id, else None."""
        sub_index = self.app.active_sub(demand_index)
        if sub_index is None:
            return None
        sub = self.app.plan_for(demand_index)[sub_index]
        if entry_id in self.app.entry_ids_matching(demand_index,
                                                   sub.delete_rules):
            return "old"
        if entry_id in self.app.entry_ids_matching(demand_index,
                                                   sub.installed_rules):
            return "new"
        return None


class UpdateAppBase(App):
    """Durable round bookkeeping shared by both update schedulers.

    All scheduling state lives in NIB tables (assumption A2: the NIB
    survives component crashes); the app's in-memory state is reset by
    ``setup()`` on every (re)start and rebuilt from them:

    ``rounds``    round key → tuple of DAG ids (attempt history)
    ``dags``      DAG id → the submitted :class:`Dag`
    ``progress``  markers: active sub per demand, completed subs,
                  re-issue counter, transition-done
    """

    def __init__(self, env: Environment, controller: ZenithController,
                 demands: Sequence[UpdateDemand],
                 alloc: Optional[IdAllocator] = None,
                 config: Optional[UpdateConfig] = None,
                 name: str = "update-app"):
        super().__init__(env, controller, name)
        self.demands = list(demands)
        self.alloc = alloc if alloc is not None else IdAllocator()
        self.config = config if config is not None else UpdateConfig()
        ns = f"{controller.name}.app.{name}"
        self._rounds = controller.nib.table(f"{ns}.rounds")
        self._dags = controller.nib.table(f"{ns}.dags")
        self._progress = controller.nib.table(f"{ns}.progress")
        self.tracker = UpdateTracker(self)
        self._plans: Optional[list[tuple[SubTransition, ...]]] = None

    # -- plan / durable-state accessors (also used by the tracker) --------
    def plan_for(self, demand_index: int) -> tuple[SubTransition, ...]:
        """The demand's round schedule (pure recompute, crash-stable)."""
        if self._plans is None:
            topo = self.controller.network.topology
            self._plans = [self._plan(topo, d) for d in self.demands]
        return self._plans[demand_index]

    def _plan(self, topo: Topology,
              demand: UpdateDemand) -> tuple[SubTransition, ...]:
        return plan_transition(topo, demand)

    def active_sub(self, demand_index: int) -> Optional[int]:
        """Index of the demand's in-flight sub-transition, if any."""
        return self._progress.get(("active-sub", demand_index))

    def entry_ids_matching(self, demand_index: int,
                           specs: Iterable[RuleSpec]) -> frozenset[int]:
        """Entry ids of recorded installs matching ``specs``.

        Scans every recorded DAG of the demand (all attempts), so ids
        from re-issued rounds and earlier app incarnations are all
        classified.
        """
        wanted = {(s.switch, s.next_hop) for s in specs}
        if not wanted:
            return frozenset()
        dst = self.demands[demand_index].dst
        found = set()
        for key, dag_ids in sorted(self._rounds.items()):
            if key[1] != demand_index:
                continue
            for dag_id in dag_ids:
                dag = self._dags.get(dag_id)
                if dag is None:
                    continue
                for op in dag.ops.values():
                    if (op.op_type is OpType.INSTALL
                            and op.entry.dst == dst
                            and (op.switch, op.entry.next_hop) in wanted):
                        found.add(op.entry.entry_id)
        return frozenset(found)

    @property
    def transition_done(self) -> bool:
        """Whether every demand reached its new path (durable marker)."""
        return bool(self._progress.get(("transition-done",)))

    @property
    def reissues(self) -> int:
        """Rounds re-issued after stalls, across app incarnations."""
        return int(self._progress.get(("reissues",), 0))

    # -- tracing ----------------------------------------------------------
    def _instant(self, name: str, **args) -> None:
        if self.env._tracing:
            self.env.tracer.instant(self.env, name, track=self.name, **args)

    # -- shared round machinery ------------------------------------------
    def _recorded_dag(self, key: tuple) -> Optional[Dag]:
        dag_ids = self._rounds.get(key)
        if not dag_ids:
            return None
        return self._dags.get(dag_ids[-1])

    def _record_round(self, key: tuple, dag: Dag) -> None:
        """Persist a round's DAG *before* submitting it (crash safety)."""
        self._dags.put(dag.dag_id, dag)
        history = self._rounds.get(key, ())
        self._rounds.put(key, tuple(history) + (dag.dag_id,))

    def _applied(self, dag: Dag) -> bool:
        """Ground truth: every OP of the round took effect on-switch.

        This is the Foerster & Schmid *local verification* step, read
        from the aggregated ``table_snapshot()`` state (G_d) rather
        than the controller's view — an acknowledged-but-unrecorded op
        still counts, a sent-but-dropped one does not.
        """
        actual = self.controller.network.routing_state()
        for op in dag.ops.values():
            installed = actual.get(op.switch, frozenset())
            if op.op_type is OpType.INSTALL:
                if op.entry.entry_id not in installed:
                    return False
            elif op.op_type is OpType.DELETE:
                if op.entry_id in installed:
                    return False
        return True

    def _install_dag(self, rules: Iterable[RuleSpec], dst: str,
                     priority: int) -> Dag:
        ops = [Op(self.alloc.op_id(), spec.switch, OpType.INSTALL,
                  entry=FlowEntry(self.alloc.entry_id(), dst,
                                  spec.next_hop, priority))
               for spec in rules]
        return Dag(self.alloc.dag_id(), ops)

    def _baseline_key(self, demand_index: int) -> tuple:
        return ("base", demand_index)

    def _baseline_dag(self, demand_index: int) -> Dag:
        """The demand's old-path DAG (round 0), destination-backwards."""
        demand = self.demands[demand_index]
        specs = [RuleSpec(a, b) for a, b in zip(demand.old_path,
                                                demand.old_path[1:])]
        dag = self._install_dag(specs, demand.dst, priority=0)
        ops = sorted(dag.ops)
        for later, earlier in zip(ops, ops[1:]):
            dag.add_edge(earlier, later)
        return dag

    def _retired_dag_ids(self, demand_index: int,
                         specs: Iterable[RuleSpec]) -> list[int]:
        """Recorded DAGs owning any entry a delete round retires."""
        targets = self.entry_ids_matching(demand_index, specs)
        owners = set()
        for key, dag_ids in sorted(self._rounds.items()):
            if key[1] != demand_index:
                continue
            for dag_id in dag_ids:
                dag = self._dags.get(dag_id)
                if dag is None:
                    continue
                if any(entry_id in targets
                       for _, entry_id in dag.install_entries()):
                    owners.add(dag_id)
        return sorted(owners)

    def _delete_ops(self, demand_index: int,
                    specs: Iterable[RuleSpec]) -> list[Op]:
        """DELETE ops for every recorded entry matching ``specs``."""
        targets = self.entry_ids_matching(demand_index, specs)
        entry_switch = {}
        for key, dag_ids in sorted(self._rounds.items()):
            if key[1] != demand_index:
                continue
            for dag_id in dag_ids:
                dag = self._dags.get(dag_id)
                if dag is None:
                    continue
                for switch, entry_id in sorted(dag.install_entries()):
                    if entry_id in targets:
                        entry_switch[entry_id] = switch
        return [Op(self.alloc.op_id(), entry_switch[entry_id], OpType.DELETE,
                   entry_id=entry_id)
                for entry_id in sorted(entry_switch)]


class ConsistentUpdateApp(UpdateAppBase):
    """Round-based, locally verified, crash-resumable update scheduler.

    ``main()`` is a pure replay of the round script: every round is
    skipped when its recorded DAG already verifies against ground
    truth, so a restarted app fast-forwards to exactly the round the
    previous incarnation was executing and continues — never
    re-issuing acknowledged work.  A round that cannot verify (message
    lost, switch partitioned) is retried with timeout/backoff; after
    ``reissue_after`` stalls the unapplied remainder is re-issued as a
    fresh DAG with the same entry ids.  Until the round verifies the
    schedule does not advance: under a partition the dataplane freezes
    at a consistent round boundary.
    """

    def main(self):
        for demand_index in range(len(self.demands)):
            yield from self._run_round(self._baseline_key(demand_index),
                                       lambda d=demand_index:
                                       self._baseline_dag(d))
        if self.env.now < self.config.update_at:
            yield self.env.timeout(self.config.update_at - self.env.now)
        if not self.transition_done:
            self._instant("update-transition-start")
        for demand_index, demand in enumerate(self.demands):
            plan = self.plan_for(demand_index)
            for sub_index, sub in enumerate(plan):
                if self._progress.get(("sub-done", demand_index, sub_index)):
                    continue
                self._progress.put(("active-sub", demand_index), sub_index)
                for round_index, rules in enumerate(sub.install_rounds):
                    key = ("inst", demand_index, sub_index, round_index)
                    yield from self._run_round(
                        key,
                        lambda rules=rules, d=demand_index, p=sub.priority:
                        self._install_dag(rules, self.demands[d].dst, p))
                yield from self._run_round(
                    ("del", demand_index, sub_index),
                    lambda d=demand_index, sub=sub:
                    self._build_delete_round(d, sub))
                self._progress.delete(("active-sub", demand_index))
                self._progress.put(("sub-done", demand_index, sub_index),
                                   True)
                self._instant("update-sub-done", demand=demand_index,
                              sub=sub_index)
        if not self.transition_done:
            self._progress.put(("transition-done",), True)
            self._instant("update-transition-done")
        while True:
            yield self.events.get()

    def recover(self):
        self._instant("update-resume")
        return None

    def _build_delete_round(self, demand_index: int,
                            sub: SubTransition) -> Dag:
        # Mark the DAGs whose entries are being retired STALE first, so
        # the monitor's certified-not-installed invariant does not see
        # a DONE DAG losing entries (the RoutingApp discipline).
        for dag_id in self._retired_dag_ids(demand_index, sub.delete_rules):
            self.remove_dag(dag_id, cleanup=False)
        return Dag(self.alloc.dag_id(),
                   self._delete_ops(demand_index, sub.delete_rules))

    def _run_round(self, key: tuple, builder):
        """Execute one round to verified completion (resume-aware)."""
        dag = self._recorded_dag(key)
        if dag is None:
            dag = builder()
            self._record_round(key, dag)
        if self._applied(dag):
            return
        self._instant("update-round-start", round=_round_label(key))
        attempt = 0
        while True:
            if self.controller.state.dag_status_of(dag.dag_id) is None:
                self.submit_dag(dag)
            waiter = self.controller.wait_for_dag(dag.dag_id)
            timeout = self.env.timeout(self._attempt_timeout(attempt))
            yield AnyOf(self.env, [waiter, timeout])
            if self._applied(dag):
                self._instant("update-round-done", round=_round_label(key))
                return
            attempt += 1
            self._instant("update-round-stalled", round=_round_label(key),
                          attempt=attempt)
            if attempt >= self.config.reissue_after:
                dag = self._reissue(key, dag)

    def _attempt_timeout(self, attempt: int) -> float:
        return min(self.config.round_timeout * self.config.backoff ** attempt,
                   self.config.max_timeout)

    def _reissue(self, key: tuple, dag: Dag) -> Dag:
        """Fresh DAG carrying only the round's unapplied OPs.

        Entry ids are reused — a duplicate install overwrites the same
        TCAM slot idempotently, and deleting an already-deleted id is a
        no-op — so a delayed original racing its replacement converges
        to the same dataplane state.
        """
        actual = self.controller.network.routing_state()
        ops = []
        for op_id in sorted(dag.ops):
            op = dag.ops[op_id]
            installed = actual.get(op.switch, frozenset())
            if op.op_type is OpType.INSTALL:
                if op.entry.entry_id not in installed:
                    ops.append(Op(self.alloc.op_id(), op.switch,
                                  OpType.INSTALL, entry=op.entry))
            elif op.entry_id in installed:
                ops.append(Op(self.alloc.op_id(), op.switch, OpType.DELETE,
                              entry_id=op.entry_id))
        if not ops:
            return dag
        self.remove_dag(dag.dag_id, cleanup=False)
        fresh = Dag(self.alloc.dag_id(), ops)
        self._record_round(key, fresh)
        self._progress.put(("reissues",), self.reissues + 1)
        self._instant("update-round-reissue", round=_round_label(key),
                      dag=fresh.dag_id)
        self.submit_dag(fresh)
        return fresh


class NaiveUpdateApp(UpdateAppBase):
    """The 2-phase-less foil: flat unordered DAGs, no durable rounds.

    Per demand, one DAG installs every new-exclusive rule and deletes
    every old-exclusive one with no ordering edges — the dataplane
    passes through arbitrary rule interleavings.  The transition DAGs
    are *recorded* (so the tracker can classify generations and crash
    restarts are observable) but progress is not: a restarted naive
    app rebuilds fresh DAGs and blindly resubmits.
    """

    def main(self):
        for demand_index in range(len(self.demands)):
            key = self._baseline_key(demand_index)
            dag = self._recorded_dag(key)
            if dag is None:
                dag = self._baseline_dag(demand_index)
                self._record_round(key, dag)
            if not self._applied(dag):
                if self.controller.state.dag_status_of(dag.dag_id) is None:
                    self.submit_dag(dag)
                yield self.controller.wait_for_dag(dag.dag_id)
        if self.env.now < self.config.update_at:
            yield self.env.timeout(self.config.update_at - self.env.now)
        self._instant("update-transition-start")
        pending = []
        for demand_index, demand in enumerate(self.demands):
            (sub,) = self.plan_for(demand_index)
            retired, added = sub.delete_rules, sub.installed_rules
            for dag_id in self._retired_dag_ids(demand_index, retired):
                self.remove_dag(dag_id, cleanup=False)
            delete_ops = self._delete_ops(demand_index, retired)
            install_ops = [
                Op(self.alloc.op_id(), spec.switch, OpType.INSTALL,
                   entry=FlowEntry(self.alloc.entry_id(), demand.dst,
                                   spec.next_hop, sub.priority))
                for spec in added
            ]
            flat = Dag(self.alloc.dag_id(), install_ops + delete_ops)
            self._progress.put(("active-sub", demand_index), 0)
            # Record under a unique key so tracker classification sees
            # every incarnation's entry ids.
            self._record_round(("naive", demand_index, flat.dag_id), flat)
            self.submit_dag(flat)
            self._instant("update-round-start",
                          round=f"naive-{demand_index}")
            pending.append((demand_index, flat))
        for demand_index, dag in pending:
            yield self.controller.wait_for_dag(dag.dag_id)
            self._instant("update-round-done", round=f"naive-{demand_index}")
            if self._applied(dag):
                self._progress.delete(("active-sub", demand_index))
        self._progress.put(("transition-done",), True)
        self._instant("update-transition-done")
        while True:
            yield self.events.get()

    def recover(self):
        self._instant("update-resume")
        return None

    def _plan(self, topo: Topology,
              demand: UpdateDemand) -> tuple[SubTransition, ...]:
        """A single pseudo-sub (the whole flat batch) for the tracker."""
        old = {RuleSpec(a, b)
               for a, b in zip(demand.old_path, demand.old_path[1:])}
        new = {RuleSpec(a, b)
               for a, b in zip(demand.new_path, demand.new_path[1:])}
        retired = tuple(sorted(old - new,
                               key=lambda s: (s.switch, s.next_hop)))
        added = tuple(sorted(new - old,
                             key=lambda s: (s.switch, s.next_hop)))
        return (SubTransition((added,), retired, priority=1),)


def _round_label(key: tuple) -> str:
    return "-".join(str(part) for part in key)
