"""Hitless drain/undrain application (paper §E, Listings 4–6).

Given a drain request the app: (1) collects the endpoints that must
stay connected, (2) computes new shortest paths assuming the drained
node is gone, (3) builds a DAG that installs the new paths at a
strictly higher priority than anything previously installed and only
then deletes the old paths' OPs (``ComputeDrainDAG``), and (4) submits
it.  Undrain reverses the process over the full topology.

The app enforces the §4 app-specific invariant: it refuses to drain a
switch when doing so would disconnect required endpoints or exceed the
configured capacity-loss budget (default 25%, after [51, 56]).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.controller import ZenithController
from ..core.types import AppEventKind, Dag
from ..sim import Environment, FifoQueue
from ..workloads.dags import IdAllocator
from .base import TransitioningApp

__all__ = ["DrainApp", "DrainRequest", "DrainRejected"]


class DrainRejected(Exception):
    """Raised when a drain would violate the app's safety invariants."""


class DrainRequest:
    """A request to drain (or undrain) one switch."""

    def __init__(self, node: str, drain: bool = True):
        self.node = node
        self.drain = drain

    def __repr__(self) -> str:
        verb = "drain" if self.drain else "undrain"
        return f"DrainRequest({verb} {self.node})"


class DrainApp(TransitioningApp):
    """The drainer process of paper Listing 4."""

    #: Maximum fraction of switches that may be drained simultaneously.
    max_drained_fraction = 0.25

    def __init__(self, env: Environment, controller: ZenithController,
                 demands: Sequence[tuple[str, str]],
                 alloc: Optional[IdAllocator] = None,
                 name: str = "drain-app"):
        super().__init__(env, controller, name, alloc=alloc)
        self.demands = list(demands)
        self.requests = FifoQueue(env, f"{name}.requests")
        self.drained: set[str] = set()
        #: (time, node, "drain"/"undrain") log for experiments.
        self.completed: list[tuple[float, str, str]] = []

    # -- public API ------------------------------------------------------------
    def request_drain(self, node: str) -> None:
        """Enqueue a drain request (the DrainRequestQueue of Listing 5)."""
        self.requests.put(DrainRequest(node, drain=True))

    def request_undrain(self, node: str) -> None:
        """Enqueue an undrain request."""
        self.requests.put(DrainRequest(node, drain=False))

    # -- invariants (§4 app-specific) ----------------------------------------------
    def _check_invariants(self, node: str) -> None:
        topo = self.controller.network.topology
        proposed = self.drained | {node}
        if len(proposed) > self.max_drained_fraction * len(topo):
            raise DrainRejected(
                f"draining {node} exceeds the "
                f"{self.max_drained_fraction:.0%} capacity budget")
        endpoints = {e for pair in self.demands for e in pair}
        if node in endpoints:
            raise DrainRejected(f"{node} is a traffic endpoint")
        for src, dst in self.demands:
            if topo.shortest_path(src, dst, excluded=proposed) is None:
                raise DrainRejected(
                    f"draining {node} disconnects {src}->{dst}")

    # -- DAG computation (ComputeDrainDAG, Listing 6) -----------------------------------
    def _paths_excluding(self, excluded: set[str]) -> list[list[str]]:
        """Shortest paths for all demands, spread across candidates.

        Among the k shortest candidates per demand, pick the one whose
        links are least loaded by already-placed demands, so that
        multipath fabrics (fat-trees) are used at their capacity.
        """
        topo = self.controller.network.topology
        load: dict[tuple[str, str], int] = {}

        def link_key(a: str, b: str) -> tuple[str, str]:
            return (a, b) if a < b else (b, a)

        paths = []
        for src, dst in self.demands:
            candidates = topo.k_shortest_paths(src, dst, 4, excluded=excluded)
            if not candidates:
                continue
            shortest = len(candidates[0])
            candidates = [p for p in candidates if len(p) == shortest]

            def overlap(path):
                return sum(load.get(link_key(a, b), 0)
                           for a, b in zip(path, path[1:]))

            best = min(candidates, key=overlap)
            for a, b in zip(best, best[1:]):
                key = link_key(a, b)
                load[key] = load.get(key, 0) + 1
            paths.append(best)
        return paths

    def _apply(self, request: DrainRequest) -> Dag:
        if request.drain:
            self._check_invariants(request.node)
            self.drained.add(request.node)
        else:
            self.drained.discard(request.node)
        # Priority bump happens in submit_transition:
        # HighestPriorityInOPSet(previous) + 1 (Listing 6).
        return self.submit_transition(self._paths_excluding(set(self.drained)))

    # -- event loop -------------------------------------------------------------------
    def install_initial(self) -> Optional[Dag]:
        """Route all demands over the full topology."""
        return self.submit_fresh(self._paths_excluding(set()))

    def main(self):
        if self.current_dag is None:
            self.install_initial()
        pending: Optional[DrainRequest] = None
        pending_dag: Optional[int] = None
        while True:
            if pending is None:
                request = yield self.requests.get()
                try:
                    dag = self._apply(request)
                except DrainRejected:
                    continue
                pending, pending_dag = request, dag.dag_id
            else:
                event = yield self.events.get()
                if (event.kind is AppEventKind.DAG_DONE
                        and event.dag_id == pending_dag):
                    verb = "drain" if pending.drain else "undrain"
                    self.completed.append((self.env.now, pending.node, verb))
                    pending, pending_dag = None, None
