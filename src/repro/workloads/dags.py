"""DAG builders: turn routing intents into hitless OP DAGs.

The canonical construction (paper Fig. 5): to route a flow along a
path, install entries from the destination backwards, so that at no
point does a switch forward traffic toward a hop that cannot yet
continue it.  To *replace* routes hitlessly (drain, TE shifts), install
the new path's entries at a strictly higher priority first, then delete
the old entries — the structure Listing 6 computes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.types import Dag, Op, OpType
from ..net.messages import FlowEntry

__all__ = ["IdAllocator", "path_ops", "path_dag", "transition_dag",
           "multi_path_dag"]


class IdAllocator:
    """Process-wide unique ids for OPs, entries and DAGs."""

    def __init__(self, op_start: int = 1, entry_start: int = 1,
                 dag_start: int = 1):
        self._ops = itertools.count(op_start)
        self._entries = itertools.count(entry_start)
        self._dags = itertools.count(dag_start)

    def op_id(self) -> int:
        """Fresh OP id."""
        return next(self._ops)

    def entry_id(self) -> int:
        """Fresh TCAM entry id."""
        return next(self._entries)

    def dag_id(self) -> int:
        """Fresh DAG id."""
        return next(self._dags)


def path_ops(alloc: IdAllocator, path: Sequence[str], dst: str,
             priority: int = 0) -> list[Op]:
    """INSTALL OPs for each hop of ``path`` toward ``dst``.

    Returned in forward order (source first); callers decide ordering
    edges.  The final hop needs no entry (it *is* the destination).
    """
    ops = []
    for hop, next_hop in zip(path, path[1:]):
        entry = FlowEntry(alloc.entry_id(), dst, next_hop, priority)
        ops.append(Op(alloc.op_id(), hop, OpType.INSTALL, entry=entry))
    return ops


def path_dag(alloc: IdAllocator, path: Sequence[str], dst: Optional[str] = None,
             priority: int = 0) -> Dag:
    """A DAG installing ``path`` destination-first (hitless order).

    Edges force hop i+1's entry before hop i's: C:D precedes A:C in the
    paper's Fig. 5 example.
    """
    dst = dst if dst is not None else path[-1]
    ops = path_ops(alloc, path, dst, priority)
    edges = [(ops[i + 1].op_id, ops[i].op_id) for i in range(len(ops) - 1)]
    return Dag(alloc.dag_id(), ops, edges)


def multi_path_dag(alloc: IdAllocator, paths: Iterable[Sequence[str]],
                   priority: int = 0) -> Dag:
    """One DAG installing several independent paths (parallel chains)."""
    all_ops: list[Op] = []
    edges: list[tuple[int, int]] = []
    for path in paths:
        ops = path_ops(alloc, path, path[-1], priority)
        edges.extend((ops[i + 1].op_id, ops[i].op_id)
                     for i in range(len(ops) - 1))
        all_ops.extend(ops)
    return Dag(alloc.dag_id(), all_ops, edges)


def transition_dag(alloc: IdAllocator, new_paths: Iterable[Sequence[str]],
                   old_ops: Iterable[Op], priority: int) -> Dag:
    """Install ``new_paths`` at ``priority``; then delete ``old_ops``.

    The Listing 6 construction: every deletion OP is attached after all
    the leaves of the installation sub-DAG, so old state is removed only
    once the new state is fully installed and carrying traffic.
    """
    all_ops: list[Op] = []
    edges: list[tuple[int, int]] = []
    for path in new_paths:
        ops = path_ops(alloc, path, path[-1], priority)
        edges.extend((ops[i + 1].op_id, ops[i].op_id)
                     for i in range(len(ops) - 1))
        all_ops.extend(ops)
    install_ids = [op.op_id for op in all_ops]
    deletions = []
    for old in old_ops:
        if old.op_type is not OpType.INSTALL or old.entry is None:
            continue
        deletions.append(Op(alloc.op_id(), old.switch, OpType.DELETE,
                            entry_id=old.entry.entry_id))
    for deletion in deletions:
        all_ops.append(deletion)
        edges.extend((install_id, deletion.op_id)
                     for install_id in install_ids)
    return Dag(alloc.dag_id(), all_ops, edges)
