"""Background dataplane state: pre-populated flow tables.

Real deployments run with thousands of standing entries per switch; the
paper's reconciliation-cost measurements (Fig. 4) sweep exactly this.
:func:`preload_background_state` installs synthetic standing intent
*directly* (bypassing the pipeline, as if installed long ago): entries
in the switches' TCAMs, a DONE DAG per switch in the NIB, and matching
routing-view records — so reconciliation has real work to read and push
through the NIB, and recovery paths have real state to restore.
"""

from __future__ import annotations

from ..core.controller import ZenithController
from ..core.types import Dag, DagStatus, Op, OpStatus, OpType
from ..net.messages import FlowEntry

__all__ = ["preload_background_state"]


def preload_background_state(controller: ZenithController,
                             entries_per_switch: int,
                             alloc, register_ops: bool = True) -> list[Dag]:
    """Install ``entries_per_switch`` standing entries on every switch.

    With ``register_ops=True`` (default) entries are registered as
    completed intent (one DONE DAG per switch, owned by a sequencer) so
    that reconciliation treats them as wanted and a recovery wipe
    triggers their re-installation through the normal pipeline.

    With ``register_ops=False`` the entries are only recorded in the
    switch tables, the routing view and the controller's protected-
    intent set — no per-entry OP objects.  This is memory-lean enough
    for the 750-node scale experiments, where background state exists
    purely to give reconciliation realistic read/update volumes.
    """
    network = controller.network
    state = controller.state
    if not register_ops:
        for switch_id in network.topology.switches:
            switch = network[switch_id]
            neighbors = network.topology.neighbors(switch_id)
            next_hop = neighbors[0] if neighbors else switch_id
            for i in range(entries_per_switch):
                entry = FlowEntry(alloc.entry_id(), f"bg-{switch_id}-{i}",
                                  next_hop, 0)
                switch.flow_table[entry.entry_id] = entry
                switch.first_install.setdefault(entry.entry_id, 0.0)
                state.routing_view.put((switch_id, entry.entry_id), -1)
                state.protected_entries.add((switch_id, entry.entry_id))
        return []
    dags = []
    num_sequencers = max(1, controller.config.num_sequencers)
    for index, switch_id in enumerate(network.topology.switches):
        switch = network[switch_id]
        neighbors = network.topology.neighbors(switch_id)
        next_hop = neighbors[0] if neighbors else switch_id
        ops = []
        for i in range(entries_per_switch):
            entry = FlowEntry(alloc.entry_id(), f"bg-{switch_id}-{i}",
                              next_hop, 0)
            ops.append(Op(alloc.op_id(), switch_id, OpType.INSTALL,
                          entry=entry))
        if not ops:
            continue
        dag = Dag(alloc.dag_id(), ops)
        state.register_dag(dag, owner=index % num_sequencers)
        state.set_dag_status(dag.dag_id, DagStatus.DONE)
        for op in ops:
            state.set_op_status(op.op_id, OpStatus.DONE)
            switch.flow_table[op.entry.entry_id] = op.entry
            switch.first_install.setdefault(op.entry.entry_id, 0.0)
            state.record_installed(switch_id, op.entry.entry_id, op.op_id)
        dags.append(dag)
    return dags
