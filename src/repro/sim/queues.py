"""Queues and stores used for inter-component communication.

Two disciplines are provided, matching the ones the ZENITH specification
relies on (§3.9 of the paper):

* :class:`FifoQueue` — classic FIFO with blocking ``get``.  Used where
  losing an in-flight item on a crash is acceptable or recovered some
  other way (e.g. switch channels).
* :class:`AckQueue` — read-then-pop ("peek") discipline: ``read`` returns
  the head *without* removing it and ``pop`` removes it once processing
  completed.  A component that crashes between read and pop re-reads the
  same item after restart, giving at-least-once processing.  This is the
  queue discipline that fixes the "event lost on crash" class of
  specification errors (Listing 3 in the paper).

Bookkeeping: all three primitives share one counter surface —
``put_count`` / ``get_count`` (plus ``depth_hwm`` for the two real
queues).  These are unconditional plain-int bumps; the expensive
telemetry (per-item wait-time histograms, queue-depth trace counters) is
gated behind ``_obs``/``env._tracing`` checks installed by
:mod:`repro.obs`, so a queue without observers pays almost nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event

__all__ = ["FifoQueue", "AckQueue", "Store", "QueueClosed"]


class QueueClosed(Exception):
    """Raised by pending getters when the queue is shut down."""


def _trace_depth(queue) -> None:
    """Emit the queue's depth as a Chrome-trace counter sample."""
    queue.env.tracer.counter(
        queue.env, f"queue {queue.name} depth",
        {"depth": len(queue._items)})


class FifoQueue:
    """Unbounded FIFO queue with event-based blocking gets."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._closed = False
        #: Total number of items ever put.
        self.put_count = 0
        #: Total number of items ever handed to a consumer.
        self.get_count = 0
        #: High-water mark of the queued depth.
        self.depth_hwm = 0
        # Wait-time histogram installed by MetricsRegistry.register_queue.
        self._obs = None
        self._wait_ts: deque[float] = deque()
        registry = getattr(env, "metrics", None)
        if registry is not None:
            registry.register_queue(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (head first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._closed:
            raise QueueClosed(self.name)
        self.put_count += 1
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            self.get_count += 1
            if self._obs is not None:
                self._obs.observe(0.0)
            return
        self._items.append(item)
        if len(self._items) > self.depth_hwm:
            self.depth_hwm = len(self._items)
        if self._obs is not None:
            self._wait_ts.append(self.env.now)
        if self.env._tracing:
            _trace_depth(self)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self.get_count += 1
            if self._obs is not None:
                self._obs.observe(self.env.now - self._wait_ts.popleft())
            if self.env._tracing:
                _trace_depth(self)
        elif self._closed:
            event.fail(QueueClosed(self.name))
        else:
            self._getters.append(event)
            event._cancel_hook = lambda: self.cancel(event)  # type: ignore[attr-defined]
        return event

    def cancel(self, event: Event) -> None:
        """Forget a pending getter (used when the waiter is interrupted)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def clear(self) -> int:
        """Drop all queued items, returning how many were dropped."""
        dropped = len(self._items)
        self._items.clear()
        self._wait_ts.clear()
        if dropped and self.env._tracing:
            _trace_depth(self)
        return dropped

    def close(self) -> None:
        """Fail all pending getters and reject future puts."""
        self._closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(QueueClosed(self.name))


class AckQueue:
    """FIFO queue with peek/pop semantics for at-least-once processing.

    ``read()`` blocks until an item is available and returns the head
    without removing it.  ``pop()`` removes the head.  A consumer that
    crashes after ``read`` but before ``pop`` will observe the same item
    again after restarting, which is exactly the recovery discipline of
    the final WorkerPool specification (paper Listing 3).
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        #: Total number of items ever put.
        self.put_count = 0
        #: Total number of items ever popped.
        self.get_count = 0
        #: High-water mark of the queued depth.
        self.depth_hwm = 0
        self._obs = None
        self._wait_ts: deque[float] = deque()
        registry = getattr(env, "metrics", None)
        if registry is not None:
            registry.register_queue(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (head first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes all waiting readers (they only peek)."""
        self.put_count += 1
        self._items.append(item)
        if len(self._items) > self.depth_hwm:
            self.depth_hwm = len(self._items)
        if self._obs is not None:
            self._wait_ts.append(self.env.now)
        if self.env._tracing:
            _trace_depth(self)
        getters, self._getters = self._getters, deque()
        for getter in getters:
            if not getter.triggered:
                getter.succeed(self._items[0])

    def read(self) -> Event:
        """Event firing with the head item, which stays in the queue."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items[0])
        else:
            self._getters.append(event)
            event._cancel_hook = lambda: self.cancel(event)  # type: ignore[attr-defined]
        return event

    def pop(self) -> Any:
        """Remove and return the head item."""
        if not self._items:
            raise IndexError(f"pop from empty AckQueue {self.name!r}")
        item = self._items.popleft()
        self.get_count += 1
        if self._obs is not None:
            self._obs.observe(self.env.now - self._wait_ts.popleft())
        if self.env._tracing:
            _trace_depth(self)
        return item

    def cancel(self, event: Event) -> None:
        """Forget a pending reader."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def clear(self) -> int:
        """Drop all queued items, returning how many were dropped."""
        dropped = len(self._items)
        self._items.clear()
        self._wait_ts.clear()
        if dropped and self.env._tracing:
            _trace_depth(self)
        return dropped


class Store:
    """A single-slot store that processes can wait on for a value change."""

    def __init__(self, env: Environment, value: Any = None):
        self.env = env
        self._value = value
        self._waiters: list[tuple[Callable[[Any], bool], Event]] = []
        #: Number of ``set`` calls (same counter surface as the queues).
        self.put_count = 0
        #: Number of satisfied waits.
        self.get_count = 0

    @property
    def value(self) -> Any:
        """The currently stored value."""
        return self._value

    def set(self, value: Any) -> None:
        """Store ``value`` and wake any waiter whose predicate matches."""
        self._value = value
        self.put_count += 1
        still_waiting = []
        for predicate, event in self._waiters:
            if event.triggered:
                continue
            if predicate(value):
                event.succeed(value)
                self.get_count += 1
            else:
                still_waiting.append((predicate, event))
        self._waiters = still_waiting

    def wait_for(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing once the stored value satisfies ``predicate``."""
        if predicate is None:
            predicate = lambda _value: True  # noqa: E731 - tiny predicate
        event = Event(self.env)
        if predicate(self._value):
            event.succeed(self._value)
            self.get_count += 1
        else:
            self._waiters.append((predicate, event))
        return event
