"""Deterministic discrete-event simulation kernel.

The substrate on which ZENITH's microservices, switches, baselines and
workloads execute.  See :mod:`repro.sim.core` for the event loop,
:mod:`repro.sim.queues` for communication primitives and
:mod:`repro.sim.component` for crashable component hosting.
"""

from .component import Component, ComponentHost, Crash, HostState, run_components
from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    NORMAL,
    Process,
    SimulationError,
    Timeout,
    URGENT,
)
from .queues import AckQueue, FifoQueue, QueueClosed, Store
from .randomness import RandomStreams

__all__ = [
    "AckQueue",
    "AllOf",
    "AnyOf",
    "Component",
    "ComponentHost",
    "Crash",
    "Environment",
    "Event",
    "FifoQueue",
    "HostState",
    "Interrupt",
    "NORMAL",
    "Process",
    "QueueClosed",
    "RandomStreams",
    "SimulationError",
    "Store",
    "Timeout",
    "URGENT",
    "run_components",
]
