"""Crashable components.

ZENITH models controller failures at two granularities (§3.5): a single
component inside a microservice can crash (losing its local state), or a
whole microservice can fail over.  This module provides the generic
machinery: a :class:`Component` is an object with a ``main`` generator;
a :class:`ComponentHost` runs it, turns injected crashes into local
state loss, and restarts the component (optionally after a watchdog
detection delay), executing its ``recover`` generator first.

All durable state must live in the NIB; everything stored on the
component instance is reset by ``setup()`` on every (re)start, which is
how the "conservatively assume the failed component loses all of its
state" rule of the paper is enforced.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Iterable, Optional

from .core import Environment, Event, Interrupt, Process

__all__ = ["Crash", "Component", "ComponentHost", "HostState"]


class Crash:
    """Interrupt cause describing an injected component failure."""

    def __init__(self, reason: str = "injected"):
        self.reason = reason

    def __repr__(self) -> str:
        return f"Crash({self.reason!r})"


class HostState(enum.Enum):
    """Lifecycle state of a hosted component."""

    RUNNING = "running"
    DOWN = "down"
    STOPPED = "stopped"


class Component:
    """Base class for controller components.

    Subclasses override :meth:`setup` (reset local state), :meth:`main`
    (the component loop) and optionally :meth:`recover` (crash-recovery
    logic that runs before ``main`` after a restart, reading durable
    state from the NIB).
    """

    name: str = "component"

    def __init__(self, env: Environment, name: Optional[str] = None):
        self.env = env
        if name is not None:
            self.name = name
        self.host: Optional["ComponentHost"] = None

    def setup(self) -> None:
        """Reset all local (non-durable) state.  Called on every start."""

    def recover(self) -> Optional[Generator]:
        """Optional recovery generator run after a crash, before main."""
        return None

    def main(self) -> Generator:
        """The component's main loop (a simulation generator)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ComponentHost:
    """Runs a component, handling crash/restart lifecycle."""

    def __init__(self, env: Environment, component: Component,
                 restart_delay: float = 0.0, auto_restart: bool = True):
        self.env = env
        self.component = component
        component.host = self
        self.restart_delay = restart_delay
        #: If False the component stays DOWN until ``restart()`` is called
        #: (the Watchdog component drives restarts in that mode).
        self.auto_restart = auto_restart
        self.state = HostState.STOPPED
        self.crash_count = 0
        self.restart_count = 0
        #: Crash calls that found the component already down/stopped.
        self.crash_noop_count = 0
        self._restart_event: Optional[Event] = None
        self._process: Optional[Process] = None
        self._was_crashed = False
        registry = getattr(env, "metrics", None)
        if registry is not None:
            registry.register_host(self)

    @property
    def name(self) -> str:
        """The hosted component's name."""
        return self.component.name

    def start(self) -> Process:
        """Begin executing the component."""
        if self._process is not None and self._process.is_alive:
            raise RuntimeError(f"{self.name} already running")
        self._process = self.env.process(self._lifecycle(), name=self.name)
        return self._process

    def crash(self, reason: str = "injected") -> bool:
        """Inject a failure: the component loses its local state.

        Crashing a component that is not RUNNING (already crashed,
        mid-restart, or stopped) is a counted no-op: returns ``False``
        and bumps :attr:`crash_noop_count` (surfaced as the
        ``.crash_noops`` gauge in :class:`repro.obs.MetricsRegistry`).
        """
        if self.state is not HostState.RUNNING or self._process is None:
            self.crash_noop_count += 1
            return False
        self.crash_count += 1
        if self.env._tracing:
            self.env.tracer.instant(self.env, f"crash {self.name}",
                                    track=self.name, reason=reason)
        self._process.interrupt(Crash(reason))
        return True

    def restart(self) -> None:
        """Restart a DOWN component (used by the Watchdog)."""
        if self._restart_event is not None and not self._restart_event.triggered:
            self._restart_event.succeed()

    def stop(self) -> None:
        """Permanently stop the component."""
        self.state = HostState.STOPPED
        if self._process is not None and self._process.is_alive:
            self._process.interrupt(Crash("stopped"))

    def _mark_restarted(self) -> None:
        self.restart_count += 1
        if self.env._tracing:
            self.env.tracer.instant(self.env, f"restart {self.name}",
                                    track=self.name)

    def _lifecycle(self) -> Generator:
        while True:
            self.component.setup()
            self.state = HostState.RUNNING
            try:
                if self._was_crashed:
                    recovery = self.component.recover()
                    if recovery is not None:
                        yield from recovery
                    self._was_crashed = False
                yield from self.component.main()
                self.state = HostState.STOPPED
                return
            except Interrupt as interrupt:
                cause = interrupt.cause
                if isinstance(cause, Crash) and cause.reason == "stopped":
                    self.state = HostState.STOPPED
                    return
                self.state = HostState.DOWN
                self._was_crashed = True
                if self.auto_restart:
                    if self.restart_delay > 0:
                        restarted = False
                        while not restarted:
                            try:
                                yield self.env.timeout(self.restart_delay)
                                restarted = True
                            except Interrupt:
                                continue
                    self._mark_restarted()
                else:
                    while True:
                        self._restart_event = self.env.event()
                        try:
                            yield self._restart_event
                            break
                        except Interrupt as second:
                            if (isinstance(second.cause, Crash)
                                    and second.cause.reason == "stopped"):
                                self.state = HostState.STOPPED
                                return
                            continue
                    self._restart_event = None
                    self._mark_restarted()


def run_components(env: Environment, components: Iterable[Component],
                   **host_kwargs: Any) -> list[ComponentHost]:
    """Convenience: host and start several components."""
    hosts = []
    for component in components:
        host = ComponentHost(env, component, **host_kwargs)
        host.start()
        hosts.append(host)
    return hosts
