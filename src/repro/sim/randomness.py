"""Seeded random streams.

Every stochastic element of the simulation (latencies, failure times,
workload arrivals) draws from a named :class:`RandomStreams` child so
that experiments are reproducible and adding a new consumer of
randomness does not perturb existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

__all__ = ["RandomStreams"]


class RandomStreams:
    """A tree of independently seeded ``random.Random`` instances."""

    def __init__(self, seed: int = 0, path: str = "root"):
        self.seed = seed
        self.path = path
        self._children: dict[str, RandomStreams] = {}
        self.rng = random.Random(self._derive(path))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, name: str) -> "RandomStreams":
        """Return (and memoise) the named child stream."""
        if name not in self._children:
            self._children[name] = RandomStreams(self.seed, f"{self.path}/{name}")
        return self._children[name]

    # -- convenience draws ---------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform draw in [low, high]."""
        return self.rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate."""
        return self.rng.expovariate(rate)

    def lognormal(self, median: float, sigma: float = 0.25) -> float:
        """Log-normal draw parameterised by its median."""
        import math

        return self.rng.lognormvariate(math.log(median), sigma)

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return self.rng.choice(seq)

    def sample(self, seq, k: int):
        """Sample ``k`` distinct items."""
        return self.rng.sample(seq, k)

    def shuffle(self, seq) -> None:
        """In-place shuffle."""
        self.rng.shuffle(seq)

    def random(self) -> float:
        """Uniform draw in [0, 1)."""
        return self.rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer draw in [low, high]."""
        return self.rng.randint(low, high)
