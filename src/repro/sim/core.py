"""Discrete-event simulation kernel.

This module provides the execution substrate on which every ZENITH
microservice, switch and baseline controller runs.  It is a small,
deterministic, generator-based kernel in the style of SimPy:

* An :class:`Environment` owns the virtual clock and the event heap.
* A *process* is a Python generator that yields :class:`Event` objects;
  the kernel resumes the generator when the yielded event fires.
* Events fire in (time, priority, sequence) order, so two runs with the
  same seed produce identical schedules.

The kernel supports interrupts (used to model component crashes) and
condition events (used to wait for any/all of several events).

Telemetry: every environment carries a :class:`repro.obs.Tracer`
(default: the no-op :data:`repro.obs.NULL_TRACER`) and optionally a
:class:`repro.obs.MetricsRegistry`.  The tracer's ``enabled`` flag is
cached as ``_tracing`` so the hot loops — scheduling and stepping — pay
one attribute check when tracing is off, and tracing never perturbs the
schedule (hooks observe, they do not create events).

Hot-path notes: ``run()`` inlines the non-tracing step so a campaign's
millions of events skip one Python frame each.  Heap entries stay plain
tuples — a recycling pool of mutable list entries was measured ~10%
*slower* than tuple allocation on CPython 3.11 (tuples come off the
free list; the pool pays for bounds checks and item writes), so don't
reintroduce one without re-measuring.
"""

from __future__ import annotations

import heapq
import itertools
import traceback
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs import context as _obs_context
from ..obs.tracer import NULL_TRACER

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must fire before same-time peers.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interrupt happened (for ZENITH this is usually a crash signal).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    Events start *pending*; they become *triggered* once scheduled and
    *processed* after their callbacks have run.  Processes wait on
    events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed",
                 "_scheduled", "_cancel_hook")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        self._cancel_hook: Optional[Callable[[], None]] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload the event fired with."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire by raising ``exception``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def _mark_processed(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay, priority=priority)


class _ConditionValue:
    """Mapping of events to values for AnyOf/AllOf results."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)


class Condition(Event):
    """Composite event that fires when ``evaluate`` says enough fired."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            if event.callbacks is None:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._scheduled:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            value = _ConditionValue()
            value.events = [e for e in self._events if e.processed]
            self.succeed(value)


class AnyOf(Condition):
    """Fires when the first of ``events`` fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda total, done: done >= 1)


class AllOf(Condition):
    """Fires when all of ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, lambda total, done: done >= total)


class Process(Event):
    """A running generator; also an event that fires when it finishes."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        if env._tracing:
            env.tracer.process_started(env, self)
        init = Event(env)
        init._ok = True
        env._schedule(init, delay=0.0, priority=URGENT)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        self.env._schedule(event, delay=0.0, priority=URGENT)
        event.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting on (interrupt case).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            # Queue getters register a cancel hook so that an interrupted
            # waiter does not silently consume a queued item later.
            if self._target._cancel_hook is not None and not self._target.triggered:
                self._target._cancel_hook()
        self._target = None
        self.env._active_process = self
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self.env._active_process = None
            if self.env._tracing:
                self.env.tracer.process_finished(self.env, self)
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc, priority=URGENT)
            self.env._record_crash(self, exc)
            return
        self.env._active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}, not an Event")
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately at current time.
            bounce = Event(self.env)
            bounce._ok = next_event.ok
            bounce._value = next_event.value
            self.env._schedule(bounce, delay=0.0, priority=URGENT)
            bounce.callbacks.append(self._resume)
        else:
            next_event.callbacks.append(self._resume)


class Environment:
    """The simulation clock, event heap and process factory."""

    def __init__(self, initial_time: float = 0.0, tracer=None, metrics=None):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: Uncaught process failures, surfaced to ``run`` unless defused.
        self.crashed: list[tuple[Process, BaseException]] = []
        #: When True, uncaught process exceptions propagate out of run().
        self.strict = True
        # Telemetry: explicit arguments win; otherwise pick up whatever
        # repro.obs.observe()/install() made the process-wide default.
        if tracer is None:
            tracer = _obs_context.default_tracer()
        if metrics is None:
            metrics = _obs_context.default_metrics()
        #: The tracer receiving kernel and component telemetry hooks.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Hot-path cache of ``tracer.enabled``.
        self._tracing = self.tracer.enabled
        #: Metrics registry that queues/hosts/switches self-register with.
        self.metrics = metrics

    def set_tracer(self, tracer) -> None:
        """Swap the tracer (None restores the no-op default)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` fire."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event._scheduled = True
        when = self._now + delay
        if self._tracing:
            self.tracer.event_scheduled(self, event, when, priority)
        heapq.heappush(
            self._heap, (when, priority, next(self._counter), event))

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self.crashed.append((process, exc))
        if self._tracing:
            self.tracer.process_crashed(self, process, exc)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if self._tracing:
            if when != self._now:
                self.tracer.clock_advanced(self, self._now, when)
            self._now = when
            self.tracer.event_fired(self, event)
        else:
            self._now = when
        event._mark_processed()
        if self.strict and self.crashed:
            raise self._crash_error()

    def _crash_error(self) -> SimulationError:
        """Build a SimulationError covering *every* crashed process.

        One event firing can resume — and crash — several waiting
        processes, so the report must name all of them, not just the
        last.  The first (original) crash is chained as ``__cause__`` so
        its full traceback survives; further crashes are attached as
        exception notes (Python ≥ 3.11) and all are available on the
        ``crashes`` attribute.
        """
        crashes = list(self.crashed)
        detail = "; ".join(
            f"{process.name!r} ({type(exc).__name__}: {exc})"
            for process, exc in crashes)
        error = SimulationError(
            f"{len(crashes)} process(es) crashed by t={self._now:.6f}: "
            f"{detail}")
        error.crashes = crashes
        error.__cause__ = crashes[0][1]
        if hasattr(error, "add_note"):
            for process, exc in crashes[1:]:
                trace = "".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__)).rstrip()
                error.add_note(f"also crashed: {process.name!r}\n{trace}")
        return error

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or event fires."""
        if isinstance(until, Event):
            stop_event = until
            heap = self._heap
            heappop = heapq.heappop
            crashed = self.crashed
            while not stop_event._processed:
                if not heap:
                    raise SimulationError(
                        "event heap empty before completion event fired")
                if self._tracing:
                    self.step()
                    continue
                entry = heappop(heap)
                self._now = entry[0]
                entry[3]._mark_processed()
                if crashed and self.strict:
                    raise self._crash_error()
            if stop_event.ok is False:
                raise stop_event.value
            return stop_event.value
        limit = float("inf") if until is None else float(until)
        # Inlined step() for the common non-tracing case: localized
        # lookups and no per-event call frame.  Semantics match step()
        # exactly (pool return, crash strictness).
        heap = self._heap
        heappop = heapq.heappop
        crashed = self.crashed
        while heap and heap[0][0] <= limit:
            if self._tracing:
                self.step()
                continue
            entry = heappop(heap)
            self._now = entry[0]
            entry[3]._mark_processed()
            if crashed and self.strict:
                raise self._crash_error()
        if limit != float("inf"):
            self._now = max(self._now, limit)
        return None
