"""NADIR runtime library (paper §5).

Generated code targets this library: global variables become entries in
a NIB table (fully persistent across component crashes, per the
paper's rule that "all persistent state is in the NIB"), queue-typed
globals become NIB-resident queues with the right discipline, and
environment-specific actions (sending to switches, emitting controller
events) are *externs* registered by the harness — the runtime half of
NADIR's correctness contract.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..nib import Nib
from ..sim import Component, Environment, Event
from ..spec.lang import QueueDisciplineError

__all__ = ["NADIR_NULL", "NadirRuntime", "NadirComponent"]

#: The runtime value of the reserved NADIR_NULL constant.
NADIR_NULL = None


class NadirRuntime:
    """Bindings from a generated program to the NIB and environment."""

    #: Polling period for ``wait_until`` conditions (seconds).
    poll_period = 0.001

    def __init__(self, env: Environment, nib: Nib, namespace: str,
                 fifo_queues: tuple[str, ...] = (),
                 ack_queues: tuple[str, ...] = (),
                 step_cost: float = 0.0005,
                 queue_aliases: Optional[dict[str, str]] = None):
        self.env = env
        self.nib = nib
        self.namespace = namespace
        self.table = nib.table(f"nadir.{namespace}")
        self._fifo_names = set(fifo_queues)
        self._ack_names = set(ack_queues)
        self.step_cost = step_cost
        self._externs: dict[str, Callable] = {}
        #: Map a queue global onto an existing NIB queue name, letting
        #: generated components plug into another system's queues (e.g.
        #: a generated worker serving the controller's OPQueue shard).
        self._aliases = dict(queue_aliases or {})

    # -- globals -----------------------------------------------------------------
    def initialize(self, values: dict[str, Any]) -> None:
        """Set initial values for non-queue globals (idempotent)."""
        for name, value in values.items():
            if name in self._fifo_names or name in self._ack_names:
                continue
            if name not in self.table:
                self.table.put(name, value)

    def get(self, name: str) -> Any:
        """Read a persistent global."""
        return self.table.get(name)

    def set(self, name: str, value: Any) -> None:
        """Write a persistent global (atomic per assumption A2)."""
        self.table.put(name, value)

    # -- queues -------------------------------------------------------------------
    def _fifo(self, name: str):
        full = self._aliases.get(name, f"nadir.{self.namespace}.{name}")
        return self.nib.fifo(full)

    def _ack(self, name: str):
        full = self._aliases.get(name, f"nadir.{self.namespace}.{name}")
        return self.nib.ack_queue(full)

    def fifo_put(self, name: str, value: Any) -> None:
        """FIFOPut."""
        if name in self._ack_names:
            self._ack(name).put(value)
        else:
            self._fifo(name).put(value)

    def fifo_get(self, name: str) -> Event:
        """FIFOGet (event firing with the item)."""
        return self._fifo(name).get()

    def ack_read(self, name: str) -> Event:
        """AckQueueRead (event firing with the head, kept in place)."""
        return self._ack(name).read()

    def ack_pop(self, name: str) -> None:
        """AckQueuePop.

        Mirrors the specification semantics: popping an empty ack queue
        means no peek claimed the head and is an error, not a no-op.
        """
        queue = self._ack(name)
        if not len(queue):
            raise QueueDisciplineError(
                f"ack_pop on empty queue {name!r}: no peeked head to "
                "remove (pop-without-peek)")
        queue.pop()

    def queue_length(self, name: str) -> int:
        """Current length of a queue global."""
        if name in self._ack_names:
            return len(self._ack(name))
        return len(self._fifo(name))

    # -- control ------------------------------------------------------------------
    def step_delay(self) -> Event:
        """The per-step processing cost of generated code."""
        return self.env.timeout(self.step_cost)

    def wait_until(self, predicate: Callable[[], bool]):
        """Generator: poll until the predicate holds (await)."""
        while not predicate():
            yield self.env.timeout(self.poll_period)

    # -- externs --------------------------------------------------------------------
    def register_extern(self, name: str, fn: Callable) -> None:
        """Bind an environment-specific action callable from the spec."""
        self._externs[name] = fn

    def extern(self, name: str) -> Callable:
        """Look up a registered extern."""
        if name not in self._externs:
            raise KeyError(f"extern {name!r} not registered with the runtime")
        return self._externs[name]


class NadirComponent(Component):
    """Base class of generated components.

    Subclasses (emitted by the code generator) define ``LOCALS``, the
    ``START`` label and a ``run_block(pc)`` generator per label; the
    default ``main`` drives the pc loop.  Local variables are plain
    attributes: they vanish on crash, exactly like PlusCal locals.
    """

    LOCALS: dict[str, Any] = {}
    START: str = ""

    def __init__(self, env: Environment, runtime: NadirRuntime,
                 name: Optional[str] = None):
        super().__init__(env, name=name)
        self.rt = runtime

    def setup(self):
        for local, initial in self.LOCALS.items():
            setattr(self, local, initial)

    def main(self):
        pc: Optional[str] = self.START
        while pc is not None:
            pc = yield from self.run_block(pc)

    def run_block(self, pc: str):
        """Execute one labeled block; return the next label."""
        raise NotImplementedError
