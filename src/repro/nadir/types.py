"""NADIR type annotations (paper §5, Listing 8).

PlusCal does not declare variable types, so NADIR requires developers
to annotate their specifications before code generation.  The
annotation vocabulary mirrors the paper's: primitive sets (``Nat``,
booleans, strings), struct sets (C-like records), FIFOs, sets and
nullable wrappers (``NadirNullable``).  Annotations serve three roles:

* they drive code generation (queue kinds, struct constructors);
* they compile into runtime type checks (the ``TypeOK`` invariant);
* they are checkable against the specification's initial values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["NadirType", "INT", "BOOL", "STRING", "NullableType",
           "StructType", "FifoType", "SetType", "TupleType", "NULL_VALUE",
           "type_check"]

#: The runtime value NADIR_NULL maps to.
NULL_VALUE = None


class NadirType:
    """Base class of all NADIR type annotations."""

    name = "any"

    def check(self, value: Any) -> bool:
        """Whether ``value`` inhabits this type."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class _Primitive(NadirType):
    def __init__(self, name: str, python_type: type):
        self.name = name
        self.python_type = python_type

    def check(self, value: Any) -> bool:
        if self.python_type is int:
            # bool is an int subtype in Python; NADIR keeps them apart.
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.python_type)


INT = _Primitive("Nat", int)
BOOL = _Primitive("Bool", bool)
STRING = _Primitive("String", str)


class NullableType(NadirType):
    """NadirNullable(T): T or NADIR_NULL."""

    def __init__(self, inner: NadirType):
        self.inner = inner
        self.name = f"NadirNullable({inner.name})"

    def check(self, value: Any) -> bool:
        return value is NULL_VALUE or self.inner.check(value)


class StructType(NadirType):
    """A C-like struct: fixed field names with typed values (dicts)."""

    def __init__(self, name: str, fields: dict[str, NadirType]):
        self.name = name
        self.fields = dict(fields)

    def check(self, value: Any) -> bool:
        if not isinstance(value, dict):
            return False
        if set(value) != set(self.fields):
            return False
        return all(ftype.check(value[fname])
                   for fname, ftype in self.fields.items())


class FifoType(NadirType):
    """NadirFIFO(T): a queue of T (tuples in the spec, queues at runtime)."""

    def __init__(self, element: NadirType):
        self.element = element
        self.name = f"NadirFIFO({element.name})"

    def check(self, value: Any) -> bool:
        return (isinstance(value, tuple)
                and all(self.element.check(item) for item in value))


class SetType(NadirType):
    """SUBSET T: a frozenset of T."""

    def __init__(self, element: NadirType):
        self.element = element
        self.name = f"SUBSET {element.name}"

    def check(self, value: Any) -> bool:
        return (isinstance(value, frozenset)
                and all(self.element.check(item) for item in value))


class TupleType(NadirType):
    """A fixed-arity product type."""

    def __init__(self, *elements: NadirType):
        self.elements = elements
        self.name = "(" + " \\X ".join(e.name for e in elements) + ")"

    def check(self, value: Any) -> bool:
        return (isinstance(value, tuple) and len(value) == len(self.elements)
                and all(t.check(v) for t, v in zip(self.elements, value)))


def type_check(annotations: dict[str, NadirType],
               values: dict[str, Any]) -> list[str]:
    """TypeOK: return the names whose values violate their annotation."""
    failures = []
    for name, annotation in annotations.items():
        if name not in values:
            failures.append(name)
        elif not annotation.check(values[name]):
            failures.append(name)
    return failures
