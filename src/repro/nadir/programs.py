"""Annotated NADIR programs: the specifications we generate code from.

Two showcases, mirroring the paper's listings:

* :func:`drain_app_program` — the drain application of Listing 4,
  specialised (like :mod:`repro.spec.specs.apps`) to the diamond
  topology: it consumes drain requests, computes the drained DAG via a
  pure helper (the ``ComputeDrainDAG`` role) and submits it on the
  ``DAGEventQueue``, bumping priorities as Listing 6 requires.
* :func:`worker_pool_program` — the final WorkerPool of Listing 3, with
  environment actions (translate/forward/emit events) bound as runtime
  externs so the generated component can serve a live
  :class:`~repro.core.controller.ZenithController` OP-queue shard.

Both are verified through the interpreter backend and compiled with the
code generator; tests assert the two agree.
"""

from __future__ import annotations

from .ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    CallStmt,
    Const,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LabeledBlock,
    LocalVar,
    Prim,
    ProcessDef,
    Program,
    SetGlobal,
    SetLocal,
)
from .types import BOOL, FifoType, INT, NullableType, SetType, StructType

__all__ = ["drain_app_program", "worker_pool_program"]


def drain_app_program() -> Program:
    """The drain application (paper Listing 4) as an annotated program.

    Requests are integers: the switch to drain (positive) or undrain
    (negative).  The submitted DAG object is a struct
    ``{id, path, priority}`` where ``path`` identifies the diamond path
    to keep alive (1 = via switch 1, 2 = via switch 2, 0 = none viable).
    """
    dag_struct = StructType("StructDAGObject", {
        "id": INT, "path": INT, "priority": INT,
    })
    program = Program(
        name="nadir-drain-app",
        globals_={
            "DrainRequestQueue": (),
            "DAGEventQueue": (),
            "drained": frozenset(),
            "nextDAGID": 1,
            "nextPriority": 1,
        },
        global_types={
            "DrainRequestQueue": FifoType(INT),
            "DAGEventQueue": FifoType(dag_struct),
            "drained": SetType(INT),
            "nextDAGID": INT,
            "nextPriority": INT,
        },
        processes=[],
    )
    # ComputeDrainDAG, specialised to the diamond: pick the lowest
    # viable middle switch not in the drained set.
    program.add_helper(
        "ViablePath", ["drained"],
        "1 if 1 not in drained else (2 if 2 not in drained else 0)")
    # The §4 budget invariant: at most one of the two middles drained.
    program.add_helper(
        "DrainAllowed", ["drained", "node"],
        "node in drained or len(drained | {node}) <= 1")
    program.add_helper(
        "ApplyRequest", ["drained", "request"],
        "(drained | {request}) if request > 0 else (drained - {-request})")

    drainer = ProcessDef(
        name="drainer",
        locals_={"currentRequest": None, "drainedDAG": None},
        local_types={"currentRequest": NullableType(INT),
                     "drainedDAG": NullableType(dag_struct)},
        blocks=[
            LabeledBlock("DrainLoop", [
                FifoGetStmt("DrainRequestQueue", "currentRequest"),
            ]),
            LabeledBlock("ComputeDrain", [
                IfStmt(
                    Prim("or",
                         Prim("<", LocalVar("currentRequest"), Const(0)),
                         HelperCall("DrainAllowed", Global("drained"),
                                    LocalVar("currentRequest"))),
                    [
                        SetGlobal("drained",
                                  HelperCall("ApplyRequest",
                                             Global("drained"),
                                             LocalVar("currentRequest"))),
                        SetLocal("drainedDAG", Prim(
                            "record",
                            Const("id"), Global("nextDAGID"),
                            Const("path"),
                            HelperCall("ViablePath", Global("drained")),
                            Const("priority"), Global("nextPriority"))),
                        GotoStmt("SubmitDAG"),
                    ],
                    [GotoStmt("DrainLoop")],  # request refused (§4)
                ),
            ]),
            LabeledBlock("SubmitDAG", [
                FifoPutStmt("DAGEventQueue", LocalVar("drainedDAG")),
                SetGlobal("nextDAGID",
                          Prim("+", Global("nextDAGID"), Const(1))),
                SetGlobal("nextPriority",
                          Prim("+", Global("nextPriority"), Const(1))),
                SetLocal("drainedDAG", Const(None)),
                GotoStmt("DrainLoop"),
            ]),
        ],
    )
    program.processes.append(drainer)
    return program


def worker_pool_program() -> Program:
    """The final WorkerPool (paper Listing 3) as an annotated program.

    Environment-specific actions are externs the harness registers:

    * ``IsClearOP(op)``       — is this the CLEAR_TCAM instruction?
    * ``IsScheduled(op)``     — is the OP still SCHEDULED in the NIB?
    * ``IsSwitchHealthy(op)`` — is the OP's switch recorded UP?
    * ``EmitSentEvent(op)`` / ``EmitFailEvent(op)`` — NIB event queue;
    * ``ForwardOP(op)``       — translate and send toward the switch.
    """
    program = Program(
        name="nadir-worker-pool",
        globals_={
            "OPQueueNIB": (),
            "workerPoolState": None,
        },
        global_types={
            "OPQueueNIB": FifoType(INT),
            "workerPoolState": NullableType(INT),
        },
        processes=[],
        ack_queues=frozenset({"OPQueueNIB"}),
    )
    worker = ProcessDef(
        name="WorkerPool",
        locals_={"OPToS": None},
        local_types={"OPToS": NullableType(INT)},
        blocks=[
            LabeledBlock("StateRecovery", [
                # Executed on startup: clear the in-progress marker; the
                # head of the queue (if any) is re-processed.
                SetGlobal("workerPoolState", Const(None)),
            ]),
            LabeledBlock("ControllerThread", [
                AckReadStmt("OPQueueNIB", "OPToS"),
                SetGlobal("workerPoolState", LocalVar("OPToS")),
            ]),
            LabeledBlock("ProcessOP", [
                IfStmt(
                    HelperCall("IsClearOP", LocalVar("OPToS")),
                    [CallStmt(HelperCall("ForwardOP", LocalVar("OPToS")))],
                    [IfStmt(
                        HelperCall("IsScheduled", LocalVar("OPToS")),
                        [IfStmt(
                            HelperCall("IsSwitchHealthy", LocalVar("OPToS")),
                            [
                                # State first, action second (§3.9).
                                CallStmt(HelperCall("EmitSentEvent",
                                                    LocalVar("OPToS"))),
                                CallStmt(HelperCall("ForwardOP",
                                                    LocalVar("OPToS"))),
                            ],
                            [CallStmt(HelperCall("EmitFailEvent",
                                                 LocalVar("OPToS")))],
                        )],
                        [],  # dispatch superseded by a recovery reset
                    )],
                ),
            ]),
            LabeledBlock("RemoveOPFromQueue", [
                SetGlobal("workerPoolState", Const(None)),
                AckPopStmt("OPQueueNIB"),
                SetLocal("OPToS", Const(None)),
                GotoStmt("ControllerThread"),
            ]),
        ],
    )
    program.processes.append(worker)
    return program
