"""Checker backend: interpret a NADIR program as a model-checkable Spec.

The same annotated AST that NADIR compiles to Python (see
:mod:`repro.nadir.codegen`) is interpreted here into a
:class:`repro.spec.lang.Spec`, so the artifact that gets verified is
the artifact that gets deployed — the property underpinning NADIR's
correctness claim (§5): the implementation preserves the verified
specification as long as the translation and runtime are correct.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..spec.lang import (
    Ctx,
    Spec,
    SpecProcess,
    Step,
    ack_pop,
    ack_read,
    fifo_get,
    fifo_put,
)
from .ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LocalVar,
    Prim,
    Program,
    SetGlobal,
    SetLocal,
    SkipStmt,
    Stmt,
    _PRIMS,
)

__all__ = ["program_to_spec", "evaluate"]


def evaluate(expr: Expr, ctx: Ctx, program: Program) -> Any:
    """Evaluate an expression against the current step context."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Global):
        return ctx.get(expr.name)
    if isinstance(expr, LocalVar):
        return ctx.lget(expr.name)
    if isinstance(expr, Prim):
        args = [evaluate(a, ctx, program) for a in expr.args]
        result = _PRIMS[expr.op](*args)
        if expr.op in ("record", "set_field"):
            # States must be hashable: structs become frozen records.
            from ..spec.lang import FrozenRecord

            result = FrozenRecord(result)
        return result
    if isinstance(expr, HelperCall):
        _params, _src, fn = program.helpers[expr.name]
        return fn(*[evaluate(a, ctx, program) for a in expr.args])
    raise TypeError(f"unknown expression {expr!r}")


def _execute(stmt: Stmt, ctx: Ctx, program: Program) -> None:
    if isinstance(stmt, SkipStmt):
        return
    if isinstance(stmt, CallStmt):
        evaluate(stmt.call, ctx, program)
        return
    if isinstance(stmt, SetGlobal):
        ctx.set(stmt.name, evaluate(stmt.value, ctx, program))
        return
    if isinstance(stmt, SetLocal):
        ctx.lset(stmt.name, evaluate(stmt.value, ctx, program))
        return
    if isinstance(stmt, FifoGetStmt):
        ctx.lset(stmt.target, fifo_get(ctx, stmt.queue))
        return
    if isinstance(stmt, FifoPutStmt):
        fifo_put(ctx, stmt.queue, evaluate(stmt.value, ctx, program))
        return
    if isinstance(stmt, AckReadStmt):
        ctx.lset(stmt.target, ack_read(ctx, stmt.queue))
        return
    if isinstance(stmt, AckPopStmt):
        ack_pop(ctx, stmt.queue)
        return
    if isinstance(stmt, AwaitStmt):
        ctx.block_unless(bool(evaluate(stmt.condition, ctx, program)))
        return
    if isinstance(stmt, IfStmt):
        branch = (stmt.then if evaluate(stmt.condition, ctx, program)
                  else stmt.orelse)
        for inner in branch:
            _execute(inner, ctx, program)
        return
    if isinstance(stmt, GotoStmt):
        ctx.goto(stmt.label)
        return
    if isinstance(stmt, DoneStmt):
        ctx.done()
        return
    raise TypeError(f"unknown statement {stmt!r}")


def program_to_spec(program: Program,
                    invariants: Optional[dict[str, Callable]] = None,
                    eventually_always: Optional[dict[str, Callable]] = None,
                    symmetry=None) -> Spec:
    """Build a model-checkable Spec from a NADIR program."""
    failures = program.validate_types()
    if failures:
        raise TypeError(f"TypeOK fails for: {', '.join(failures)}")
    processes = []
    for definition in program.processes:
        steps = []
        for block in definition.blocks:
            def make_runner(body=tuple(block.body)):
                def run(ctx: Ctx) -> None:
                    for stmt in body:
                        _execute(stmt, ctx, program)
                return run

            steps.append(Step(block.label, make_runner(),
                              local=block.label in definition.local_labels))
        processes.append(SpecProcess(
            definition.name, steps, locals_=dict(definition.locals_),
            fair=definition.fair, daemon=definition.daemon))
    spec = Spec(program.name, dict(program.globals_), processes,
                invariants=invariants, eventually_always=eventually_always,
                symmetry=symmetry, ack_queues=program.ack_queues)
    # The footprint analysis (repro.analysis.deps) statically confirms
    # effects for interpreted specs by walking the program they came
    # from, so labels stay sound even when dynamic inference truncates.
    spec.nadir_program = program
    return spec
