"""NADIR: generate executable code from annotated specifications."""

from .ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LabeledBlock,
    LocalVar,
    Prim,
    ProcessDef,
    Program,
    SetGlobal,
    SetLocal,
    SkipStmt,
    Stmt,
)
from .codegen import CodegenError, compile_program, generate_module
from .interp import program_to_spec
from .pluscal import render_pluscal
from .programs import drain_app_program, worker_pool_program
from .runtime import NADIR_NULL, NadirComponent, NadirRuntime
from .types import (
    BOOL,
    FifoType,
    INT,
    NadirType,
    NullableType,
    SetType,
    STRING,
    StructType,
    TupleType,
    type_check,
)

__all__ = [
    "AckPopStmt", "AckReadStmt", "AwaitStmt", "BOOL", "CallStmt",
    "CodegenError", "Const", "DoneStmt", "Expr", "FifoGetStmt",
    "FifoPutStmt", "FifoType", "Global", "GotoStmt", "HelperCall",
    "IfStmt", "INT", "LabeledBlock", "LocalVar", "NADIR_NULL",
    "NadirComponent", "NadirRuntime", "NadirType", "NullableType", "Prim",
    "ProcessDef", "Program", "SetGlobal", "SetLocal", "SetType",
    "SkipStmt", "Stmt", "STRING", "StructType", "TupleType",
    "compile_program", "drain_app_program", "generate_module",
    "program_to_spec", "render_pluscal", "type_check", "worker_pool_program",
]
