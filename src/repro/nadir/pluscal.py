"""Render NADIR programs as PlusCal (the paper's specification surface).

NADIR's input in the paper is annotated PlusCal; in this reproduction
the AST is the authoring surface, and this module renders it back to
PlusCal text so the artifact users review looks like the paper's
Listings 4–6.  The rendering is syntactic (suitable for reading and for
diffing against the paper's listings), and the inverse of the authoring
direction — the AST stays the single source of truth that both the
checker and the code generator consume.
"""

from __future__ import annotations

from .ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LocalVar,
    Prim,
    ProcessDef,
    Program,
    SetGlobal,
    SetLocal,
    SkipStmt,
    Stmt,
)

__all__ = ["render_pluscal"]

_TLA_OPS = {"+": "+", "-": "-", "==": "=", "!=": "/=", "<": "<",
            "<=": "=<", ">": ">", ">=": ">=", "and": "/\\", "or": "\\/",
            "in": "\\in", "union": "\\union", "diff": "\\"}


def _expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        if expr.value is None:
            return "NADIR_NULL"
        if isinstance(expr.value, str):
            return f'"{expr.value}"'
        if isinstance(expr.value, frozenset):
            inner = ", ".join(sorted(map(str, expr.value)))
            return "{" + inner + "}"
        if isinstance(expr.value, tuple):
            inner = ", ".join(_expr(Const(v)) for v in expr.value)
            return "<<" + inner + ">>"
        return repr(expr.value)
    if isinstance(expr, (Global, LocalVar)):
        return expr.name
    if isinstance(expr, Prim):
        args = [_expr(a) for a in expr.args]
        op = expr.op
        if op in _TLA_OPS:
            return f"({args[0]} {_TLA_OPS[op]} {args[1]})"
        if op == "not":
            return f"~({args[0]})"
        if op == "len":
            return f"Len({args[0]})"
        if op == "tuple":
            return "<<" + ", ".join(args) + ">>"
        if op == "append":
            return f"Append({args[0]}, {args[1]})"
        if op == "head":
            return f"Head({args[0]})"
        if op == "tail":
            return f"Tail({args[0]})"
        if op == "field":
            return f"{args[0]}.{args[1]}".replace('"', "")
        if op == "set_field":
            field = args[1].replace('"', "")
            return f"[{args[0]} EXCEPT !.{field} = {args[2]}]"
        if op == "record":
            pairs = []
            for i in range(0, len(args), 2):
                pairs.append(f"{args[i]} |-> {args[i + 1]}".replace('"', "",
                                                                    2))
            return "[" + ", ".join(pairs) + "]"
        if op == "max":
            return f"Max({args[0]}, {args[1]})"
        raise ValueError(f"unrenderable primitive {op!r}")
    if isinstance(expr, HelperCall):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise ValueError(f"unrenderable expression {expr!r}")


def _stmt(stmt: Stmt, pad: str) -> list[str]:
    if isinstance(stmt, SkipStmt):
        return [f"{pad}skip;"]
    if isinstance(stmt, SetGlobal) or isinstance(stmt, SetLocal):
        return [f"{pad}{stmt.name} := {_expr(stmt.value)};"]
    if isinstance(stmt, FifoGetStmt):
        return [f"{pad}FIFOGet({stmt.queue}, {stmt.target});"]
    if isinstance(stmt, FifoPutStmt):
        return [f"{pad}FIFOPut({stmt.queue}, {_expr(stmt.value)});"]
    if isinstance(stmt, AckReadStmt):
        return [f"{pad}AckQueueRead({stmt.queue}, {stmt.target});"]
    if isinstance(stmt, AckPopStmt):
        return [f"{pad}AckQueuePop({stmt.queue});"]
    if isinstance(stmt, AwaitStmt):
        return [f"{pad}await {_expr(stmt.condition)};"]
    if isinstance(stmt, CallStmt):
        return [f"{pad}{_expr(stmt.call)};"]
    if isinstance(stmt, GotoStmt):
        return [f"{pad}goto {stmt.label};"]
    if isinstance(stmt, DoneStmt):
        return [f"{pad}goto Done;"]
    if isinstance(stmt, IfStmt):
        lines = [f"{pad}if {_expr(stmt.condition)} then"]
        for inner in stmt.then:
            lines.extend(_stmt(inner, pad + "    "))
        if stmt.orelse:
            lines.append(f"{pad}else")
            for inner in stmt.orelse:
                lines.extend(_stmt(inner, pad + "    "))
        lines.append(f"{pad}end if;")
        return lines
    raise ValueError(f"unrenderable statement {stmt!r}")


def _process(definition: ProcessDef) -> list[str]:
    lines = [f"fair process {definition.name}"]
    if definition.locals_:
        decls = ", ".join(
            f"{name} = {_expr(Const(value))}"
            for name, value in definition.locals_.items())
        lines.append(f"variables {decls};")
    lines.append("begin")
    for block in definition.blocks:
        lines.append(f"{block.label}:")
        for stmt in block.body:
            lines.extend(_stmt(stmt, "    "))
    lines.append("end process;")
    return lines


def render_pluscal(program: Program) -> str:
    """Render the program as PlusCal text."""
    lines = [f"---- MODULE {program.name.replace('-', '_')} ----",
             "EXTENDS Naturals, Sequences, FiniteSets",
             "",
             "(* Generated from the NADIR AST; the AST is the source "
             "of truth. *)",
             "",
             "variables"]
    decls = []
    for name, value in program.globals_.items():
        decls.append(f"    {name} = {_expr(Const(value))}")
    lines.append(",\n".join(decls) + ";")
    lines.append("")
    for name, (params, body_source, _fn) in sorted(program.helpers.items()):
        lines.append(f"{name}({', '.join(params)}) == "
                     f"(* {body_source} *)")
    if program.helpers:
        lines.append("")
    for definition in program.processes:
        lines.extend(_process(definition))
        lines.append("")
    lines.append("====")
    return "\n".join(lines)
