"""The NADIR abstract syntax tree (paper §5, Fig. 9).

NADIR parses an annotated PlusCal specification into an AST and then
generates executable code from it.  Here the AST *is* the specification
surface: processes are written as labeled blocks of statements over
expressions.  Two backends consume it:

* :mod:`repro.nadir.interp` turns a program into a
  :class:`repro.spec.lang.Spec`, so the same artifact is model-checked;
* :mod:`repro.nadir.codegen` emits Python source targeting the
  :mod:`repro.nadir.runtime` library, producing the deployable
  microservice components.

Statement and expression vocabularies cover what the paper's
specifications use: variable reads/writes, FIFO and peek/pop queue
macros, awaits, conditionals, gotos and pure helper calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .types import NadirType

__all__ = [
    # expressions
    "Expr", "Const", "Global", "LocalVar", "Prim", "HelperCall",
    # statements
    "Stmt", "SetGlobal", "SetLocal", "FifoGetStmt", "FifoPutStmt",
    "AckReadStmt", "AckPopStmt", "AwaitStmt", "IfStmt", "GotoStmt",
    "DoneStmt", "SkipStmt", "CallStmt",
    # structure
    "LabeledBlock", "ProcessDef", "Program",
]


# -- expressions ----------------------------------------------------------------
class Expr:
    """Base expression node."""


@dataclass(frozen=True)
class Const(Expr):
    """A literal value (hashable)."""

    value: Any


@dataclass(frozen=True)
class Global(Expr):
    """Read a global (NIB-persistent) variable."""

    name: str


@dataclass(frozen=True)
class LocalVar(Expr):
    """Read a process-local variable."""

    name: str


#: Pure primitive operators available in expressions.
_PRIMS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "not": lambda a: not a,
    "in": lambda a, b: a in b,
    "len": lambda a: len(a),
    "union": lambda a, b: a | b,
    "diff": lambda a, b: a - b,
    "tuple": lambda *items: tuple(items),
    "append": lambda t, v: t + (v,),
    "head": lambda t: t[0],
    "tail": lambda t: t[1:],
    "field": lambda record, key: record[key],
    "set_field": lambda record, key, value: {**record, key: value},
    "record": lambda *kv: {kv[i]: kv[i + 1] for i in range(0, len(kv), 2)},
    "max": lambda a, b: a if a >= b else b,
}


@dataclass(frozen=True)
class Prim(Expr):
    """Apply a primitive operator to argument expressions."""

    op: str
    args: tuple

    def __init__(self, op: str, *args: Expr):
        if op not in _PRIMS:
            raise ValueError(f"unknown primitive {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", tuple(args))


@dataclass(frozen=True)
class HelperCall(Expr):
    """Call a named pure helper (the paper's Operators, e.g. Listing 7).

    Helpers are defined on the :class:`Program` and must be pure
    functions of their arguments; code generation emits a call into the
    generated module where the helper source is reproduced.
    """

    name: str
    args: tuple

    def __init__(self, name: str, *args: Expr):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))


# -- statements --------------------------------------------------------------------
class Stmt:
    """Base statement node."""


@dataclass(frozen=True)
class SetGlobal(Stmt):
    """Assign a global variable."""

    name: str
    value: Expr


@dataclass(frozen=True)
class SetLocal(Stmt):
    """Assign a process-local variable."""

    name: str
    value: Expr


@dataclass(frozen=True)
class FifoGetStmt(Stmt):
    """FIFOGet: block until non-empty, destructively pop into a local."""

    queue: str
    target: str


@dataclass(frozen=True)
class FifoPutStmt(Stmt):
    """FIFOPut: append a value to a queue."""

    queue: str
    value: Expr


@dataclass(frozen=True)
class AckReadStmt(Stmt):
    """AckQueueRead: block until non-empty, peek head into a local."""

    queue: str
    target: str


@dataclass(frozen=True)
class AckPopStmt(Stmt):
    """AckQueuePop: remove the previously peeked head."""

    queue: str


@dataclass(frozen=True)
class AwaitStmt(Stmt):
    """await: abort the step unless the condition holds."""

    condition: Expr


@dataclass(frozen=True)
class IfStmt(Stmt):
    """Conditional over statement blocks (within one atomic step)."""

    condition: Expr
    then: tuple
    orelse: tuple = ()

    def __init__(self, condition: Expr, then: Sequence[Stmt],
                 orelse: Sequence[Stmt] = ()):
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "then", tuple(then))
        object.__setattr__(self, "orelse", tuple(orelse))


@dataclass(frozen=True)
class GotoStmt(Stmt):
    """Jump to a label after this step."""

    label: str


@dataclass(frozen=True)
class DoneStmt(Stmt):
    """Terminate the process."""


@dataclass(frozen=True)
class CallStmt(Stmt):
    """Evaluate an expression for its (extern) effect, discarding it."""

    call: Expr


@dataclass(frozen=True)
class SkipStmt(Stmt):
    """No-op."""


# -- structure ------------------------------------------------------------------------
@dataclass
class LabeledBlock:
    """One atomic step: a label and its statements."""

    label: str
    body: list

    def __init__(self, label: str, body: Sequence[Stmt]):
        self.label = label
        self.body = list(body)


@dataclass
class ProcessDef:
    """A PlusCal process definition."""

    name: str
    blocks: list
    locals_: dict = field(default_factory=dict)
    local_types: dict = field(default_factory=dict)
    fair: bool = True
    daemon: bool = True
    #: Labels hinted as *local* (touch only this process's own locals):
    #: the checker's partial-order-reduction ample-set rule.  The
    #: static analyzer verifies these hints against the blocks' actual
    #: effects before they are trusted.
    local_labels: frozenset = frozenset()

    def blocks_with_default_next(self):
        """(block, program-order fallthrough label) pairs, in order.

        The fallthrough of the last block is ``None`` (termination) —
        the same convention :class:`repro.spec.lang.SpecProcess` uses
        for its ``default_next``.  Shared by the static lint passes and
        the footprint analysis so both derive identical successor sets.
        """
        labels = [block.label for block in self.blocks]
        for index, block in enumerate(self.blocks):
            nxt = labels[index + 1] if index + 1 < len(labels) else None
            yield block, nxt


@dataclass
class Program:
    """A complete annotated specification."""

    name: str
    globals_: dict                      # name -> initial value
    global_types: dict                  # name -> NadirType annotation
    processes: list
    #: Named pure helpers: name -> (params, python lambda source, fn).
    helpers: dict = field(default_factory=dict)
    #: Queue globals realised as peek/pop queues at runtime.
    ack_queues: frozenset = frozenset()

    def add_helper(self, name: str, params: Sequence[str],
                   body_source: str) -> None:
        """Register a pure helper from a Python expression source."""
        fn = eval(f"lambda {', '.join(params)}: {body_source}")  # noqa: S307
        self.helpers[name] = (tuple(params), body_source, fn)

    def validate_types(self) -> list[str]:
        """TypeOK over the initial values; returns failing names."""
        from .types import type_check

        failures = type_check(self.global_types, self.globals_)
        for process in self.processes:
            failures.extend(
                f"{process.name}.{name}"
                for name in type_check(process.local_types, process.locals_))
        return failures
