"""Python code generation from NADIR programs (paper §5).

Given an annotated :class:`~repro.nadir.ast_nodes.Program`, emit a
self-contained Python module whose components run on the
:mod:`repro.nadir.runtime` library:

* persistent globals → the runtime's NIB table;
* FIFO/ack-queue globals → NIB-resident queues (discipline chosen by
  the annotation, exactly as the peek/pop macros demand);
* labeled blocks → generator methods driven by a pc loop, preserving
  step atomicity boundaries (each block yields once for its processing
  cost, then runs its statements without further yields — atomic in
  the simulation, serialized by the NIB in a real deployment);
* pure helpers → module-level functions; unknown helpers → externs
  supplied by the harness.

Use :func:`generate_module` for the source text and
:func:`compile_program` to exec it and obtain the component factory.
"""

from __future__ import annotations

import textwrap
from typing import Any, Callable, Optional

from .ast_nodes import (
    AckPopStmt,
    AckReadStmt,
    AwaitStmt,
    CallStmt,
    Const,
    DoneStmt,
    Expr,
    FifoGetStmt,
    FifoPutStmt,
    Global,
    GotoStmt,
    HelperCall,
    IfStmt,
    LocalVar,
    Prim,
    Program,
    SetGlobal,
    SetLocal,
    SkipStmt,
    Stmt,
)
from .types import FifoType

__all__ = ["generate_module", "compile_program", "CodegenError"]


class CodegenError(Exception):
    """Raised for programs the generator cannot translate."""


_BINOPS = {"+": "+", "-": "-", "==": "==", "!=": "!=", "<": "<",
           "<=": "<=", ">": ">", ">=": ">=", "and": "and", "or": "or",
           "in": "in", "union": "|", "diff": "-"}


class _ExprGen:
    def __init__(self, program: Program):
        self.program = program
        self.queues = self._queue_names()

    def _queue_names(self) -> set[str]:
        names = set(self.program.ack_queues)
        for name, annotation in self.program.global_types.items():
            if isinstance(annotation, FifoType):
                names.add(name)
        return names

    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            if expr.value is None:
                return "NADIR_NULL"
            return repr(expr.value)
        if isinstance(expr, Global):
            if expr.name in self.queues:
                raise CodegenError(
                    f"queue global {expr.name!r} may only be used with "
                    f"queue macros or len()")
            return f"self.rt.get({expr.name!r})"
        if isinstance(expr, LocalVar):
            return f"self.{expr.name}"
        if isinstance(expr, Prim):
            return self._emit_prim(expr)
        if isinstance(expr, HelperCall):
            args = ", ".join(self.emit(a) for a in expr.args)
            if expr.name in self.program.helpers:
                return f"{expr.name}({args})"
            return f"self.rt.extern({expr.name!r})({args})"
        raise CodegenError(f"unknown expression {expr!r}")

    def _emit_prim(self, expr: Prim) -> str:
        op, args = expr.op, expr.args
        if op == "len" and isinstance(args[0], Global) \
                and args[0].name in self.queues:
            return f"self.rt.queue_length({args[0].name!r})"
        rendered = [self.emit(a) for a in args]
        if op in _BINOPS:
            return f"({rendered[0]} {_BINOPS[op]} {rendered[1]})"
        if op == "not":
            return f"(not {rendered[0]})"
        if op == "len":
            return f"len({rendered[0]})"
        if op == "tuple":
            inner = ", ".join(rendered)
            trailing = "," if len(rendered) == 1 else ""
            return f"({inner}{trailing})"
        if op == "append":
            return f"({rendered[0]} + ({rendered[1]},))"
        if op == "head":
            return f"{rendered[0]}[0]"
        if op == "tail":
            return f"{rendered[0]}[1:]"
        if op == "field":
            return f"{rendered[0]}[{rendered[1]}]"
        if op == "set_field":
            return f"{{**{rendered[0]}, {rendered[1]}: {rendered[2]}}}"
        if op == "record":
            pairs = ", ".join(f"{rendered[i]}: {rendered[i + 1]}"
                              for i in range(0, len(rendered), 2))
            return f"{{{pairs}}}"
        if op == "max":
            return f"max({rendered[0]}, {rendered[1]})"
        raise CodegenError(f"unsupported primitive {op!r}")


class _StmtGen:
    def __init__(self, exprs: _ExprGen):
        self.exprs = exprs

    def emit(self, stmt: Stmt, indent: int) -> list[str]:
        pad = "    " * indent
        e = self.exprs.emit
        if isinstance(stmt, SkipStmt):
            return [f"{pad}pass"]
        if isinstance(stmt, CallStmt):
            return [f"{pad}{e(stmt.call)}"]
        if isinstance(stmt, SetGlobal):
            if stmt.name in self.exprs.queues:
                raise CodegenError(
                    f"cannot assign queue global {stmt.name!r} directly")
            return [f"{pad}self.rt.set({stmt.name!r}, {e(stmt.value)})"]
        if isinstance(stmt, SetLocal):
            return [f"{pad}self.{stmt.name} = {e(stmt.value)}"]
        if isinstance(stmt, FifoGetStmt):
            return [f"{pad}self.{stmt.target} = "
                    f"yield self.rt.fifo_get({stmt.queue!r})"]
        if isinstance(stmt, FifoPutStmt):
            return [f"{pad}self.rt.fifo_put({stmt.queue!r}, {e(stmt.value)})"]
        if isinstance(stmt, AckReadStmt):
            return [f"{pad}self.{stmt.target} = "
                    f"yield self.rt.ack_read({stmt.queue!r})"]
        if isinstance(stmt, AckPopStmt):
            return [f"{pad}self.rt.ack_pop({stmt.queue!r})"]
        if isinstance(stmt, AwaitStmt):
            return [f"{pad}yield from self.rt.wait_until("
                    f"lambda: {e(stmt.condition)})"]
        if isinstance(stmt, IfStmt):
            lines = [f"{pad}if {e(stmt.condition)}:"]
            then_lines = [line for inner in stmt.then
                          for line in self.emit(inner, indent + 1)]
            lines.extend(then_lines or [f"{pad}    pass"])
            if stmt.orelse:
                lines.append(f"{pad}else:")
                lines.extend(line for inner in stmt.orelse
                             for line in self.emit(inner, indent + 1))
            return lines
        if isinstance(stmt, GotoStmt):
            return [f"{pad}return {stmt.label!r}"]
        if isinstance(stmt, DoneStmt):
            return [f"{pad}return None"]
        raise CodegenError(f"unknown statement {stmt!r}")


def generate_module(program: Program) -> str:
    """Emit the Python source for ``program``."""
    failures = program.validate_types()
    if failures:
        raise CodegenError(f"TypeOK fails for: {', '.join(failures)}")
    exprs = _ExprGen(program)
    stmts = _StmtGen(exprs)
    fifo_names = tuple(sorted(exprs.queues - set(program.ack_queues)))
    ack_names = tuple(sorted(program.ack_queues))
    plain_globals = {
        name: value for name, value in program.globals_.items()
        if name not in exprs.queues
    }

    lines = [
        f'"""Generated by NADIR from specification {program.name!r}.',
        "",
        "Do not edit: regenerate from the annotated specification.",
        '"""',
        "",
        "from repro.nadir.runtime import NADIR_NULL, NadirComponent, "
        "NadirRuntime",
        "",
        f"PROGRAM_NAME = {program.name!r}",
        f"FIFO_QUEUES = {fifo_names!r}",
        f"ACK_QUEUES = {ack_names!r}",
        f"INITIAL_GLOBALS = {plain_globals!r}",
        "",
    ]
    for name, (params, body_source, _fn) in sorted(program.helpers.items()):
        lines.append(f"def {name}({', '.join(params)}):")
        lines.append(f'    """Pure helper from the specification."""')
        lines.append(f"    return {body_source}")
        lines.append("")

    class_names = []
    for definition in program.processes:
        class_name = _class_name(definition.name)
        class_names.append((definition.name, class_name))
        lines.append(f"class {class_name}(NadirComponent):")
        lines.append(f'    """Process {definition.name!r} '
                     f'of {program.name!r}."""')
        lines.append("")
        lines.append(f"    name = {definition.name!r}")
        lines.append(f"    LOCALS = {dict(definition.locals_)!r}")
        lines.append(f"    START = {definition.blocks[0].label!r}")
        lines.append("")
        lines.append("    def run_block(self, pc):")
        for i, block in enumerate(definition.blocks):
            keyword = "if" if i == 0 else "elif"
            lines.append(f"        {keyword} pc == {block.label!r}:")
            lines.append("            yield self.rt.step_delay()")
            body = [line for stmt in block.body
                    for line in stmts.emit(stmt, 3)]
            lines.extend(body or ["            pass"])
            next_label = (definition.blocks[i + 1].label
                          if i + 1 < len(definition.blocks) else None)
            lines.append(f"            return {next_label!r}")
        lines.append("        raise ValueError(f'unknown label {pc!r}')")
        lines.append("")

    lines.append("def build(env, nib, namespace=None, externs=None, "
                 "step_cost=0.0005, queue_aliases=None):")
    lines.append('    """Instantiate the runtime and all generated '
                 'components."""')
    lines.append("    runtime = NadirRuntime(env, nib, "
                 "namespace or PROGRAM_NAME, fifo_queues=FIFO_QUEUES, "
                 "ack_queues=ACK_QUEUES, step_cost=step_cost, "
                 "queue_aliases=queue_aliases)")
    lines.append("    runtime.initialize(INITIAL_GLOBALS)")
    lines.append("    for extern_name, fn in (externs or {}).items():")
    lines.append("        runtime.register_extern(extern_name, fn)")
    lines.append("    components = {")
    for process_name, class_name in class_names:
        lines.append(f"        {process_name!r}: "
                     f"{class_name}(env, runtime),")
    lines.append("    }")
    lines.append("    return runtime, components")
    lines.append("")
    return "\n".join(lines)


def _class_name(process_name: str) -> str:
    parts = [p for p in process_name.replace("-", "_").split("_") if p]
    return "".join(p.capitalize() for p in parts) + "Process"


def compile_program(program: Program) -> tuple[str, dict]:
    """Generate, exec and return (source, module namespace)."""
    source = generate_module(program)
    namespace: dict[str, Any] = {}
    exec(compile(source, f"<nadir:{program.name}>", "exec"), namespace)
    return source, namespace
