"""Network topologies.

Generators for the topologies used in the paper's evaluation:

* :func:`b4` — the 12-node B4 WAN (Jain et al., SIGCOMM'13), used for
  the traffic-engineering experiments (Fig. 14, Fig. A.2).
* :func:`fat_tree` — a k-ary fat-tree, used for drain/undrain (Fig. 16).
* :func:`kdl` — a KDL-like sparse WAN graph.  KDL is the largest graph
  in the Internet Topology Zoo (754 nodes); since the Zoo data cannot be
  bundled offline, we generate a degree-matched sparse connected graph
  of the same scale.  Scaling experiments (Fig. 11/12/13) only use
  connected subgraphs of it, produced by :func:`subgraph`.
* :func:`linear` and :func:`ring` — small synthetic topologies used in
  unit tests and trace replay.

A :class:`Topology` is a thin wrapper over an undirected
``networkx.Graph`` whose nodes are switch identifiers (strings), with
per-link capacity (Gb/s) and propagation delay (seconds).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

import networkx as nx

from ..sim import RandomStreams

__all__ = ["Topology", "linear", "ring", "b4", "fat_tree", "kdl", "subgraph",
           "update_gadget"]

DEFAULT_CAPACITY_GBPS = 10.0
DEFAULT_LINK_DELAY_S = 0.001


class Topology:
    """An undirected switch-level topology with link attributes."""

    def __init__(self, name: str, graph: Optional[nx.Graph] = None):
        self.name = name
        self.graph = graph if graph is not None else nx.Graph()

    # -- construction ----------------------------------------------------------
    def add_switch(self, switch_id: str) -> None:
        """Add a switch node."""
        self.graph.add_node(switch_id)

    def add_link(self, a: str, b: str,
                 capacity: float = DEFAULT_CAPACITY_GBPS,
                 delay: float = DEFAULT_LINK_DELAY_S) -> None:
        """Add a bidirectional link with capacity (Gb/s) and delay (s)."""
        self.graph.add_edge(a, b, capacity=capacity, delay=delay)

    # -- queries ----------------------------------------------------------------
    @property
    def switches(self) -> list[str]:
        """Sorted switch identifiers."""
        return sorted(self.graph.nodes)

    @property
    def links(self) -> list[tuple[str, str]]:
        """Sorted (a, b) link tuples with a < b."""
        return sorted(tuple(sorted(edge)) for edge in self.graph.edges)

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __contains__(self, switch_id: str) -> bool:
        return switch_id in self.graph

    def neighbors(self, switch_id: str) -> list[str]:
        """Sorted neighbor switches."""
        return sorted(self.graph.neighbors(switch_id))

    def capacity(self, a: str, b: str) -> float:
        """Capacity of the (a, b) link in Gb/s."""
        return self.graph.edges[a, b]["capacity"]

    def delay(self, a: str, b: str) -> float:
        """Propagation delay of the (a, b) link in seconds."""
        return self.graph.edges[a, b]["delay"]

    def is_connected(self) -> bool:
        """Whether the topology is a single connected component."""
        return len(self) > 0 and nx.is_connected(self.graph)

    def shortest_path(self, src: str, dst: str,
                      excluded: Iterable[str] = ()) -> Optional[list[str]]:
        """Hop-count shortest path avoiding ``excluded`` switches.

        Returns None when no path exists.  Endpoints may not be
        excluded.
        """
        excluded = set(excluded) - {src, dst}
        view = nx.restricted_view(self.graph, nodes=excluded, edges=[])
        try:
            return nx.shortest_path(view, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def k_shortest_paths(self, src: str, dst: str, k: int,
                         excluded: Iterable[str] = ()) -> list[list[str]]:
        """Up to ``k`` loop-free shortest paths (by hop count)."""
        excluded = set(excluded) - {src, dst}
        view = nx.restricted_view(self.graph, nodes=excluded, edges=[])
        try:
            generator = nx.shortest_simple_paths(view, src, dst)
            return list(itertools.islice(generator, k))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return []

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep copy of the topology."""
        return Topology(name or self.name, self.graph.copy())


def linear(n: int, capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """A chain s0 - s1 - ... - s{n-1}."""
    topo = Topology(f"linear-{n}")
    for i in range(n):
        topo.add_switch(f"s{i}")
    for i in range(n - 1):
        topo.add_link(f"s{i}", f"s{i + 1}", capacity=capacity)
    return topo


def ring(n: int, capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """A cycle of n switches."""
    if n < 3:
        raise ValueError("ring needs at least 3 switches")
    topo = linear(n, capacity=capacity)
    topo.name = f"ring-{n}"
    topo.add_link(f"s{n - 1}", "s0", capacity=capacity)
    return topo


#: The 12 B4 sites (Jain et al. 2013) with the inter-site links of the
#: published topology figure.
_B4_SITES = [
    "b4-1", "b4-2", "b4-3", "b4-4", "b4-5", "b4-6",
    "b4-7", "b4-8", "b4-9", "b4-10", "b4-11", "b4-12",
]
_B4_LINKS = [
    (0, 1), (0, 2), (1, 2), (2, 3), (1, 4), (3, 4), (4, 5), (3, 6),
    (5, 6), (6, 7), (5, 8), (7, 8), (8, 9), (7, 10), (9, 10), (10, 11),
    (9, 11), (2, 5), (4, 7),
]


def b4(capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """The 12-node B4-like WAN used in Fig. 14 / Fig. A.2."""
    topo = Topology("b4")
    for site in _B4_SITES:
        topo.add_switch(site)
    for a, b_ in _B4_LINKS:
        topo.add_link(_B4_SITES[a], _B4_SITES[b_], capacity=capacity)
    return topo


def fat_tree(k: int = 4, capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """A k-ary fat-tree (k even): k^2/4 core, k pods of k/2+k/2 switches."""
    if k % 2:
        raise ValueError("fat-tree requires even k")
    topo = Topology(f"fat-tree-{k}")
    half = k // 2
    cores = [f"core-{i}" for i in range(half * half)]
    for core in cores:
        topo.add_switch(core)
    for pod in range(k):
        aggs = [f"agg-{pod}-{i}" for i in range(half)]
        edges = [f"edge-{pod}-{i}" for i in range(half)]
        for agg in aggs:
            topo.add_switch(agg)
        for edge in edges:
            topo.add_switch(edge)
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j], capacity=capacity)
            for edge in edges:
                topo.add_link(agg, edge, capacity=capacity)
    return topo


def kdl(n: int = 754, seed: int = 0,
        capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """A KDL-like sparse connected WAN graph with ~1.2·n links.

    KDL (Topology Zoo) has 754 nodes and 899 edges (average degree
    ≈2.38) and is tree-like with occasional redundancy, which is what
    this generator produces: a random spanning tree plus ~0.2·n extra
    shortcut edges.
    """
    if n < 2:
        raise ValueError("kdl needs at least 2 switches")
    streams = RandomStreams(seed, path=f"kdl-{n}")
    rng = streams.rng
    topo = Topology(f"kdl-{n}")
    names = [f"s{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    # Random spanning tree (random attachment, WAN-style long chains).
    for i in range(1, n):
        # Prefer attaching near the end of the existing chain to keep the
        # graph sparse and high-diameter like KDL.
        if rng.random() < 0.7:
            parent = names[i - 1]
        else:
            parent = names[rng.randrange(i)]
        topo.add_link(names[i], parent, capacity=capacity)
    extra = max(1, int(0.2 * n))
    added = 0
    attempts = 0
    while added < extra and attempts < 50 * extra:
        attempts += 1
        a, b_ = rng.sample(names, 2)
        if not topo.graph.has_edge(a, b_):
            topo.add_link(a, b_, capacity=capacity)
            added += 1
    return topo


#: Links of the consistent-update gadget (see :func:`update_gadget`).
_UPDATE_GADGET_LINKS = [
    # Demand A: reversal gadget a1→(a2,a3) plus helper a5 for the
    # mixing-free intermediate path a0,a1,a5,a4.
    ("a0", "a1"), ("a1", "a2"), ("a2", "a3"), ("a3", "a4"),
    ("a1", "a3"), ("a2", "a4"), ("a1", "a5"), ("a5", "a4"),
    # Demand B: the same reversal gadget with b2 as a waypoint.
    ("b0", "b1"), ("b1", "b2"), ("b2", "b3"), ("b3", "b4"),
    ("b1", "b3"), ("b2", "b4"),
    # Keep the topology connected; carries no demand traffic.
    ("a4", "b0"),
]


def update_gadget(capacity: float = DEFAULT_CAPACITY_GBPS) -> Topology:
    """The consistent-network-update stress topology (11 switches).

    Two disjoint copies of the classic *path reversal* gadget (Foerster
    & Schmid: old path s,u,v,w,d vs. new path s,u,w,v,d — the minimal
    transition where naive rule pushing creates a transient v↔w loop):

    * **Demand A** ``a0→a4``: old ``a0,a1,a2,a3,a4``, new
      ``a0,a1,a3,a2,a4``.  The helper node ``a5`` provides an
      intermediate path ``a0,a1,a5,a4`` whose interior is disjoint from
      both, which is what makes a per-packet-consistent schedule (a
      chain of suffix swaps) possible at all.
    * **Demand B** ``b0→b4`` with waypoint ``b2``: same shape, no
      helper.  Per-packet consistency is unachievable here; the
      achievable contract is loop freedom + waypoint enforcement via
      segmented updates (update the segment after the waypoint first).
    """
    topo = Topology("update-gadget")
    for prefix, count in (("a", 6), ("b", 5)):
        for i in range(count):
            topo.add_switch(f"{prefix}{i}")
    for a, b_ in _UPDATE_GADGET_LINKS:
        topo.add_link(a, b_, capacity=capacity)
    return topo


def subgraph(topo: Topology, n: int, seed: int = 0) -> Topology:
    """A connected n-node subgraph (BFS ball around a random seed node)."""
    if n > len(topo):
        raise ValueError(f"cannot take {n}-node subgraph of {len(topo)} nodes")
    streams = RandomStreams(seed, path=f"subgraph-{topo.name}-{n}")
    start = streams.choice(topo.switches)
    selected: list[str] = []
    seen = {start}
    frontier = [start]
    while frontier and len(selected) < n:
        node = frontier.pop(0)
        selected.append(node)
        for neighbor in topo.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    if len(selected) < n:
        raise ValueError("source graph not connected enough")
    sub = topo.graph.subgraph(selected).copy()
    result = Topology(f"{topo.name}-sub{n}", sub)
    if not result.is_connected():
        # BFS ball is always connected; guard anyway.
        raise AssertionError("subgraph not connected")
    return result
