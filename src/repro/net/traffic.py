"""Fluid traffic model: max-min fair flow throughput over resolved paths.

The throughput experiments (Fig. 14, Fig. 16, Fig. A.2) measure the
aggregate rate of a set of flows while the control plane reconverges.
We model traffic as fluid: at any instant a flow either follows the
path the dataplane currently resolves for it (see
:meth:`repro.net.dataplane.Network.trace`) or gets zero throughput if
the path is blackholed/broken; rates of delivered flows are the
max-min fair allocation over link capacities (progressive filling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..sim import Environment
from .dataplane import Network, PathStatus

__all__ = ["Flow", "max_min_fair", "flow_rates", "TrafficMonitor"]


@dataclass(frozen=True)
class Flow:
    """A unidirectional demand between two switches (Gb/s)."""

    name: str
    src: str
    dst: str
    demand: float


def max_min_fair(paths: dict[str, list[str]],
                 demands: dict[str, float],
                 capacity: Callable[[str, str], float]) -> dict[str, float]:
    """Max-min fair rates for flows pinned to paths (water filling).

    ``paths`` maps flow name → hop list; ``demands`` caps each flow's
    rate; ``capacity(a, b)`` returns the capacity of a link.  Flows with
    empty or single-hop paths are granted their full demand (they use no
    links).
    """
    links: dict[tuple[str, str], float] = {}
    flows_on_link: dict[tuple[str, str], set[str]] = {}
    active: set[str] = set()
    rates: dict[str, float] = {}

    def link_key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a < b else (b, a)

    for name, hops in paths.items():
        if len(hops) < 2:
            rates[name] = demands.get(name, 0.0)
            continue
        active.add(name)
        rates[name] = 0.0
        for a, b in zip(hops, hops[1:]):
            key = link_key(a, b)
            links.setdefault(key, capacity(*key))
            flows_on_link.setdefault(key, set()).add(name)

    remaining_demand = {name: demands.get(name, 0.0) for name in active}

    while active:
        # Fair share each link could still give its active flows.
        best_increment = None
        for key, cap in links.items():
            users = flows_on_link[key] & active
            if not users:
                continue
            share = cap / len(users)
            if best_increment is None or share < best_increment:
                best_increment = share
        demand_limited = min(
            (remaining_demand[name] for name in active), default=None)
        if best_increment is None:
            increment = demand_limited
        elif demand_limited is not None:
            increment = min(best_increment, demand_limited)
        else:
            increment = best_increment
        if increment is None or increment <= 1e-12:
            increment = 0.0

        frozen: set[str] = set()
        for name in active:
            rates[name] += increment
            remaining_demand[name] -= increment
            if remaining_demand[name] <= 1e-12:
                frozen.add(name)
        for key in links:
            users = flows_on_link[key] & active
            if users:
                links[key] -= increment * len(users)
                if links[key] <= 1e-12:
                    frozen |= users
        if not frozen:
            # Numerical safety: freeze everything rather than spin.
            frozen = set(active)
        active -= frozen
    return rates


def flow_rates(network: Network, flows: Iterable[Flow]) -> dict[str, float]:
    """Instantaneous per-flow throughput given current dataplane state."""
    paths: dict[str, list[str]] = {}
    demands: dict[str, float] = {}
    zero: dict[str, float] = {}
    for flow in flows:
        demands[flow.name] = flow.demand
        result = network.trace(flow.src, flow.dst)
        if result.ok:
            paths[flow.name] = list(result.hops)
        else:
            zero[flow.name] = 0.0
    rates = max_min_fair(paths, demands, network.topology.capacity)
    rates.update(zero)
    return rates


@dataclass
class TrafficSample:
    """One sampling instant of the traffic monitor."""

    time: float
    per_flow: dict[str, float]

    @property
    def total(self) -> float:
        """Aggregate throughput across flows."""
        return sum(self.per_flow.values())


class TrafficMonitor:
    """Samples flow throughput on a fixed period, building a timeline."""

    def __init__(self, env: Environment, network: Network,
                 flows: list[Flow], period: float = 0.5):
        self.env = env
        self.network = network
        self.flows = flows
        self.period = period
        self.samples: list[TrafficSample] = []
        self._proc = env.process(self._run(), name="traffic-monitor")

    def _run(self):
        while True:
            rates = flow_rates(self.network, self.flows)
            self.samples.append(TrafficSample(self.env.now, rates))
            yield self.env.timeout(self.period)

    # -- analysis -------------------------------------------------------------
    def timeline(self) -> list[tuple[float, float]]:
        """(time, aggregate throughput) series."""
        return [(s.time, s.total) for s in self.samples]

    def average_total(self, start: float = 0.0,
                      end: Optional[float] = None) -> float:
        """Mean aggregate throughput over [start, end]."""
        window = [s.total for s in self.samples
                  if s.time >= start and (end is None or s.time <= end)]
        if not window:
            return 0.0
        return sum(window) / len(window)
