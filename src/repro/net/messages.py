"""Control-channel messages between the controller and switches.

The switch exports an OpenFlow-like but protocol-agnostic interface
(paper §3.5): install a rule, delete a rule, return the routing table,
clear the TCAM, and change the controller role.  Each request carries a
transaction id (``xid``) that the corresponding ACK echoes, which is how
the Monitoring Server correlates ACKs with OPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "FlowEntry",
    "MsgKind",
    "SwitchRequest",
    "SwitchAck",
    "TableSnapshot",
    "SwitchStatus",
    "SwitchStatusMsg",
]


@dataclass(frozen=True, slots=True)
class FlowEntry:
    """One TCAM entry: route traffic for ``dst`` to ``next_hop``.

    ``entry_id`` identifies the slot a rule occupies; installing an
    entry with an id already present overwrites it (as flow-mod does).
    Forwarding uses the highest-priority entry matching the packet's
    destination.
    """

    entry_id: int
    dst: str
    next_hop: str
    priority: int = 0


class MsgKind(enum.Enum):
    """Request kinds the switch understands."""

    INSTALL = "install"
    DELETE = "delete"
    CLEAR_TCAM = "clear_tcam"
    READ_TABLE = "read_table"
    ROLE_CHANGE = "role_change"


@dataclass(frozen=True)
class SwitchRequest:
    """A controller→switch request."""

    kind: MsgKind
    switch: str
    xid: int
    sender: str = "ofc"
    entry: Optional[FlowEntry] = None
    entry_id: Optional[int] = None
    role: Optional[str] = None


@dataclass(frozen=True)
class SwitchAck:
    """A switch→controller acknowledgement (A3: ack ⇔ completed)."""

    kind: MsgKind
    switch: str
    xid: int
    ok: bool = True
    detail: str = ""


@dataclass(frozen=True)
class TableSnapshot:
    """Response to READ_TABLE: the full flow table at read time."""

    switch: str
    xid: int
    entries: tuple[FlowEntry, ...]


class SwitchStatus(enum.Enum):
    """Health states a switch reports."""

    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class SwitchStatusMsg:
    """Out-of-band liveness notification (keepalive loss / reconnect)."""

    switch: str
    status: SwitchStatus
    at: float
    #: True if the failure wiped the TCAM (complete failure).
    state_lost: bool = False
