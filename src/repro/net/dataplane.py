"""Dataplane: a set of switches over a topology, plus forwarding resolution.

:class:`Network` bundles a :class:`~repro.net.topology.Topology` with one
:class:`~repro.net.switch.SimSwitch` per node and answers ground-truth
questions the experiments need: "if a packet for ``dst`` enters at
``src`` right now, where does it go?" — delivered, blackholed (no
matching entry or dead next hop), or looping.  This is how we detect the
paper's *hidden flow entry* pathologies (Fig. 2): a stale higher-priority
entry steers traffic at a switch even though the controller believes the
new route is installed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Environment, RandomStreams
from .switch import FailureMode, SimSwitch
from .topology import Topology

__all__ = ["Network", "PathStatus", "PathResult", "PathTrace"]


class PathStatus(enum.Enum):
    """Outcome of tracing a packet through the dataplane."""

    DELIVERED = "delivered"
    BLACKHOLE = "blackhole"       # no matching entry at some hop
    DEAD_SWITCH = "dead_switch"   # a hop (or the next hop) is down
    LOOP = "loop"                 # forwarding loop detected
    BROKEN_LINK = "broken_link"   # next hop is not adjacent


@dataclass(frozen=True)
class PathResult:
    """The traced path and its outcome."""

    status: PathStatus
    hops: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the packet reached its destination."""
        return self.status is PathStatus.DELIVERED


@dataclass(frozen=True)
class PathTrace:
    """A traced path plus the flow entry consulted at every lookup.

    ``entries[i]`` is the entry that forwarded the packet out of the
    switch that made lookup ``i``.  A DELIVERED trace makes one lookup
    per hop except the destination (``len(entries) == len(hops) - 1``);
    a trace that stops because of the entry it just consulted (LOOP,
    BROKEN_LINK, dead next hop) additionally records that entry
    (``len(entries) == len(hops)``).  Consistency checkers need the
    entries, not just the hop sequence: per-packet consistency is a
    property of *which rule generation* forwarded the packet at each
    hop (Reitblatt et al.).
    """

    status: PathStatus
    hops: tuple[str, ...]
    entries: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether the packet reached its destination."""
        return self.status is PathStatus.DELIVERED

    def entry_ids(self) -> tuple[int, ...]:
        """Ids of the entries used, in lookup order."""
        return tuple(entry.entry_id for entry in self.entries)


class Network:
    """All switches of a topology plus ground-truth forwarding."""

    def __init__(self, env: Environment, topology: Topology,
                 streams: Optional[RandomStreams] = None,
                 local_repair: bool = False, **switch_kwargs):
        self.env = env
        self.topology = topology
        self.streams = streams or RandomStreams(0)
        #: Fast local recovery (paper §6.2, Fig. 14): when enabled, a
        #: switch whose best entry points at a dead neighbor falls back
        #: to its next-best matching entry (pre-installed backup paths),
        #: modeling IPFRR/BFD-style local repair.
        self.local_repair = local_repair
        self.switches: dict[str, SimSwitch] = {
            switch_id: SimSwitch(env, switch_id, streams=self.streams,
                                 **switch_kwargs)
            for switch_id in topology.switches
        }
        #: Optional repro.chaos.FaultPlane shared by every switch.
        self.fault_plane = None

    def __getitem__(self, switch_id: str) -> SimSwitch:
        return self.switches[switch_id]

    def __iter__(self):
        return iter(self.switches.values())

    def __len__(self) -> int:
        return len(self.switches)

    # -- failure injection ---------------------------------------------------------
    def install_fault_plane(self, plane) -> None:
        """Route every switch's control channels through ``plane``.

        ``plane`` is a :class:`repro.chaos.FaultPlane`; pass ``None``
        to detach.  Channels behave exactly as before until a fault is
        armed (the switch hot path checks ``plane.active``).
        """
        self.fault_plane = plane
        for switch in self.switches.values():
            switch.fault_plane = plane

    def fail_switch(self, switch_id: str,
                    mode: FailureMode = FailureMode.COMPLETE) -> None:
        """Fail one switch."""
        self.switches[switch_id].fail(mode)

    def recover_switch(self, switch_id: str) -> None:
        """Recover one switch."""
        self.switches[switch_id].recover()

    def healthy_switches(self) -> list[str]:
        """Ids of currently healthy switches."""
        return [s for s, sw in self.switches.items() if sw.is_healthy]

    # -- ground truth ------------------------------------------------------------
    def trace(self, src: str, dst: str, max_hops: int = 64) -> PathResult:
        """Trace a packet for ``dst`` injected at ``src``."""
        detailed = self.trace_detailed(src, dst, max_hops=max_hops)
        return PathResult(detailed.status, detailed.hops)

    def trace_detailed(self, src: str, dst: str,
                       max_hops: int = 64) -> PathTrace:
        """Trace a packet, recording the flow entry used at each hop."""
        hops = [src]
        used: list = []
        current = src
        visited = {src}
        while current != dst:
            switch = self.switches[current]
            if not switch.is_healthy:
                return PathTrace(PathStatus.DEAD_SWITCH, tuple(hops),
                                 tuple(used))
            if self.local_repair:
                entry = self._repair_lookup(switch, dst)
                if entry is None:
                    best = switch.lookup(dst)
                    status = (PathStatus.BLACKHOLE if best is None
                              else PathStatus.DEAD_SWITCH)
                    return PathTrace(status, tuple(hops), tuple(used))
            else:
                entry = switch.lookup(dst)
                if entry is None:
                    return PathTrace(PathStatus.BLACKHOLE, tuple(hops),
                                     tuple(used))
            next_hop = entry.next_hop
            used.append(entry)
            if not self.topology.graph.has_edge(current, next_hop):
                return PathTrace(PathStatus.BROKEN_LINK, tuple(hops),
                                 tuple(used))
            if not self.switches[next_hop].is_healthy:
                return PathTrace(PathStatus.DEAD_SWITCH, tuple(hops),
                                 tuple(used))
            if next_hop in visited or len(hops) > max_hops:
                return PathTrace(PathStatus.LOOP, tuple(hops), tuple(used))
            hops.append(next_hop)
            visited.add(next_hop)
            current = next_hop
        return PathTrace(PathStatus.DELIVERED, tuple(hops), tuple(used))

    def _repair_lookup(self, switch: SimSwitch, dst: str):
        """Best matching entry whose next hop is alive and adjacent."""
        for entry in switch.lookup_all(dst):
            if (self.topology.graph.has_edge(switch.switch_id,
                                             entry.next_hop)
                    and self.switches[entry.next_hop].is_healthy):
                return entry
        return None

    def routing_state(self) -> dict[str, frozenset[int]]:
        """Ground-truth installed entry ids per switch (the paper's G_d)."""
        return {
            switch_id: frozenset(switch.flow_table.keys())
            for switch_id, switch in self.switches.items()
        }

    def entry_counts(self) -> dict[str, int]:
        """Installed entries per switch."""
        return {sid: len(sw.flow_table) for sid, sw in self.switches.items()}
