"""Dataplane: a set of switches over a topology, plus forwarding resolution.

:class:`Network` bundles a :class:`~repro.net.topology.Topology` with one
:class:`~repro.net.switch.SimSwitch` per node and answers ground-truth
questions the experiments need: "if a packet for ``dst`` enters at
``src`` right now, where does it go?" — delivered, blackholed (no
matching entry or dead next hop), or looping.  This is how we detect the
paper's *hidden flow entry* pathologies (Fig. 2): a stale higher-priority
entry steers traffic at a switch even though the controller believes the
new route is installed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Environment, RandomStreams
from .switch import FailureMode, SimSwitch
from .topology import Topology

__all__ = ["Network", "PathStatus", "PathResult"]


class PathStatus(enum.Enum):
    """Outcome of tracing a packet through the dataplane."""

    DELIVERED = "delivered"
    BLACKHOLE = "blackhole"       # no matching entry at some hop
    DEAD_SWITCH = "dead_switch"   # a hop (or the next hop) is down
    LOOP = "loop"                 # forwarding loop detected
    BROKEN_LINK = "broken_link"   # next hop is not adjacent


@dataclass(frozen=True)
class PathResult:
    """The traced path and its outcome."""

    status: PathStatus
    hops: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the packet reached its destination."""
        return self.status is PathStatus.DELIVERED


class Network:
    """All switches of a topology plus ground-truth forwarding."""

    def __init__(self, env: Environment, topology: Topology,
                 streams: Optional[RandomStreams] = None,
                 local_repair: bool = False, **switch_kwargs):
        self.env = env
        self.topology = topology
        self.streams = streams or RandomStreams(0)
        #: Fast local recovery (paper §6.2, Fig. 14): when enabled, a
        #: switch whose best entry points at a dead neighbor falls back
        #: to its next-best matching entry (pre-installed backup paths),
        #: modeling IPFRR/BFD-style local repair.
        self.local_repair = local_repair
        self.switches: dict[str, SimSwitch] = {
            switch_id: SimSwitch(env, switch_id, streams=self.streams,
                                 **switch_kwargs)
            for switch_id in topology.switches
        }
        #: Optional repro.chaos.FaultPlane shared by every switch.
        self.fault_plane = None

    def __getitem__(self, switch_id: str) -> SimSwitch:
        return self.switches[switch_id]

    def __iter__(self):
        return iter(self.switches.values())

    def __len__(self) -> int:
        return len(self.switches)

    # -- failure injection ---------------------------------------------------------
    def install_fault_plane(self, plane) -> None:
        """Route every switch's control channels through ``plane``.

        ``plane`` is a :class:`repro.chaos.FaultPlane`; pass ``None``
        to detach.  Channels behave exactly as before until a fault is
        armed (the switch hot path checks ``plane.active``).
        """
        self.fault_plane = plane
        for switch in self.switches.values():
            switch.fault_plane = plane

    def fail_switch(self, switch_id: str,
                    mode: FailureMode = FailureMode.COMPLETE) -> None:
        """Fail one switch."""
        self.switches[switch_id].fail(mode)

    def recover_switch(self, switch_id: str) -> None:
        """Recover one switch."""
        self.switches[switch_id].recover()

    def healthy_switches(self) -> list[str]:
        """Ids of currently healthy switches."""
        return [s for s, sw in self.switches.items() if sw.is_healthy]

    # -- ground truth ------------------------------------------------------------
    def trace(self, src: str, dst: str, max_hops: int = 64) -> PathResult:
        """Trace a packet for ``dst`` injected at ``src``."""
        hops = [src]
        current = src
        visited = {src}
        while current != dst:
            switch = self.switches[current]
            if not switch.is_healthy:
                return PathResult(PathStatus.DEAD_SWITCH, tuple(hops))
            if self.local_repair:
                entry = self._repair_lookup(switch, dst)
                if entry is None:
                    best = switch.lookup(dst)
                    status = (PathStatus.BLACKHOLE if best is None
                              else PathStatus.DEAD_SWITCH)
                    return PathResult(status, tuple(hops))
            else:
                entry = switch.lookup(dst)
                if entry is None:
                    return PathResult(PathStatus.BLACKHOLE, tuple(hops))
            next_hop = entry.next_hop
            if not self.topology.graph.has_edge(current, next_hop):
                return PathResult(PathStatus.BROKEN_LINK, tuple(hops))
            if not self.switches[next_hop].is_healthy:
                return PathResult(PathStatus.DEAD_SWITCH, tuple(hops))
            if next_hop in visited or len(hops) > max_hops:
                return PathResult(PathStatus.LOOP, tuple(hops))
            hops.append(next_hop)
            visited.add(next_hop)
            current = next_hop
        return PathResult(PathStatus.DELIVERED, tuple(hops))

    def _repair_lookup(self, switch: SimSwitch, dst: str):
        """Best matching entry whose next hop is alive and adjacent."""
        for entry in switch.lookup_all(dst):
            if (self.topology.graph.has_edge(switch.switch_id,
                                             entry.next_hop)
                    and self.switches[entry.next_hop].is_healthy):
                return entry
        return None

    def routing_state(self) -> dict[str, frozenset[int]]:
        """Ground-truth installed entry ids per switch (the paper's G_d)."""
        return {
            switch_id: frozenset(switch.flow_table.keys())
            for switch_id, switch in self.switches.items()
        }

    def entry_counts(self) -> dict[str, int]:
        """Installed entries per switch."""
        return {sid: len(sw.flow_table) for sid, sw in self.switches.items()}
