"""Network substrate: topologies, switches, dataplane, traffic."""

from .dataplane import Network, PathResult, PathStatus
from .messages import (
    FlowEntry,
    MsgKind,
    SwitchAck,
    SwitchRequest,
    SwitchStatus,
    SwitchStatusMsg,
    TableSnapshot,
)
from .switch import FailureMode, SimSwitch, table_read_time
from .topology import Topology, b4, fat_tree, kdl, linear, ring, subgraph
from .traffic import Flow, TrafficMonitor, flow_rates, max_min_fair

__all__ = [
    "FailureMode",
    "Flow",
    "FlowEntry",
    "MsgKind",
    "Network",
    "PathResult",
    "PathStatus",
    "SimSwitch",
    "SwitchAck",
    "SwitchRequest",
    "SwitchStatus",
    "SwitchStatusMsg",
    "TableSnapshot",
    "Topology",
    "TrafficMonitor",
    "b4",
    "fat_tree",
    "flow_rates",
    "kdl",
    "linear",
    "max_min_fair",
    "ring",
    "subgraph",
    "table_read_time",
]
