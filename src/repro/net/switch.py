"""Executable AbstractSW: the paper's switch model (§3.5, Listing 2).

The switch is not Byzantine (assumption A3): if it acknowledges an OP it
has completed it correctly, it processes requests one at a time, and it
correctly wipes the TCAM when asked.  Failures are modeled by impact,
not root cause, along two dimensions:

* **state loss** — ``complete`` failures wipe the flow table and all
  in-flight requests; ``partial`` failures keep the TCAM but drop
  buffered in-flight requests.
* **duration** — the caller decides whether/when to call
  :meth:`SimSwitch.recover`, capturing transient vs permanent failures.

Timing is calibrated to the paper's Fig. 4(a) measurement of a Cumulus
SN2100: reading an ``n``-entry table takes
``1ms + 20.5µs·n + 1.9ns·n²`` (13 ms at 512 entries, 117 ms at 4096).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..sim import Environment, FifoQueue, Interrupt, RandomStreams, Store
from .messages import (
    FlowEntry,
    MsgKind,
    SwitchAck,
    SwitchRequest,
    SwitchStatus,
    SwitchStatusMsg,
    TableSnapshot,
)

__all__ = ["SimSwitch", "FailureMode", "table_read_time"]

#: Fig. 4(a) calibration constants (seconds).
READ_BASE_S = 1.0e-3
READ_PER_ENTRY_S = 20.5e-6
READ_QUADRATIC_S = 1.9e-9


def table_read_time(entries: int) -> float:
    """Time to read an ``entries``-long flow table (Fig. 4a fit)."""
    return READ_BASE_S + READ_PER_ENTRY_S * entries + READ_QUADRATIC_S * entries ** 2


class FailureMode(enum.Enum):
    """How much state a failure destroys."""

    #: TCAM and in-flight requests lost (e.g. power outage).
    COMPLETE = "complete"
    #: TCAM preserved; buffered requests lost (e.g. ASIC/CPU hiccup).
    PARTIAL = "partial"


class SimSwitch:
    """A single simulated switch with an OpenFlow-like control channel.

    The controller talks to the switch by calling :meth:`send` (which
    applies the control-channel one-way delay) and reads responses from
    :attr:`out_queue`.  Liveness transitions are announced on every
    queue registered via :meth:`add_status_listener` after the
    configured detection delay, modeling keepalive-based detection.
    """

    def __init__(self, env: Environment, switch_id: str,
                 streams: Optional[RandomStreams] = None,
                 channel_delay: float = 2e-3,
                 channel_jitter: float = 0.5e-3,
                 op_process_time: float = 1e-3,
                 detection_delay: float = 0.5):
        self.env = env
        self.switch_id = switch_id
        self.streams = (streams or RandomStreams(0)).child(f"sw-{switch_id}")
        self.channel_delay = channel_delay
        self.channel_jitter = channel_jitter
        self.op_process_time = op_process_time
        self.detection_delay = detection_delay

        self.flow_table: dict[int, FlowEntry] = {}
        self.health = Store(env, SwitchStatus.UP)
        self.master: Optional[str] = None
        self.in_queue = FifoQueue(env, f"{switch_id}.in")
        self.out_queue = FifoQueue(env, f"{switch_id}.out")
        self._status_listeners: list[FifoQueue] = []

        #: entry_id -> first time the entry was ever installed (for the
        #: CorrectDAGOrder safety condition, which uses first installs).
        self.first_install: dict[int, float] = {}
        #: Chronological (time, op) install/delete log — the paper's G_d.
        self.history: list[tuple[float, str, int]] = []
        self.failure_count = 0
        #: Installs that overwrote a live entry (§B duplicate metric).
        self.duplicate_installs = 0
        #: Telemetry counters (collected by repro.obs.MetricsRegistry).
        self.install_count = 0
        self.delete_count = 0
        self.table_read_count = 0
        #: Total entries served to table reads (reconciliation volume).
        self.reconciliation_entries = 0
        # FIFO channel guarantees (paper P4): delivery times are
        # monotone per direction even with jittered per-message delays.
        self._last_inbound_delivery = 0.0
        self._last_outbound_delivery = 0.0
        #: Optional repro.chaos.FaultPlane; when armed, control-channel
        #: deliveries route through it (drop/duplicate/delay/partition).
        self.fault_plane = None
        registry = getattr(env, "metrics", None)
        if registry is not None:
            registry.register_switch(self)
        self._process = env.process(self._main(), name=f"switch-{switch_id}")

    # -- health -----------------------------------------------------------------
    @property
    def is_healthy(self) -> bool:
        """Whether the switch is currently UP."""
        return self.health.value is SwitchStatus.UP

    def add_status_listener(self, queue: FifoQueue) -> None:
        """Deliver :class:`SwitchStatusMsg` notifications to ``queue``."""
        self._status_listeners.append(queue)

    def remove_status_listener(self, queue: FifoQueue) -> None:
        """Stop delivering notifications to ``queue``."""
        try:
            self._status_listeners.remove(queue)
        except ValueError:
            pass

    def fail(self, mode: FailureMode = FailureMode.COMPLETE) -> None:
        """Fail the switch; the caller controls recovery timing."""
        if not self.is_healthy:
            return
        self.failure_count += 1
        state_lost = mode is FailureMode.COMPLETE
        if state_lost:
            self.flow_table.clear()
            self.history.append((self.env.now, "wipe", -1))
        # In-flight requests are lost in both modes.
        self.in_queue.clear()
        self.out_queue.clear()
        self.health.set(SwitchStatus.DOWN)
        self._process.interrupt(("failure", mode))
        self._announce(SwitchStatus.DOWN, state_lost=state_lost)

    def recover(self) -> None:
        """Bring a failed switch back up."""
        if self.is_healthy:
            return
        self.health.set(SwitchStatus.UP)
        self._announce(SwitchStatus.UP)

    def _announce(self, status: SwitchStatus, state_lost: bool = False) -> None:
        message = SwitchStatusMsg(
            switch=self.switch_id, status=status, at=self.env.now,
            state_lost=state_lost)

        for extra, _fifo in self._delivery_plan("status"):
            def deliver(extra=extra):
                yield self.env.timeout(self.detection_delay + extra)
                for listener in self._status_listeners:
                    listener.put(message)

            self.env.process(deliver(), name=f"{self.switch_id}-status")

    # -- control channel -----------------------------------------------------------
    def _channel_delay(self) -> float:
        return self.channel_delay + self.streams.uniform(0.0, self.channel_jitter)

    def _delivery_plan(self, direction: str):
        """How to deliver one message: ``[(extra_delay, fifo), ...]``.

        Without an armed fault plane this is a single on-time FIFO
        delivery — the exact pre-chaos behavior, consuming the same
        randomness.  ``fifo=False`` deliveries (delayed/duplicated
        copies) bypass the monotone-delivery clamp and do not advance
        its watermark, so an extra delay can reorder past later sends.
        """
        plane = self.fault_plane
        if plane is None or not plane.active:
            return ((0.0, True),)
        return plane.deliveries(self.switch_id, direction, self.env.now)

    def send(self, request: SwitchRequest) -> None:
        """Deliver ``request`` after the control-channel one-way delay."""
        for extra, fifo in self._delivery_plan("c2s"):
            raw = self.env.now + self._channel_delay() + extra
            if fifo:
                arrival = max(raw, self._last_inbound_delivery)
                self._last_inbound_delivery = arrival
            else:
                arrival = raw

            def deliver(arrival=arrival):
                yield self.env.timeout(arrival - self.env.now)
                if self.is_healthy:
                    self.in_queue.put(request)
                # Requests to a dead switch are lost silently, like TCP
                # to a dead host; detection happens via keepalives.

            self.env.process(deliver(), name=f"{self.switch_id}-deliver")

    def _reply(self, message) -> None:
        for extra, fifo in self._delivery_plan("s2c"):
            raw = self.env.now + self._channel_delay() + extra
            if fifo:
                arrival = max(raw, self._last_outbound_delivery)
                self._last_outbound_delivery = arrival
            else:
                arrival = raw

            def deliver(arrival=arrival):
                yield self.env.timeout(arrival - self.env.now)
                self.out_queue.put(message)

            self.env.process(deliver(), name=f"{self.switch_id}-reply")

    # -- main loop -------------------------------------------------------------------
    def _main(self):
        while True:
            try:
                yield self.health.wait_for(lambda s: s is SwitchStatus.UP)
                request = yield self.in_queue.get()
                started = self.env.now
                yield self.env.timeout(self.op_process_time)
                self._perform(request)
                if self.env._tracing:
                    self.env.tracer.complete(
                        self.env, request.kind.name,
                        track=f"switch-{self.switch_id}", start=started,
                        duration=self.env.now - started, xid=request.xid)
            except Interrupt:
                # Failure: abandon whatever was in progress.
                continue

    def _perform(self, request: SwitchRequest) -> None:
        """Apply one request and acknowledge it (A3 semantics)."""
        if request.kind is MsgKind.INSTALL:
            entry = request.entry
            assert entry is not None
            if entry.entry_id in self.flow_table:
                # §B "unnecessary OP installation": overwriting a live
                # entry is a duplicate (tolerated around failures, but
                # counted so experiments can quantify it).
                self.duplicate_installs += 1
            self.flow_table[entry.entry_id] = entry
            self.first_install.setdefault(entry.entry_id, self.env.now)
            self.history.append((self.env.now, "install", entry.entry_id))
            self.install_count += 1
            if self.env._tracing:
                self.env.tracer.op_mark(
                    self.env, request.xid, "installed",
                    track=f"switch-{self.switch_id}",
                    entry=entry.entry_id)
            self._reply(SwitchAck(MsgKind.INSTALL, self.switch_id, request.xid))
        elif request.kind is MsgKind.DELETE:
            assert request.entry_id is not None
            self.flow_table.pop(request.entry_id, None)
            self.history.append((self.env.now, "delete", request.entry_id))
            self.delete_count += 1
            if self.env._tracing:
                self.env.tracer.op_mark(
                    self.env, request.xid, "installed",
                    track=f"switch-{self.switch_id}",
                    entry=request.entry_id, kind="delete")
            self._reply(SwitchAck(MsgKind.DELETE, self.switch_id, request.xid))
        elif request.kind is MsgKind.CLEAR_TCAM:
            self.flow_table.clear()
            self.history.append((self.env.now, "wipe", -1))
            if self.env._tracing:
                self.env.tracer.op_mark(
                    self.env, request.xid, "installed",
                    track=f"switch-{self.switch_id}", kind="clear")
            self._reply(SwitchAck(MsgKind.CLEAR_TCAM, self.switch_id, request.xid))
        elif request.kind is MsgKind.READ_TABLE:
            # READ_TABLE replies after the Fig. 4(a)-calibrated latency.
            entries = tuple(sorted(self.flow_table.values(),
                                   key=lambda e: e.entry_id))
            self.table_read_count += 1
            self.reconciliation_entries += len(entries)
            read_cost = table_read_time(len(entries))

            def respond(snapshot=entries, cost=read_cost, xid=request.xid):
                yield self.env.timeout(cost)
                self._reply(TableSnapshot(self.switch_id, xid, snapshot))

            self.env.process(respond(), name=f"{self.switch_id}-read")
        elif request.kind is MsgKind.ROLE_CHANGE:
            self.master = request.role
            self._reply(SwitchAck(MsgKind.ROLE_CHANGE, self.switch_id,
                                  request.xid))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown request kind {request.kind}")

    # -- dataplane queries ---------------------------------------------------------
    def lookup(self, dst: str) -> Optional[FlowEntry]:
        """Highest-priority entry matching ``dst`` (ties: lowest id)."""
        candidates = [e for e in self.flow_table.values() if e.dst == dst]
        if not candidates:
            return None
        return max(candidates, key=lambda e: (e.priority, -e.entry_id))

    def lookup_all(self, dst: str) -> list[FlowEntry]:
        """All entries matching ``dst``, best first (for local repair)."""
        candidates = [e for e in self.flow_table.values() if e.dst == dst]
        return sorted(candidates, key=lambda e: (-e.priority, e.entry_id))

    def table_snapshot(self) -> tuple[FlowEntry, ...]:
        """Instantaneous table contents (ground truth, no read cost)."""
        return tuple(sorted(self.flow_table.values(), key=lambda e: e.entry_id))
