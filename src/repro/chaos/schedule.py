"""Chaos schedules: serializable fault-event lists + a seeded sampler.

A :class:`ChaosSchedule` is the unit the search-and-shrink driver works
on: the workload description (topology, demands, background state,
settle time, horizon) plus a list of :class:`ChaosEvent`\\ s.  All times
are **absolute sim-times**; the driver settles the system for
``schedule.settle`` seconds before the event window opens, and runs
until ``schedule.horizon``.

Schedules round-trip losslessly through JSON (``to_json_obj`` /
``from_json_obj``) so shrunk repros can be committed and replayed, and
the sampler draws everything from named :class:`repro.sim.RandomStreams`
children so the same ``(seed, trial)`` always yields the same schedule.

Event kinds
-----------
``drop`` / ``duplicate`` / ``delay``
    One-shot channel faults consumed by the first message crossing
    ``(switch, direction)`` at or after ``at`` (see
    :mod:`repro.chaos.plane`).  ``delay`` doubles as reorder.
``partition``
    Switch control link blackholed for ``[at, until)`` (both request
    and reply directions; status announcements unaffected).
``fail_switch`` / ``recover_switch``
    Whole-switch failures (``mode`` complete/partial) and recoveries,
    executed by the driver's injector process.
``crash_component``
    Crash a named controller component at ``at``.
``trigger``
    Armed at ``at``: when a predicate over obs tracer events fires,
    run an action (see :mod:`repro.chaos.triggers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

from ..sim import RandomStreams
from .plane import DIRECTIONS

__all__ = ["ChaosEvent", "ChaosSchedule", "sample_schedule",
           "sample_update_schedule", "EVENT_KINDS", "SCHEDULE_VERSION"]

EVENT_KINDS = ("drop", "duplicate", "delay", "partition", "fail_switch",
               "recover_switch", "crash_component", "trigger")

#: Serialization version carried by every schedule JSON object.  Bump
#: when the event vocabulary or schedule fields change incompatibly;
#: :meth:`ChaosSchedule.from_json_obj` rejects versions it does not
#: speak rather than misinterpreting them.
SCHEDULE_VERSION = 1

#: Channel fault kinds handled by the fault plane.
CHANNEL_KINDS = ("drop", "duplicate", "delay", "partition")

#: Kinds executed by the driver's timed injector process.
TIMED_KINDS = ("fail_switch", "recover_switch", "crash_component")


@dataclass(frozen=True)
class ChaosEvent:
    """One fault event.  Only the fields relevant to ``kind`` are set."""

    kind: str
    at: float
    switch: str = ""
    direction: str = ""        # drop/duplicate/delay: c2s|s2c|status
    delay: float = 0.0         # duplicate/delay: extra seconds
    until: float = 0.0         # partition: interval end
    mode: str = "complete"     # fail_switch: complete|partial
    component: str = ""        # crash_component
    when: Optional[dict] = None    # trigger predicate
    action: Optional[dict] = None  # trigger action

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown chaos event kind {self.kind!r}")

    def describe(self) -> str:
        """One-line human-readable form (for reports and CLI output)."""
        if self.kind in ("drop", "duplicate", "delay"):
            extra = f" +{self.delay:.3f}s" if self.kind != "drop" else ""
            return (f"t={self.at:.3f} {self.kind} {self.switch}"
                    f"/{self.direction}{extra}")
        if self.kind == "partition":
            return (f"t={self.at:.3f} partition {self.switch} "
                    f"until {self.until:.3f}")
        if self.kind == "fail_switch":
            return f"t={self.at:.3f} fail_switch {self.switch} ({self.mode})"
        if self.kind == "recover_switch":
            return f"t={self.at:.3f} recover_switch {self.switch}"
        if self.kind == "crash_component":
            return f"t={self.at:.3f} crash_component {self.component}"
        return (f"t={self.at:.3f} trigger when={self.when!r} "
                f"action={self.action!r}")

    def to_json_obj(self) -> dict[str, Any]:
        """Minimal JSON form: only fields meaningful for this kind."""
        obj: dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.kind in ("drop", "duplicate", "delay"):
            obj["switch"] = self.switch
            obj["direction"] = self.direction
            if self.kind != "drop":
                obj["delay"] = self.delay
        elif self.kind == "partition":
            obj["switch"] = self.switch
            obj["until"] = self.until
        elif self.kind == "fail_switch":
            obj["switch"] = self.switch
            obj["mode"] = self.mode
        elif self.kind == "recover_switch":
            obj["switch"] = self.switch
        elif self.kind == "crash_component":
            obj["component"] = self.component
        else:  # trigger
            obj["when"] = self.when
            obj["action"] = self.action
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict[str, Any]) -> "ChaosEvent":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown chaos event fields {sorted(unknown)}")
        return cls(**obj)


@dataclass
class ChaosSchedule:
    """A fault schedule plus the workload it runs against."""

    seed: int
    events: list[ChaosEvent]
    topology: dict[str, Any] = field(
        default_factory=lambda: {"kind": "ring", "n": 6})
    demands: list[tuple[str, str]] = field(
        default_factory=lambda: [("s0", "s3"), ("s1", "s4")])
    background_entries: int = 6
    #: Sim-seconds the system converges before the event window opens.
    settle: float = 10.0
    #: Absolute sim-time the run ends (and the monitor stops).
    horizon: float = 45.0
    #: Optional consistent-update workload spec (scheduler-agnostic):
    #: ``{"demands": [<UpdateDemand json>, ...], "update_at": float,
    #: "restart_delay": float}``.  When set, the driver runs the update
    #: scenario (ZENITH + an update app) instead of the classic
    #: routing workload.
    update: Optional[dict[str, Any]] = None
    #: Schedule serialization version (see :data:`SCHEDULE_VERSION`).
    version: int = SCHEDULE_VERSION

    def with_events(self, events: Sequence[ChaosEvent]) -> "ChaosSchedule":
        """Same workload, different event list (used by the shrinker)."""
        return replace(self, events=sorted(events, key=_event_order))

    def to_json_obj(self) -> dict[str, Any]:
        obj = {
            "version": self.version,
            "seed": self.seed,
            "topology": dict(self.topology),
            "demands": [list(d) for d in self.demands],
            "background_entries": self.background_entries,
            "settle": self.settle,
            "horizon": self.horizon,
            "events": [e.to_json_obj() for e in self.events],
        }
        if self.update is not None:
            obj["update"] = dict(self.update)
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict[str, Any]) -> "ChaosSchedule":
        version = obj.get("version", SCHEDULE_VERSION)
        if version != SCHEDULE_VERSION:
            raise ValueError(
                f"unsupported chaos schedule version {version!r} "
                f"(this build speaks {SCHEDULE_VERSION})")
        return cls(
            seed=obj["seed"],
            events=[ChaosEvent.from_json_obj(e) for e in obj["events"]],
            topology=dict(obj["topology"]),
            demands=[tuple(d) for d in obj["demands"]],
            background_entries=obj.get("background_entries", 6),
            settle=obj.get("settle", 10.0),
            horizon=obj.get("horizon", 45.0),
            update=obj.get("update"),
            version=version,
        )


def _event_order(event: ChaosEvent):
    return (event.at, event.kind, event.switch, event.component)


def sample_schedule(seed: int, trial: int, *,
                    switches: Sequence[str],
                    components: Sequence[str],
                    topology: Optional[dict[str, Any]] = None,
                    demands: Optional[Sequence[tuple[str, str]]] = None,
                    background_entries: int = 6,
                    settle: float = 10.0,
                    active: float = 20.0,
                    cooldown: float = 15.0,
                    n_channel: int = 3,
                    channel_kinds: Sequence[str] = ("drop", "duplicate",
                                                    "delay"),
                    n_outages: int = 1,
                    n_crashes: int = 1,
                    n_triggers: int = 1,
                    mean_delay: float = 0.25,
                    mean_downtime: float = 2.0) -> ChaosSchedule:
    """Draw one seeded fault schedule for ``(seed, trial)``.

    Events land in the window ``[settle + 1, settle + 1 + active)``;
    the horizon leaves ``cooldown`` seconds after the window so both
    controllers get a fair chance to converge (or be caught out by the
    monitor).  Channel faults are drawn over the request/reply
    directions only — status drops would break the paper's
    eventually-reliable failure-detection assumption (A2) for *both*
    systems and teach us nothing.

    ``channel_kinds`` controls the channel-fault mix.  The default
    includes ``drop``, which steps *outside* the paper's reliable-FIFO
    channel assumption (P4): a dropped message can wedge ZENITH's
    retry-free pipeline while the PR baseline's deadlock sweeper
    coincidentally heals it.  Pass ``("duplicate", "delay")`` to stay
    within the paper's fault model (the chaos experiment does).
    """
    stream = RandomStreams(seed).child(f"chaos-trial-{trial}")
    start = settle + 1.0
    end = start + active
    events: list[ChaosEvent] = []

    for _ in range(n_channel):
        at = stream.uniform(start, end)
        kind = stream.choice(list(channel_kinds))
        switch = stream.choice(list(switches))
        direction = stream.choice(["c2s", "s2c"])
        delay = stream.expovariate(1.0 / mean_delay) if kind != "drop" else 0.0
        events.append(ChaosEvent(kind=kind, at=at, switch=switch,
                                 direction=direction, delay=delay))

    for _ in range(n_outages):
        at = stream.uniform(start, end)
        switch = stream.choice(list(switches))
        mode = "complete" if stream.random() < 0.7 else "partial"
        downtime = max(0.5, stream.expovariate(1.0 / mean_downtime))
        events.append(ChaosEvent(kind="fail_switch", at=at, switch=switch,
                                 mode=mode))
        events.append(ChaosEvent(kind="recover_switch", at=at + downtime,
                                 switch=switch))

    for _ in range(n_crashes):
        at = stream.uniform(start, end)
        component = stream.choice(list(components))
        events.append(ChaosEvent(kind="crash_component", at=at,
                                 component=component))

    for _ in range(n_triggers):
        at = stream.uniform(start, end)
        switch = stream.choice(list(switches))
        component = stream.choice(list(components))
        # "An OP for this switch was just sent, its ACK not yet
        # processed — crash a component inside that window."
        events.append(ChaosEvent(
            kind="trigger", at=at,
            when={"event": "op_mark", "stage": "sent", "switch": switch},
            action={"kind": "crash_component", "component": component}))

    schedule = ChaosSchedule(
        seed=seed, events=sorted(events, key=_event_order),
        background_entries=background_entries, settle=settle,
        horizon=end + cooldown)
    if topology is not None:
        schedule.topology = dict(topology)
    if demands is not None:
        schedule.demands = [tuple(d) for d in demands]
    return schedule


#: Default demands of the update scenario: the two reversal-gadget
#: transitions of :func:`repro.net.topology.update_gadget`.
UPDATE_GADGET_DEMANDS = (
    {"src": "a0", "dst": "a4",
     "old_path": ["a0", "a1", "a2", "a3", "a4"],
     "new_path": ["a0", "a1", "a3", "a2", "a4"]},
    {"src": "b0", "dst": "b4",
     "old_path": ["b0", "b1", "b2", "b3", "b4"],
     "new_path": ["b0", "b1", "b3", "b2", "b4"],
     "waypoint": "b2"},
)


def sample_update_schedule(seed: int, trial: int, *,
                           topology: Optional[dict[str, Any]] = None,
                           demands: Optional[Sequence[dict]] = None,
                           update_at: float = 13.0,
                           restart_delay: float = 0.75,
                           settle: float = 10.0,
                           active: float = 12.0,
                           cooldown: float = 20.0,
                           n_partitions: int = 1,
                           n_crashes: int = 1,
                           n_ack_delays: int = 1,
                           n_channel: int = 1,
                           mean_delay: float = 2.5,
                           partition_min: float = 2.0,
                           partition_max: float = 4.5,
                           app: str = "update-app") -> ChaosSchedule:
    """Draw one seeded *update-window* nemesis schedule.

    The scenario: an update app (consistent or naive — the schedule is
    scheduler-agnostic) installs baselines during ``settle`` and starts
    its old→new transition at ``update_at``.  All nemeses aim at the
    transition window:

    * **partition-mid-round** — a trigger on the app's
      ``update-round-start`` instant arms a control-link partition on a
      demand-path switch for a few seconds, eating the round's installs
      and acks mid-flight.
    * **crash-scheduler-between-rounds** — a trigger on
      ``update-round-done`` crashes the app component exactly at a
      round boundary; it restarts after ``restart_delay`` and must
      resume from durable state.
    * **delay-verification-acks** — a trigger on the next ``sent`` OP
      mark for a victim switch arms a one-shot ``s2c`` delay, holding
      back the installation ack the round's verification waits for.
    * plain one-shot ``c2s`` delays inside the window, stretching a
      rule install by seconds (the classic naive-update killer).

    Victim switches are drawn from the demand paths (every node that
    carries a rule).  ``demands`` are UpdateDemand JSON objects
    (default: the update-gadget pair).
    """
    stream = RandomStreams(seed).child(f"chaos-update-trial-{trial}")
    demand_objs = [dict(d) for d in (demands if demands is not None
                                     else UPDATE_GADGET_DEMANDS)]
    victims = sorted({
        hop
        for demand in demand_objs
        for path in (demand["old_path"], demand["new_path"])
        for hop in path[:-1]
    })
    window_end = update_at + active
    events: list[ChaosEvent] = []

    for _ in range(n_partitions):
        at = stream.uniform(settle + 0.5, update_at)
        switch = stream.choice(victims)
        duration = stream.uniform(partition_min, partition_max)
        events.append(ChaosEvent(
            kind="trigger", at=at,
            when={"event": "instant", "name": "update-round-start",
                  "track": app},
            action={"kind": "partition_switch", "switch": switch,
                    "duration": round(duration, 6)}))

    for _ in range(n_crashes):
        at = stream.uniform(settle + 0.5, update_at)
        events.append(ChaosEvent(
            kind="trigger", at=at,
            when={"event": "instant", "name": "update-round-done",
                  "track": app},
            action={"kind": "crash_component", "component": app}))

    for _ in range(n_ack_delays):
        at = stream.uniform(update_at, update_at + active / 2)
        switch = stream.choice(victims)
        delay = min(max(stream.expovariate(1.0 / mean_delay), 0.5), 6.0)
        events.append(ChaosEvent(
            kind="trigger", at=at,
            when={"event": "op_mark", "stage": "sent", "switch": switch},
            action={"kind": "delay_channel", "switch": switch,
                    "direction": "s2c", "delay": round(delay, 6)}))

    for _ in range(n_channel):
        at = stream.uniform(update_at, update_at + active / 2)
        switch = stream.choice(victims)
        delay = min(max(stream.expovariate(1.0 / mean_delay), 0.5), 6.0)
        events.append(ChaosEvent(kind="delay", at=at, switch=switch,
                                 direction="c2s", delay=delay))

    return ChaosSchedule(
        seed=seed, events=sorted(events, key=_event_order),
        topology=dict(topology) if topology is not None
        else {"kind": "update-gadget"},
        demands=[], background_entries=0, settle=settle,
        horizon=window_end + cooldown,
        update={"app": app, "update_at": update_at,
                "restart_delay": restart_delay, "demands": demand_objs})


def validate_directions(events: Sequence[ChaosEvent]) -> None:
    """Raise on channel events with bad directions (pre-arm check)."""
    for event in events:
        if event.kind in ("drop", "duplicate", "delay") \
                and event.direction not in DIRECTIONS:
            raise ValueError(
                f"{event.kind} event needs direction in {DIRECTIONS}, "
                f"got {event.direction!r}")
