"""repro.chaos — adversarial fault injection for the ZENITH reproduction.

Four pieces, layered on the existing simulation stack:

* :mod:`repro.chaos.plane` — a message-level **fault plane** the
  :class:`repro.net.SimSwitch` control-channel paths route through:
  seeded drop/duplicate/delay (delay doubles as reorder, since faulted
  deliveries bypass the per-direction FIFO clamp) of requests, replies
  and status announcements, plus timed link partitions.
* :mod:`repro.chaos.triggers` — **trigger-based injection**: crash a
  component or fail a switch the moment a predicate over obs tracer
  events fires (e.g. "worker sent install, ACK not yet processed"),
  built on the PR-2 tracer hook protocol.
* :mod:`repro.chaos.monitor` — an **online consistency monitor** that
  continuously checks control/data-plane invariants (certified intent
  present in the dataplane, no hidden entries, quiescence ⇒
  convergence, no orphaned OPs) and records first-violation sim-time.
* :mod:`repro.chaos.driver` / :mod:`repro.chaos.shrink` — a
  **search-and-shrink** loop (``zenith-repro chaos``) that samples
  seeded fault schedules, runs ZENITH and the PR baseline under each,
  and delta-debugs violating schedules to minimal replayable JSON
  artifacts (schema ``repro.chaos/v1``, see :mod:`repro.chaos.validate`).
"""

from .driver import (
    CONTROLLERS,
    UPDATE_MONITOR_CONFIG,
    UPDATE_SCHEDULERS,
    ChaosReport,
    dump_artifact,
    load_artifact,
    replay,
    run_schedule,
    search,
)
from .monitor import ConsistencyMonitor, MonitorConfig, Violation
from .plane import FaultPlane
from .schedule import (
    SCHEDULE_VERSION,
    ChaosEvent,
    ChaosSchedule,
    sample_schedule,
    sample_update_schedule,
)
from .shrink import shrink_events
from .triggers import ChaosActions, TriggerTracer

__all__ = [
    "CONTROLLERS",
    "SCHEDULE_VERSION",
    "UPDATE_MONITOR_CONFIG",
    "UPDATE_SCHEDULERS",
    "ChaosActions",
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "ConsistencyMonitor",
    "FaultPlane",
    "MonitorConfig",
    "TriggerTracer",
    "Violation",
    "dump_artifact",
    "load_artifact",
    "replay",
    "run_schedule",
    "sample_schedule",
    "sample_update_schedule",
    "search",
    "shrink_events",
]
