"""``repro.chaos/v1`` violation-artifact schema validation (CI gate).

``python -m repro.chaos.validate artifact.json [--require-shrunk]``
checks a chaos artifact written by :func:`repro.chaos.search` /
:func:`repro.chaos.dump_artifact`.

Schema ``repro.chaos/v1`` (sibling of ``repro.campaign/v1`` and the
obs trace schema)::

    {
      "schema": "repro.chaos/v1",
      "seed": int,                      # search seed
      "trials": int,                    # schedules sampled
      "scenario": "classic"|"update",   # optional (absent = classic)
      "target": str,                    # controller hunted for violations
      "reference": str,                 # controller that must stay clean
      "runs": [                         # one per trial
        {
          "trial": int,
          "events": [<event>, ...],     # the sampled schedule's events
          "interesting": bool,          # target violated ∧ reference clean
          "verdicts": {<controller>: <verdict>, ...}
        }, ...
      ],
      "interesting_trials": [int, ...],
      "shrunk": null | {
        "from_trial": int,
        "tests_run": int,
        "budget_exhausted": bool,
        "events_before": int,
        "events_after": int,
        "schedule": {                   # full replayable ChaosSchedule
          "version": int, "seed": int, "topology": {...},
          "demands": [[src, dst], ...], "background_entries": int,
          "settle": float, "horizon": float, "events": [<event>, ...],
          "update": {...}               # present for update-scenario runs
        },
        "verdicts": {<controller>: <verdict>, ...}
      }
    }

    <verdict> = {
      "violated": bool,
      "first_violation_at": null | float,   # sim-time (min over 'since')
      "violation_count": int,
      "violations": [ {"invariant": str, "subject": str, "since": float,
                       "declared_at": float, "detail": {...}}, ... ],
      "fault_counters": {"<kind>.<direction>": int, ...},
      "fired_triggers": [...],
      "action_noops": int
    }

    <event> = {"kind": one of drop|duplicate|delay|partition|fail_switch
               |recover_switch|crash_component|trigger, "at": float,
               + kind-specific fields (see repro.chaos.schedule)}
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .schedule import EVENT_KINDS, ChaosEvent, ChaosSchedule

__all__ = ["validate_artifact", "main"]

_TOP_KEYS = ("schema", "seed", "trials", "target", "reference", "runs",
             "interesting_trials", "shrunk")
_VERDICT_KEYS = ("violated", "first_violation_at", "violation_count",
                 "violations", "fault_counters", "fired_triggers",
                 "action_noops")


def validate_artifact(doc: Any, require_shrunk: bool = False) -> list[str]:
    """Return a list of schema problems (empty when valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != "repro.chaos/v1":
        problems.append(f"schema must be 'repro.chaos/v1', "
                        f"got {doc.get('schema')!r}")
    for key in _TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if not isinstance(doc["seed"], int):
        problems.append("'seed' must be an int")
    runs = doc["runs"]
    if not isinstance(runs, list):
        return problems + ["'runs' must be a list"]
    if isinstance(doc["trials"], int) and len(runs) != doc["trials"]:
        problems.append(
            f"'trials' is {doc['trials']} but 'runs' has {len(runs)}")
    interesting_from_runs = []
    for run in runs:
        where = f"runs[{run.get('trial', '?')}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("trial", "events", "interesting", "verdicts"):
            if key not in run:
                problems.append(f"{where}: missing {key!r}")
        problems.extend(_check_events(run.get("events", []), where))
        for name, verdict in sorted(run.get("verdicts", {}).items()):
            problems.extend(_check_verdict(verdict, f"{where}.{name}"))
        if run.get("interesting"):
            interesting_from_runs.append(run.get("trial"))
    if sorted(doc["interesting_trials"]) != sorted(interesting_from_runs):
        problems.append(
            f"'interesting_trials' {doc['interesting_trials']} does not "
            f"match runs flagged interesting {interesting_from_runs}")
    shrunk = doc["shrunk"]
    if require_shrunk and shrunk is None:
        problems.append("'shrunk' is null but --require-shrunk was given")
    if shrunk is not None:
        problems.extend(_check_shrunk(shrunk, doc))
    return problems


def _check_events(events: Any, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(events, list):
        return [f"{where}: 'events' must be a list"]
    last_at = float("-inf")
    for index, event in enumerate(events):
        spot = f"{where}.events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{spot}: not an object")
            continue
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{spot}: unknown kind {kind!r}")
            continue
        at = event.get("at")
        if not isinstance(at, (int, float)):
            problems.append(f"{spot}: missing/non-numeric 'at'")
            continue
        if at < last_at:
            problems.append(f"{spot}: events not sorted by 'at'")
        last_at = at
        try:
            ChaosEvent.from_json_obj(event)
        except (TypeError, ValueError) as exc:
            problems.append(f"{spot}: {exc}")
    return problems


def _check_verdict(verdict: Any, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(verdict, dict):
        return [f"{where}: verdict is not an object"]
    for key in _VERDICT_KEYS:
        if key not in verdict:
            problems.append(f"{where}: missing {key!r}")
    if problems:
        return problems
    violated = verdict["violated"]
    first = verdict["first_violation_at"]
    if violated and first is None:
        problems.append(f"{where}: violated but first_violation_at is null")
    if not violated and (first is not None or verdict["violation_count"]):
        problems.append(f"{where}: clean verdict carries violation data")
    for index, violation in enumerate(verdict["violations"]):
        spot = f"{where}.violations[{index}]"
        if not isinstance(violation, dict):
            problems.append(f"{spot}: not an object")
            continue
        for key in ("invariant", "subject", "since", "declared_at"):
            if key not in violation:
                problems.append(f"{spot}: missing {key!r}")
        since = violation.get("since")
        declared = violation.get("declared_at")
        if isinstance(since, (int, float)) \
                and isinstance(declared, (int, float)) and declared < since:
            problems.append(f"{spot}: declared_at before since")
    return problems


def _check_shrunk(shrunk: Any, doc: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(shrunk, dict):
        return ["'shrunk' must be null or an object"]
    for key in ("from_trial", "tests_run", "budget_exhausted",
                "events_before", "events_after", "schedule", "verdicts"):
        if key not in shrunk:
            problems.append(f"shrunk: missing {key!r}")
    if problems:
        return problems
    if shrunk["from_trial"] not in doc.get("interesting_trials", []):
        problems.append("shrunk.from_trial is not an interesting trial")
    # The shrunk schedule is what CI replays — its events get the same
    # per-event scrutiny (unknown kinds, ordering, field shapes) as the
    # trial runs', not just a parse attempt.
    if isinstance(shrunk["schedule"], dict):
        problems.extend(_check_events(
            shrunk["schedule"].get("events", []), "shrunk.schedule"))
    try:
        schedule = ChaosSchedule.from_json_obj(shrunk["schedule"])
    except (KeyError, TypeError, ValueError) as exc:
        return problems + [f"shrunk.schedule does not parse: {exc}"]
    if len(schedule.events) != shrunk["events_after"]:
        problems.append(
            f"shrunk.events_after is {shrunk['events_after']} but the "
            f"schedule has {len(schedule.events)} events")
    if shrunk["events_after"] > shrunk["events_before"]:
        problems.append("shrunk grew: events_after > events_before")
    target = doc.get("target")
    reference = doc.get("reference")
    verdicts = shrunk["verdicts"]
    for name, verdict in sorted(verdicts.items()):
        problems.extend(_check_verdict(verdict, f"shrunk.{name}"))
    if target in verdicts and not verdicts[target].get("violated"):
        problems.append(f"shrunk: target {target!r} verdict is clean")
    if reference in verdicts and verdicts[reference].get("violated"):
        problems.append(f"shrunk: reference {reference!r} verdict violated")
    return problems


def main(argv=None) -> int:
    """Validate an artifact file; exit 0 when clean, 1 otherwise."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.validate",
        description="Validate a repro.chaos/v1 violation artifact")
    parser.add_argument("artifact", help="artifact file (.json)")
    parser.add_argument("--require-shrunk", action="store_true",
                        help="require a shrunk schedule to be present")
    args = parser.parse_args(argv)

    with open(args.artifact, encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_artifact(doc, require_shrunk=args.require_shrunk)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    shrunk = doc.get("shrunk")
    summary = "no shrunk schedule" if shrunk is None else (
        f"shrunk {shrunk['events_before']}→{shrunk['events_after']} events")
    print(f"OK: {args.artifact} ({len(doc['runs'])} trials, "
          f"{len(doc['interesting_trials'])} interesting, {summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
