"""Message-level fault plane for switch control channels.

The :class:`~repro.net.switch.SimSwitch` send/reply/announce paths ask
the plane how to deliver each message crossing a channel.  The plane
answers with a list of ``(extra_delay, fifo)`` deliveries:

* ``[]`` — drop the message;
* ``[(0.0, True)]`` — normal delivery (the default, and the only
  answer when no fault is armed, so un-faulted channels behave exactly
  as before);
* ``[(0.0, True), (d, False)]`` — duplicate: the original plus a copy
  delayed by ``d``;
* ``[(d, False)]`` — delay by ``d``.

``fifo=True`` deliveries go through the per-direction monotone-delivery
clamp that models the paper's reliable-FIFO channel assumption (P4);
``fifo=False`` deliveries bypass it *and do not advance the watermark*,
which is what makes an extra delay double as a **reorder**: the delayed
message can arrive after messages sent later.

Faults are armed ahead of time from a :class:`~repro.chaos.schedule`
(drop/duplicate/delay events, each with an arm time) and consumed
one-shot, in arm-time order, by the first message that crosses the
channel at or after the arm time.  Partitions are time intervals during
which a switch's request and reply channels drop everything (status
announcements still get through — keepalive loss is modeled by
``fail_switch``, not by the plane, to preserve the paper's
eventually-reliable failure detection assumption A2).

The plane consumes **no randomness**: all sampling happens at
schedule-generation time, so a schedule replays byte-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schedule import ChaosEvent

__all__ = ["FaultPlane", "DIRECTIONS"]

#: Channel directions the plane understands: controller→switch
#: requests, switch→controller replies, and status announcements.
DIRECTIONS = ("c2s", "s2c", "status")

#: Fault kinds that arm a one-shot channel fault.
_CHANNEL_KINDS = ("drop", "duplicate", "delay")

NORMAL = ((0.0, True),)


class FaultPlane:
    """Routes control-channel deliveries through armed faults."""

    def __init__(self) -> None:
        #: (switch, direction) -> armed one-shot faults, arm-time order.
        self._armed: dict[tuple[str, str], list["ChaosEvent"]] = {}
        #: switch -> [(start, end)] partition intervals.
        self._partitions: dict[str, list[tuple[float, float]]] = {}
        #: Whether any fault is armed; checked on the switch hot path so
        #: fault-free runs stay on the original code path.
        self.active = False
        #: Counters by ``"<kind>.<direction>"`` (collected by the
        #: driver into the chaos report).
        self.counters: dict[str, int] = {}
        #: Chronological application log: (sim_time, kind, switch,
        #: direction) — used by reports and tests.
        self.applied: list[tuple[float, str, str, str]] = []

    # -- arming ----------------------------------------------------------------
    def arm(self, event: "ChaosEvent") -> None:
        """Arm one schedule event (channel fault or partition)."""
        if event.kind in _CHANNEL_KINDS:
            if event.direction not in DIRECTIONS:
                raise ValueError(
                    f"bad direction {event.direction!r} for {event.kind}")
            key = (event.switch, event.direction)
            queue = self._armed.setdefault(key, [])
            queue.append(event)
            queue.sort(key=lambda e: e.at)
        elif event.kind == "partition":
            if event.until <= event.at:
                raise ValueError("partition needs until > at")
            self._partitions.setdefault(event.switch, []).append(
                (event.at, event.until))
        else:
            raise ValueError(f"fault plane cannot arm {event.kind!r}")
        self.active = True

    # -- queries ---------------------------------------------------------------
    def partitioned(self, switch: str, now: float) -> bool:
        """Whether ``switch``'s control link is partitioned at ``now``."""
        for start, end in self._partitions.get(switch, ()):
            if start <= now < end:
                return True
        return False

    def deliveries(self, switch: str, direction: str,
                   now: float) -> tuple[tuple[float, bool], ...]:
        """Delivery plan for one message crossing a channel at ``now``."""
        if direction != "status" and self.partitioned(switch, now):
            self._count("partition_drop", switch, direction, now)
            return ()
        queue = self._armed.get((switch, direction))
        if queue and queue[0].at <= now:
            fault = queue.pop(0)
            self._count(fault.kind, switch, direction, now)
            if fault.kind == "drop":
                return ()
            if fault.kind == "duplicate":
                return ((0.0, True), (fault.delay, False))
            return ((fault.delay, False),)  # delay (⇒ possible reorder)
        return NORMAL

    def pending(self) -> int:
        """Armed channel faults not yet consumed."""
        return sum(len(q) for q in self._armed.values())

    def _count(self, kind: str, switch: str, direction: str,
               now: float) -> None:
        key = f"{kind}.{direction}"
        self.counters[key] = self.counters.get(key, 0) + 1
        self.applied.append((now, kind, switch, direction))
