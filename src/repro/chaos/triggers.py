"""Trigger-based fault injection on top of the obs tracer protocol.

Time-scheduled injection can't hit races: "crash the worker while an
install is in flight" needs sub-millisecond timing that depends on the
run itself.  :class:`TriggerTracer` subclasses the PR-2
:class:`repro.obs.Tracer` hook protocol, so it sees the exact same
instrumentation stream the trace exporter does — OP lifecycle marks
(``scheduler → ... → sent → installed → acked → done``) and instants —
and fires an action at the very hook call where a predicate first
matches (e.g. "worker sent install to s2, ACK not yet processed").

Install it with ``env.set_tracer(TriggerTracer(actions, inner=...))``;
it forwards every hook to an optional inner tracer, so triggers compose
with trace recording.  Tracing itself never perturbs the simulation
(PR-2 invariant) — only the deliberate trigger *actions* do.

Predicates (the ``when`` dict of a ``trigger`` chaos event):

``{"event": "op_mark", "stage": ..., "switch": ..., "op_id": ...,
"track": ...}``
    matches an OP lifecycle mark; omitted keys match anything, and
    ``track`` is a prefix match.
``{"event": "instant", "name": ..., "track": ...}``
    matches an instant annotation by name prefix / track prefix.

Actions (the ``action`` dict): ``{"kind": "crash_component",
"component": c}``, ``{"kind": "fail_switch", "switch": s, "mode":
"complete"|"partial"}``, ``{"kind": "recover_switch", "switch": s}``,
``{"kind": "partition_switch", "switch": s, "duration": d}`` (arm a
control-link partition ``[now, now+d)`` on the fault plane), and
``{"kind": "delay_channel", "switch": s, "direction": dir, "delay":
d}`` (arm a one-shot delay consumed by the next message crossing the
channel — aimed at ``s2c`` it delays a verification ack).  Actions
execute synchronously inside the hook, which is exactly the in-flight
window the predicate identified.
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.switch import FailureMode
from ..obs import Tracer

__all__ = ["ChaosActions", "TriggerTracer"]


class ChaosActions:
    """Executes chaos actions against a built system, with counters.

    Shared by the driver's timed injector and by triggers, so every
    fault application is counted the same way.  Already-down targets
    are counted no-ops (see :meth:`ComponentHost.crash` /
    ``SwitchFailureInjector``).
    """

    def __init__(self, env, network, controller, plane=None,
                 extra_hosts=None):
        self.env = env
        self.network = network
        self.controller = controller
        #: Optional :class:`repro.chaos.FaultPlane` for channel-level
        #: actions (partition_switch / delay_channel).
        self.plane = plane
        #: Extra crashable :class:`ComponentHost`\ s by name — app hosts
        #: live outside ``controller.hosts`` but update nemeses crash
        #: them too.
        self.extra_hosts = dict(extra_hosts or {})
        #: Chronological log of (sim_time, description, applied?).
        self.log: list[tuple[float, str, bool]] = []
        self.noops = 0

    def execute(self, action: dict[str, Any]) -> bool:
        """Run one action dict; returns whether it had an effect."""
        kind = action["kind"]
        if kind == "crash_component":
            name = action["component"]
            if name in self.extra_hosts:
                applied = bool(self.extra_hosts[name].crash())
            else:
                applied = bool(self.controller.crash_component(name))
            label = f"crash_component {name}"
        elif kind == "fail_switch":
            switch = self.network[action["switch"]]
            applied = switch.is_healthy
            if applied:
                mode = FailureMode(action.get("mode", "complete"))
                switch.fail(mode)
            label = f"fail_switch {action['switch']}"
        elif kind == "recover_switch":
            switch = self.network[action["switch"]]
            applied = not switch.is_healthy
            if applied:
                switch.recover()
            label = f"recover_switch {action['switch']}"
        elif kind == "partition_switch":
            from .schedule import ChaosEvent

            duration = float(action.get("duration", 2.0))
            applied = self.plane is not None
            if applied:
                self.plane.arm(ChaosEvent(
                    kind="partition", at=self.env.now,
                    switch=action["switch"],
                    until=self.env.now + duration))
            label = (f"partition_switch {action['switch']} "
                     f"+{duration:.3f}s")
        elif kind == "delay_channel":
            from .schedule import ChaosEvent

            applied = self.plane is not None
            if applied:
                self.plane.arm(ChaosEvent(
                    kind="delay", at=self.env.now,
                    switch=action["switch"],
                    direction=action.get("direction", "s2c"),
                    delay=float(action.get("delay", 1.0))))
            label = (f"delay_channel {action['switch']}"
                     f"/{action.get('direction', 's2c')}")
        else:
            raise ValueError(f"unknown chaos action kind {kind!r}")
        if not applied:
            self.noops += 1
        self.log.append((self.env.now, label, applied))
        return applied


class _ArmedTrigger:
    __slots__ = ("index", "at", "when", "action")

    def __init__(self, index: int, at: float, when: dict, action: dict):
        self.index = index
        self.at = at
        self.when = when
        self.action = action


class TriggerTracer(Tracer):
    """Tracer that fires chaos actions when event predicates match."""

    enabled = True

    def __init__(self, actions: ChaosActions,
                 inner: Optional[Tracer] = None):
        self.actions = actions
        self.inner = inner if (inner is not None and inner.enabled) else None
        self._armed: list[_ArmedTrigger] = []
        #: Fired triggers: {"at", "index", "when", "action", "applied"}.
        self.fired: list[dict[str, Any]] = []

    def arm(self, index: int, at: float, when: dict, action: dict) -> None:
        """Arm one trigger; it fires at most once, at or after ``at``."""
        if when.get("event") not in ("op_mark", "instant"):
            raise ValueError(f"unsupported trigger event {when!r}")
        if action.get("kind") not in ("crash_component", "fail_switch",
                                      "recover_switch", "partition_switch",
                                      "delay_channel"):
            raise ValueError(f"unsupported trigger action {action!r}")
        self._armed.append(_ArmedTrigger(index, at, when, action))

    @property
    def pending(self) -> int:
        """Armed triggers that have not fired."""
        return len(self._armed)

    # -- predicate evaluation ----------------------------------------------
    def _fire_matching(self, env, event: str, fields: dict) -> None:
        if not self._armed:
            return
        now = env.now
        remaining = []
        for trigger in self._armed:
            if now >= trigger.at and _matches(trigger.when, event, fields):
                applied = self.actions.execute(trigger.action)
                self.fired.append({
                    "at": now, "index": trigger.index,
                    "when": trigger.when, "action": trigger.action,
                    "applied": applied,
                })
            else:
                remaining.append(trigger)
        self._armed = remaining

    # -- forwarded hooks ----------------------------------------------------
    def instant(self, env, name, track="sim", ts=None, **args):
        if self.inner is not None:
            self.inner.instant(env, name, track=track, ts=ts, **args)
        self._fire_matching(env, "instant",
                            {"name": name, "track": track, **args})

    def op_mark(self, env, op_id, stage, track, ts=None, **args):
        if self.inner is not None:
            self.inner.op_mark(env, op_id, stage, track, ts=ts, **args)
        self._fire_matching(env, "op_mark",
                            {"op_id": op_id, "stage": stage, "track": track,
                             **args})

    def complete(self, env, name, track, start, duration, **args):
        if self.inner is not None:
            self.inner.complete(env, name, track, start, duration, **args)

    def counter(self, env, name, values, ts=None):
        if self.inner is not None:
            self.inner.counter(env, name, values, ts=ts)

    def event_scheduled(self, env, event, when, priority):
        if self.inner is not None:
            self.inner.event_scheduled(env, event, when, priority)

    def event_fired(self, env, event):
        if self.inner is not None:
            self.inner.event_fired(env, event)

    def clock_advanced(self, env, old, new):
        if self.inner is not None:
            self.inner.clock_advanced(env, old, new)

    def process_started(self, env, process):
        if self.inner is not None:
            self.inner.process_started(env, process)

    def process_finished(self, env, process):
        if self.inner is not None:
            self.inner.process_finished(env, process)

    def process_crashed(self, env, process, exc):
        if self.inner is not None:
            self.inner.process_crashed(env, process, exc)


def _matches(when: dict, event: str, fields: dict) -> bool:
    if when.get("event") != event:
        return False
    if event == "op_mark":
        if "stage" in when and fields.get("stage") != when["stage"]:
            return False
        if "switch" in when and fields.get("switch") != when["switch"]:
            return False
        if "op_id" in when and fields.get("op_id") != when["op_id"]:
            return False
        if "track" in when and \
                not str(fields.get("track", "")).startswith(when["track"]):
            return False
        return True
    # instant
    if "name" in when and \
            not str(fields.get("name", "")).startswith(when["name"]):
        return False
    if "track" in when and \
            not str(fields.get("track", "")).startswith(when["track"]):
        return False
    return True
