"""Online control/data-plane consistency monitor.

The experiments so far checked consistency only *at the end* of a run;
a reconciliation-based controller that is wrong for 29 of every 30
seconds can still pass such a check.  :class:`ConsistencyMonitor` polls
the ground truth (:meth:`SimSwitch.table_snapshot` via
``Network.routing_state()`` — cost-free, consumes no sim randomness)
continuously and records the **first sim-time** each invariant is
violated.

Invariants (all restricted to switches that are actually healthy —
the paper's ◇□ conditions only bind outside failure windows):

``certified-not-installed``
    An entry of a NIB-certified-DONE DAG (or of the protected standing
    intent) is absent from the owning switch's flow table.  This is the
    headline §3.5 violation: the controller told applications the state
    exists, and it does not.
``hidden-entry``
    An entry present in the dataplane but absent from the controller's
    routing view R_c — the Fig. 2 stale-entry pathology.
``orphaned-op``
    An OP stuck SCHEDULED/IN_FLIGHT against a healthy switch for longer
    than ``orphan_timeout`` — the pipeline lost it.
``quiescence-divergence``
    The controller is fully quiescent (no active DAGs, no in-flight
    OPs, empty switch queues, every switch healthy) yet its view still
    disagrees with the dataplane.  Quiescence means nothing is left
    that could fix it except a future reconciliation sweep.

When an ``update_tracker`` (see :class:`repro.apps.update`) is
attached, three *data-plane update* invariants are evaluated per
declared demand, from packet traces (``Network.trace_detailed``):

``forwarding-loop``
    A traced packet for the demand cycles — the union of old/new rules
    actually installed contains a reachable forwarding loop.
``waypoint-bypass``
    A delivered trace skips the demand's declared waypoint.
``per-packet-inconsistency``
    A delivered trace mixes old-generation and new-generation rules —
    no single rule version explains the packet's path (Reitblatt
    et al.'s per-packet consistency).

A condition only becomes a :class:`Violation` after persisting for
``grace`` seconds (default 3 s: an order of magnitude above ZENITH's
observed convergence after faults, and well below the PR baseline's
30 s reconciliation period), which keeps transient in-flux states from
counting.  ``MonitorConfig.grace_overrides`` tightens or loosens the
window per invariant — the update invariants run with grace 0 (they
must hold at every instant).  Each violation records both ``since``
(when the condition began — the reported first-violation time) and
``declared_at``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.types import DagStatus, OpStatus

__all__ = ["ConsistencyMonitor", "MonitorConfig", "Violation"]


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables for the online monitor."""

    #: Polling period (sim seconds).
    period: float = 0.25
    #: How long a condition must persist before it is a violation.
    grace: float = 3.0
    #: Age at which a SCHEDULED/IN_FLIGHT OP on a healthy switch is
    #: orphaned.  Above the PR baseline's 5 s deadlock timeout, so its
    #: sweeper gets the chance to self-heal before we call it lost.
    orphan_timeout: float = 12.0
    #: Cap on recorded violations (the first ones are the story).
    max_violations: int = 50
    #: Per-invariant grace windows overriding ``grace``, as a tuple of
    #: (invariant, seconds) pairs (kept hashable so the config stays
    #: frozen).  One 3 s window is too coarse once invariants differ in
    #: kind: loop freedom must hold at *every instant* (grace 0), while
    #: view-consistency invariants legitimately lag by a fault window.
    grace_overrides: tuple[tuple[str, float], ...] = ()

    def grace_for(self, invariant: str) -> float:
        """The grace window for one invariant (override or default)."""
        for name, seconds in self.grace_overrides:
            if name == invariant:
                return seconds
        return self.grace


@dataclass(frozen=True)
class Violation:
    """One declared invariant violation."""

    invariant: str
    #: Human-readable subject, e.g. ``"s2/entry 17 (dag 3)"``.
    subject: str
    #: Sim-time the violating condition first held (reported time).
    since: float
    #: Sim-time it outlived the grace window and was declared.
    declared_at: float
    detail: dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "since": round(self.since, 6),
            "declared_at": round(self.declared_at, 6),
            "detail": dict(self.detail),
        }


class ConsistencyMonitor:
    """Polls invariants against a controller + network pair."""

    def __init__(self, env, controller, network,
                 config: Optional[MonitorConfig] = None,
                 start_at: float = 0.0, update_tracker=None):
        self.env = env
        self.controller = controller
        self.network = network
        self.config = config or MonitorConfig()
        self.start_at = start_at
        #: Optional :class:`repro.apps.update.UpdateTracker`; when set,
        #: the update-window invariants below are evaluated too.
        self.update_tracker = update_tracker
        self.violations: list[Violation] = []
        #: condition key -> (first_seen, detail) for conditions inside
        #: their grace window.
        self._pending: dict[tuple, tuple[float, dict]] = {}
        #: condition keys already declared (no re-reporting while the
        #: same condition persists).
        self._declared: set[tuple] = set()
        self._proc = env.process(self._run(), name="chaos-monitor")

    # -- results ----------------------------------------------------------------
    @property
    def violated(self) -> bool:
        return bool(self.violations)

    def first_violation_at(self) -> Optional[float]:
        """Earliest ``since`` over declared violations (None if clean)."""
        if not self.violations:
            return None
        return min(v.since for v in self.violations)

    # -- polling loop -----------------------------------------------------------
    def _run(self):
        if self.start_at > self.env.now:
            yield self.env.timeout(self.start_at - self.env.now)
        while True:
            self._poll()
            yield self.env.timeout(self.config.period)

    def _poll(self) -> None:
        now = self.env.now
        current = self._current_conditions()
        # Conditions that cleared leave the pipeline entirely; if they
        # come back, the clock (and a possible second violation) restart.
        for key in list(self._pending):
            if key not in current:
                del self._pending[key]
        self._declared &= set(current)
        for key, detail in current.items():
            if key in self._declared:
                continue
            first_seen, first_detail = self._pending.setdefault(
                key, (now, detail))
            if now - first_seen >= self.config.grace_for(key[0]):
                self._declared.add(key)
                del self._pending[key]
                if len(self.violations) < self.config.max_violations:
                    self.violations.append(Violation(
                        invariant=key[0], subject=key[1] if len(key) > 1
                        else "", since=first_seen, declared_at=now,
                        detail=first_detail))

    # -- invariant evaluation -----------------------------------------------------
    def _current_conditions(self) -> dict[tuple, dict]:
        """All currently-failing conditions, keyed for persistence."""
        conditions: dict[tuple, dict] = {}
        state = self.controller.state
        actual = self.network.routing_state()
        healthy = {sid for sid, sw in self.network.switches.items()
                   if sw.is_healthy}

        # certified-not-installed: DONE-DAG + protected intent entries
        # must be present on healthy switches.
        for dag_id, status in state.dag_status.items():
            if status is not DagStatus.DONE:
                continue
            dag = state.dag_table.get(dag_id)
            if dag is None:
                continue
            # Sets of (switch, entry) iterate in hash order, which
            # varies across interpreter invocations (PYTHONHASHSEED);
            # sort so violation order — and the artifact — is
            # byte-stable.
            for switch, entry_id in sorted(dag.install_entries()):
                if switch in healthy and \
                        entry_id not in actual.get(switch, frozenset()):
                    key = ("certified-not-installed",
                           f"{switch}/entry {entry_id} (dag {dag_id})")
                    conditions[key] = {"switch": switch,
                                       "entry": entry_id, "dag": dag_id}
        for switch, entry_id in sorted(state.protected_entries):
            if switch in healthy and \
                    entry_id not in actual.get(switch, frozenset()):
                key = ("certified-not-installed",
                       f"{switch}/entry {entry_id} (protected)")
                conditions[key] = {"switch": switch, "entry": entry_id,
                                   "dag": None}

        # hidden-entry: dataplane entries the controller's view lacks.
        believed = state.routing_view_snapshot()
        for switch in sorted(healthy):
            missing = actual.get(switch, frozenset()) \
                - believed.get(switch, frozenset())
            for entry_id in sorted(missing):
                key = ("hidden-entry", f"{switch}/entry {entry_id}")
                conditions[key] = {"switch": switch, "entry": entry_id}

        # orphaned-op: pending OPs against healthy switches, too old.
        now = self.env.now
        orphan_after = self.config.orphan_timeout
        for op_id, status in state.op_status.items():
            if status not in (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT):
                continue
            op = state.op_table.get(op_id)
            if op is None or op.switch not in healthy:
                continue
            age = now - state.op_status_at.get(op_id, now)
            if age > orphan_after:
                key = ("orphaned-op", f"op {op_id} -> {op.switch}")
                conditions[key] = {"op": op_id, "switch": op.switch,
                                   "status": status.value,
                                   "age": round(age, 6)}

        # quiescence-divergence: nothing left in flight, yet the view
        # still disagrees with the dataplane.
        if self._quiescent(state, healthy) \
                and not self.controller.view_matches_dataplane():
            conditions[("quiescence-divergence", "view != dataplane")] = {}

        if self.update_tracker is not None:
            self._update_conditions(conditions)
        return conditions

    def _update_conditions(self, conditions: dict) -> None:
        """Data-plane update invariants (loop/waypoint/per-packet).

        A packet trace is taken per declared demand; the demand's
        declared claims decide which properties bind.  Loop freedom and
        waypoint enforcement are properties of the forwarding graph at
        this instant; per-packet consistency additionally consults the
        tracker's old/new generation classification of the entries the
        trace used (Reitblatt et al.: a single packet must see exactly
        one rule generation end to end).
        """
        from ..net.dataplane import PathStatus

        tracker = self.update_tracker
        for demand_index, demand in enumerate(tracker.demands):
            trace = self.network.trace_detailed(demand.src, demand.dst)
            subject = f"{demand.src}->{demand.dst}"
            claims = demand.claims
            if trace.status is PathStatus.LOOP:
                if "forwarding-loop" in claims:
                    conditions[("forwarding-loop", subject)] = {
                        "hops": list(trace.hops)}
                # A looping trace never delivers; the remaining
                # properties are unjudgeable this instant.
                continue
            if trace.status is not PathStatus.DELIVERED:
                continue
            if "waypoint-bypass" in claims \
                    and demand.waypoint not in trace.hops:
                conditions[("waypoint-bypass", subject)] = {
                    "waypoint": demand.waypoint, "hops": list(trace.hops)}
            if "per-packet-inconsistency" in claims:
                generations = {}
                for entry_id in trace.entry_ids():
                    generation = tracker.classify(demand_index, entry_id)
                    if generation is not None:
                        generations.setdefault(generation, []).append(
                            entry_id)
                if "old" in generations and "new" in generations:
                    conditions[("per-packet-inconsistency", subject)] = {
                        "hops": list(trace.hops),
                        "old_entries": sorted(generations["old"]),
                        "new_entries": sorted(generations["new"])}

    def _quiescent(self, state, healthy) -> bool:
        if len(healthy) != len(self.network.switches):
            return False
        if state.active_dags():
            return False
        for _op_id, status in state.op_status.items():
            if status in (OpStatus.SCHEDULED, OpStatus.IN_FLIGHT):
                return False
        for switch_id in healthy:
            if len(state.to_switch_queue(switch_id)):
                return False
            switch = self.network[switch_id]
            if len(switch.in_queue) or len(switch.out_queue):
                return False
        return True
