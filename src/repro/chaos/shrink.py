"""Delta-debugging (ddmin) of failing chaos schedules.

Given a schedule whose event list makes an *interest predicate* true
(for the headline search: "the PR baseline violates an invariant AND
ZENITH stays clean"), :func:`shrink_events` finds a 1-minimal event
sublist — removing any single remaining event makes the predicate
false.  This is Zeller's classic ddmin over the event list, with a
bounded test budget since every probe is a full (deterministic)
simulation pair.

The predicate receives an event sublist in original order; probes are
memoized on the sublist's identity so re-visited subsets are free.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .schedule import ChaosEvent

__all__ = ["shrink_events", "ShrinkResult"]


class ShrinkResult:
    """Outcome of a shrink run."""

    def __init__(self, events: list[ChaosEvent], tests_run: int,
                 budget_exhausted: bool):
        self.events = events
        self.tests_run = tests_run
        self.budget_exhausted = budget_exhausted


def shrink_events(events: Sequence[ChaosEvent],
                  interesting: Callable[[list[ChaosEvent]], bool],
                  max_tests: int = 128) -> ShrinkResult:
    """ddmin: minimal sublist of ``events`` keeping ``interesting`` true.

    ``interesting(list(events))`` must be true on entry; the result's
    event list always satisfies the predicate (every accepted reduction
    was tested).  ``max_tests`` bounds the number of predicate probes;
    on exhaustion the best reduction so far is returned with
    ``budget_exhausted=True``.
    """
    current = list(events)
    tests = 0
    cache: dict[tuple[int, ...], bool] = {}

    def probe(subset: list[ChaosEvent]) -> bool:
        nonlocal tests
        key = tuple(id(e) for e in subset)
        if key in cache:
            return cache[key]
        if tests >= max_tests:
            return False
        tests += 1
        verdict = interesting(subset)
        cache[key] = verdict
        return verdict

    if not probe(current):
        raise ValueError("shrink_events needs an interesting input")

    granularity = 2
    while len(current) >= 2:
        if tests >= max_tests:
            return ShrinkResult(current, tests, budget_exhausted=True)
        chunks = _partition(current, granularity)
        reduced = False
        # Try each chunk alone, then each complement.
        for chunk in chunks:
            if len(chunk) < len(current) and probe(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(chunks)):
                complement = [e for j, chunk in enumerate(chunks)
                              for e in chunk if j != i]
                if 0 < len(complement) < len(current) and probe(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break  # 1-minimal
            granularity = min(granularity * 2, len(current))
    return ShrinkResult(current, tests, budget_exhausted=tests >= max_tests)


def _partition(events: list[ChaosEvent],
               granularity: int) -> list[list[ChaosEvent]]:
    n = len(events)
    granularity = min(granularity, n)
    size, remainder = divmod(n, granularity)
    chunks = []
    start = 0
    for i in range(granularity):
        end = start + size + (1 if i < remainder else 0)
        chunks.append(events[start:end])
        start = end
    return [c for c in chunks if c]
